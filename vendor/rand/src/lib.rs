//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the subset of the `rand 0.8` API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`RngCore`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, and `fill`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64. Streams are fully
//! deterministic for a given seed (the reproducibility property the workspace
//! relies on) but are **not** bit-compatible with upstream `rand`'s `StdRng`;
//! nothing in the workspace depends on the exact stream, only on determinism.

/// Low-level generator interface: raw 32/64-bit output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable "from the standard distribution" via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (reduce_u64(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (reduce_u64(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $ut:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = reduce_u64(rng.next_u64(), span);
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Unbiased-enough map of a raw 64-bit draw onto `0..span` (Lemire-style
/// widening multiply; the stub favors simplicity over perfect uniformity).
fn reduce_u64(raw: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((raw as u128 * span as u128) >> 64) as u64
}

/// High-level sampling helpers, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators (only `StdRng` is provided).

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seeding. Deterministic per seed; not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                state: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i = rng.gen_range(0..=4usize);
            assert!(i <= 4);
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
