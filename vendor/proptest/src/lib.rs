//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest the workspace actually uses: the
//! [`proptest!`] macro over numeric-range strategies, `prop_assert!` /
//! `prop_assert_eq!`, and [`prelude::ProptestConfig`] with `with_cases`.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test's name), so failures reproduce exactly across runs. Shrinking is not
//! implemented: a failing case reports its inputs and panics immediately.

pub mod test_runner {
    //! Deterministic case generation and failure reporting.

    /// Error type produced by `prop_assert!` macros inside a proptest body.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Per-test deterministic source of randomness (SplitMix64).
    #[derive(Debug)]
    pub struct TestRunner {
        state: u64,
    }

    impl TestRunner {
        /// Builds a runner whose stream is a pure function of `test_name`.
        pub fn new(test_name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in test_name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: hash }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Run-time configuration; only the case count is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of randomized cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` randomized cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; the stub trades depth for CI speed.
            Self { cases: 64 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies. Only numeric ranges are supported.

    use crate::test_runner::TestRunner;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, runner: &mut TestRunner) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let offset = ((runner.next_u64() as u128 * span as u128) >> 64) as u64;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (runner.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_strategy!(f32, f64);
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut runner);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "property {} failed: {}\n  inputs: {}",
                        stringify!($name),
                        err,
                        [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", "),
                    );
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a proptest body, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, reporting both operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// `prop_assert!` for inequality, reporting both operands.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_respected(n in 1usize..10, x in -1.0..1.0f64, s in 0u64..100) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!(s < 100);
        }

        #[test]
        fn eq_macro_passes(n in 0usize..5) {
            prop_assert_eq!(n, n);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let mut a = crate::test_runner::TestRunner::new("t");
        let mut b = crate::test_runner::TestRunner::new("t");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "property always_fails failed")]
    fn failure_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(n in 0usize..5) {
                prop_assert!(n > 100, "n too small: {}", n);
            }
        }
        always_fails();
    }
}
