//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the criterion 0.5 API the workspace's benches
//! use: `Criterion`, `benchmark_group` / `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it runs a short warm-up,
//! times `sample_size` iterations with [`std::time::Instant`], and prints
//! mean / min / max per-iteration wall time. Good enough to smoke-test the
//! benches and get a first-order number; not a replacement for real
//! criterion statistics.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` hides values from the optimizer.
pub use std::hint::black_box;

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id like `"direct/128"`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` once per sample after a short warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..2 {
            black_box(routine());
        }
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Flushes the group (upstream emits reports here; the stub prints
    /// per-benchmark lines eagerly, so this is a no-op).
    pub fn finish(&mut self) {}

    fn run<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let n = bencher.samples.len().max(1);
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / n as u32;
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        let max = bencher.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{}/{:<32} mean {:>12.3?}  min {:>12.3?}  max {:>12.3?}  ({} samples)",
            self.name, id, mean, min, max, n
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 2 warm-up + 3 timed iterations.
        assert_eq!(runs, 5);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("direct", 128).to_string(), "direct/128");
    }
}
