//! Correctness contract of the `litho_serve` guard-band tiling engine.
//!
//! Two pins:
//!
//! 1. **The guard band is load-bearing.** For a 3×3-tile layout, the
//!    stitched interior must agree with a direct single-shot rigorous
//!    simulation of the same region to guard-band tolerance — and the same
//!    pipeline with halo 0 must visibly disagree (seams at tile borders).
//! 2. **Thread-count invariance.** Stitched output is bit-identical for
//!    `NITHO_THREADS` = 1/2/4, for both the rigorous Hopkins engine and a
//!    trained Nitho model, on a layout 4× the training-tile area.

use litho_masks::{chip_mosaic, Dataset, DatasetKind, GeneratorConfig};
use litho_math::RealMatrix;
use litho_optics::source::SourceGrid;
use litho_optics::{HopkinsSimulator, OpticalConfig, SocsKernels, TccMatrix};
use litho_parallel::with_threads;
use litho_serve::{ChipPipeline, TileSimulator};
use nitho::{NithoConfig, NithoModel};

fn tile_optics() -> OpticalConfig {
    OpticalConfig::builder()
        .tile_px(64)
        .pixel_nm(8.0)
        .kernel_count(16)
        .build()
}

/// A rigorous SOCS engine with an explicitly chosen source grid — lets the
/// tiled engine and the single-shot reference share the *same* source
/// discretization, so the comparison isolates the stitching error.
struct SocsTileSim {
    socs: SocsKernels,
    optics: OpticalConfig,
}

impl SocsTileSim {
    fn build(optics: OpticalConfig, source: &SourceGrid) -> Self {
        let tcc = TccMatrix::assemble(&optics, optics.kernel_dims(), source);
        Self {
            socs: SocsKernels::from_tcc(&tcc),
            optics,
        }
    }
}

impl TileSimulator for SocsTileSim {
    fn tile_px(&self) -> usize {
        self.optics.tile_px
    }

    fn resist_threshold(&self) -> f64 {
        self.optics.resist_threshold
    }

    fn pixel_nm(&self) -> f64 {
        self.optics.pixel_nm
    }

    fn resolution_nm(&self) -> f64 {
        self.optics.resolution_nm()
    }

    fn simulate_tile(&self, tile: &RealMatrix) -> RealMatrix {
        self.socs.aerial_image(tile)
    }

    fn for_condition(
        &self,
        condition: &litho_optics::ProcessCondition,
    ) -> Option<Box<dyn TileSimulator>> {
        // The fixed-source test engine only serves its nominal build.
        condition.is_nominal().then(|| {
            Box::new(SocsTileSim {
                socs: self.socs.clone(),
                optics: self.optics.clone(),
            }) as Box<dyn TileSimulator>
        })
    }
}

#[test]
fn stitched_interior_matches_single_shot_and_needs_the_halo() {
    // A 96×96 chip — 3×3 tile cores at halo 16 — of dense metal routing
    // (wires run across tile borders, so a missing guard band leaves seams).
    let chip = chip_mosaic(
        DatasetKind::B2Metal,
        3,
        3,
        &GeneratorConfig::new(32, 8.0),
        42,
    );
    let mask = chip.rasterize();
    assert_eq!(mask.shape(), (96, 96));

    let tile_optics = OpticalConfig {
        kernel_count: 24,
        ..tile_optics()
    };
    // Single-shot rigorous reference: kernel grid sized for the full 96-px
    // (768 nm) extent, and a deeper SOCS series to match the larger tile's
    // Shannon number.
    let single_shot_optics = OpticalConfig {
        tile_px: 96,
        kernel_count: 48,
        ..tile_optics.clone()
    };
    let source = SourceGrid::sample(&tile_optics.source, 11);
    let tile_sim = SocsTileSim::build(tile_optics, &source);
    let reference = SocsTileSim::build(single_shot_optics, &source)
        .socs
        .aerial_image(&mask);

    let stitched = ChipPipeline::with_halo(&tile_sim, 16).aerial(&mask);
    let seamed = ChipPipeline::with_halo(&tile_sim, 0).aerial(&mask);
    assert_eq!(stitched.shape(), mask.shape());

    // Compare away from the chip boundary, where the reference's periodic
    // wrap-around and the pipeline's dark-field padding both intrude.
    let interior = |m: &RealMatrix| m.submatrix(24, 24, 48, 48);
    let max_diff = |a: &RealMatrix, b: &RealMatrix| a.zip_map(b, |x, y| (x - y).abs()).max();
    let guarded_err = max_diff(&interior(&stitched), &interior(&reference));
    let seamed_err = max_diff(&interior(&seamed), &interior(&reference));

    // Guard-band tolerance: the two engines still truncate the SOCS series
    // at different depths, which bounds agreement at a few percent of the
    // clear-field intensity (measured ~0.024); a missing halo leaves an
    // order-of-magnitude larger seam error (measured ~0.26).
    assert!(
        guarded_err < 0.05,
        "stitched interior deviates from single-shot by {guarded_err}"
    );
    assert!(
        seamed_err > 4.0 * guarded_err,
        "halo 0 should visibly disagree: seamed {seamed_err} vs guarded {guarded_err}"
    );
}

#[test]
fn stitched_output_is_bit_identical_across_thread_counts() {
    let optics = tile_optics();
    let hopkins = HopkinsSimulator::new(&optics);

    // Train a small Nitho model; 128×128 is 4× the 64-px training-tile area.
    let train = Dataset::generate(DatasetKind::B2Via, 6, &hopkins, 11);
    let mut model = NithoModel::new(
        NithoConfig {
            kernel_side: Some(9),
            epochs: 6,
            ..NithoConfig::fast()
        },
        &optics,
    );
    model.train(&train);

    let chip = chip_mosaic(
        DatasetKind::B2Metal,
        2,
        2,
        &GeneratorConfig::new(64, 8.0),
        7,
    );
    let mask = chip.rasterize();
    assert_eq!(mask.shape(), (128, 128));

    for (label, simulator) in [
        ("hopkins", &hopkins as &dyn litho_serve::TileSimulator),
        ("nitho", &model as &dyn litho_serve::TileSimulator),
    ] {
        let pipeline = ChipPipeline::new(simulator);
        let serial = with_threads(1, || pipeline.simulate(&mask));
        assert!(serial.tiles >= 4, "{label}: expected a real tile fan-out");
        for threads in [2usize, 4] {
            let parallel = with_threads(threads, || pipeline.simulate(&mask));
            assert_eq!(serial.tiles, parallel.tiles);
            for (idx, (a, b)) in serial.aerial.iter().zip(parallel.aerial.iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{label}: aerial bit mismatch at {idx} with {threads} threads"
                );
            }
            for (idx, (a, b)) in serial.resist.iter().zip(parallel.resist.iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{label}: resist bit mismatch at {idx} with {threads} threads"
                );
            }
        }
    }
}
