//! Process-window integration suite — the tier-1 contract of the
//! defocus/dose-conditioned subsystem:
//!
//! 1. One conditioned model, trained across a focus × dose grid, matches the
//!    per-condition rigorous Hopkins reference at a trained condition to the
//!    same tolerance the nominal model is pinned to today (PSNR > 24 dB,
//!    mIOU > 88 %).
//! 2. `/v1/process_window` responses are bit-identical across
//!    `NITHO_THREADS` 1 / 2 / 4.
//! 3. Checkpoint compatibility: a pre-conditioning nominal checkpoint (both
//!    the headerless legacy dump and the fingerprinted `NITHOCKPT` form)
//!    still loads and serves nominal results without triggering the
//!    self-heal retrain, while conditioned checkpoints round-trip and never
//!    cross-load.

use litho_integration::scale;
use litho_masks::{DatasetKind, ProcessDataset};
use litho_optics::{HopkinsSimulator, OpticalConfig, ProcessCondition, ProcessWindow};
use litho_serve::{ModelRegistry, Request, Service};
use nitho::{ConditionEncoding, NithoConfig, NithoModel};

fn optics() -> OpticalConfig {
    scale::test_optics(64, 6)
}

fn conditioned_config() -> NithoConfig {
    NithoConfig {
        kernel_side: Some(9),
        epochs: scale::epochs(30),
        condition: Some(ConditionEncoding {
            focus_span_nm: 100.0,
            dose_span: 0.1,
            features: 8,
            sigma: 1.0,
            seed: 3,
        }),
        ..NithoConfig::fast()
    }
}

/// Acceptance pin: the conditioned model at a trained off-nominal condition
/// meets the same accuracy bar the nominal model meets today
/// (`training_reduces_loss_and_reaches_good_accuracy` pins PSNR > 24 dB and
/// mIOU > 88 % at nominal).
#[test]
fn conditioned_model_matches_rigorous_reference_at_trained_conditions() {
    let optics = optics();
    let simulator = HopkinsSimulator::new(&optics);
    let window = ProcessWindow::new(vec![0.0, 100.0], vec![0.95, 1.05]);
    let conditions = window.conditions();
    let pd = ProcessDataset::generate(
        DatasetKind::B1,
        scale::train_tiles(12),
        &simulator,
        &conditions,
        3,
    );
    let (train, test) = pd.split(0.75);

    let mut model = NithoModel::new(conditioned_config(), &optics);
    let report = model.train_process_window(train.groups());
    assert!(
        report.improvement_ratio() < 0.2,
        "conditioned loss should drop by at least 5x: {} → {}",
        report.initial_loss(),
        report.final_loss()
    );

    // Every trained condition — including the defocused, off-dose corners —
    // must meet the nominal-model bar against its own rigorous labels.
    for (condition, dataset) in test.groups() {
        let eval = model.evaluate_at_condition(dataset, condition, optics.resist_threshold);
        assert!(
            eval.aerial.psnr_db > 24.0,
            "PSNR too low at {condition}: {:.2} dB",
            eval.aerial.psnr_db
        );
        assert!(
            eval.resist.miou_percent > 88.0,
            "mIOU too low at {condition}: {:.1}%",
            eval.resist.miou_percent
        );
    }

    // And the conditioning must matter: evaluating the *nominal* kernels
    // against the defocused labels has to be clearly worse than evaluating
    // the matching conditioned kernels.
    let defocused = ProcessCondition::new(100.0, 1.05);
    let defocused_set = test.group(&defocused).expect("defocused test group");
    let matched = model.evaluate_at_condition(defocused_set, &defocused, optics.resist_threshold);
    let mismatched = model.evaluate_at_condition(
        defocused_set,
        &ProcessCondition::new(0.0, 1.05),
        optics.resist_threshold,
    );
    assert!(
        matched.aerial.psnr_db > mismatched.aerial.psnr_db + 1.0,
        "conditioning must track defocus: matched {:.2} dB vs mismatched {:.2} dB",
        matched.aerial.psnr_db,
        mismatched.aerial.psnr_db
    );
}

fn process_window_service() -> Service {
    let optics = OpticalConfig::builder()
        .tile_px(64)
        .pixel_nm(8.0)
        .kernel_count(6)
        .build();
    let mut registry = ModelRegistry::new();
    registry.register_hopkins("hopkins", HopkinsSimulator::new(&optics));
    let mut model = NithoModel::new(
        NithoConfig {
            kernel_side: Some(9),
            condition: Some(ConditionEncoding::default()),
            ..NithoConfig::fast()
        },
        &optics,
    );
    model.refresh_kernels();
    registry.register_nitho("nitho", model);
    Service::new(registry)
}

/// Acceptance pin: `/v1/process_window` output is bit-identical across
/// `NITHO_THREADS` 1 / 2 / 4 (the response deliberately carries no timing
/// field, so whole bodies can be compared byte for byte).
#[test]
fn process_window_endpoint_bit_identical_across_thread_counts() {
    let service = process_window_service();
    let run = |model: &str, threads: usize| -> Vec<u8> {
        let body = format!(
            r#"{{
                "model": "{model}",
                "mask": {{"rows": 96, "cols": 96, "rects": [[16, 16, 80, 40], [40, 56, 56, 88]]}},
                "focus_nm": [-60, 0, 60],
                "dose": [0.95, 1.0, 1.05],
                "halo_px": 16,
                "include_pvb_band": true
            }}"#
        );
        let request = Request {
            method: "POST".to_owned(),
            path: "/v1/process_window".to_owned(),
            headers: Vec::new(),
            body: body.into_bytes(),
        };
        litho_parallel::with_threads(threads, || {
            let response = service.handle(&request);
            assert_eq!(
                response.status,
                200,
                "{}",
                String::from_utf8_lossy(&response.body)
            );
            response.body
        })
    };
    for model in ["nitho", "hopkins"] {
        let serial = run(model, 1);
        for threads in [2usize, 4] {
            let parallel = run(model, threads);
            assert_eq!(
                serial, parallel,
                "{model}: response must be bit-identical at {threads} threads"
            );
        }
    }
}

/// Pre-conditioning checkpoints keep working: the fingerprint only covers
/// the `condition` field when it is set, so a nominal checkpoint written
/// before (or without) the process-window subsystem loads into today's
/// nominal model without the registry's self-heal retrain firing.
#[test]
fn pre_conditioning_nominal_checkpoints_serve_without_retraining() {
    let optics = OpticalConfig::builder()
        .tile_px(64)
        .pixel_nm(8.0)
        .kernel_count(6)
        .build();
    let config = NithoConfig {
        kernel_side: Some(9),
        ..NithoConfig::fast()
    };
    assert!(config.condition.is_none());
    let dir = std::env::temp_dir().join("nitho_pw_compat_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");

    // A fingerprinted nominal checkpoint (what every pre-PR server wrote).
    let mut nominal = NithoModel::new(config.clone(), &optics);
    nominal.refresh_kernels();
    nominal
        .save_parameters(&dir.join("served.ckpt"))
        .expect("save nominal checkpoint");

    let mut registry = ModelRegistry::new();
    registry
        .register_nitho_checkpointed("served", config.clone(), &optics, &dir, |_| {
            panic!("nominal checkpoint must satisfy the conditioned-era registry")
        })
        .expect("register from nominal checkpoint");
    let (_, sim) = registry.get("served").expect("registered");
    let aerial = sim.simulate_tile(&litho_math::RealMatrix::filled(64, 64, 1.0));
    assert_eq!(aerial.shape(), (64, 64));
    assert!(aerial.iter().all(|v| v.is_finite()));

    // A headerless legacy NITHOPRM dump under the checkpoint name loads too
    // (with a warning on stderr) — still no retrain.
    let legacy_dir = dir.join("legacy");
    std::fs::create_dir_all(&legacy_dir).expect("create legacy dir");
    nominal
        .cmlp()
        .params()
        .save(&legacy_dir.join("served.ckpt"))
        .expect("legacy dump");
    let mut registry = ModelRegistry::new();
    registry
        .register_nitho_checkpointed("served", config.clone(), &optics, &legacy_dir, |_| {
            panic!("legacy dump must load as nominal without retraining")
        })
        .expect("register from legacy dump");
    let (info, sim) = registry.get("served").expect("registered");
    assert_eq!(info.checkpoint_version, 0, "legacy files have no version");
    let restored = sim.simulate_tile(&litho_math::RealMatrix::filled(64, 64, 1.0));
    assert!(
        aerial.zip_map(&restored, |a, b| (a - b).abs()).max() < 1e-12,
        "legacy weights must serve identical nominal results"
    );

    // A conditioned model is a different network: its checkpoint must NOT
    // load into the nominal registry entry — the self-heal retrain fires.
    let conditioned_dir = dir.join("conditioned");
    std::fs::create_dir_all(&conditioned_dir).expect("create conditioned dir");
    let conditioned_config = NithoConfig {
        condition: Some(ConditionEncoding::default()),
        ..config.clone()
    };
    let mut conditioned = NithoModel::new(conditioned_config.clone(), &optics);
    conditioned.refresh_kernels();
    conditioned
        .save_parameters(&conditioned_dir.join("served.ckpt"))
        .expect("save conditioned checkpoint");
    // Keep a pristine copy: the self-heal below overwrites served.ckpt.
    conditioned
        .save_parameters(&conditioned_dir.join("roundtrip.ckpt"))
        .expect("save round-trip copy");
    let mut retrained = false;
    let mut registry = ModelRegistry::new();
    registry
        .register_nitho_checkpointed("served", config, &optics, &conditioned_dir, |model| {
            retrained = true;
            model.refresh_kernels();
        })
        .expect("mismatch falls back to retraining");
    assert!(
        retrained,
        "a conditioned checkpoint must not satisfy a nominal model"
    );

    // And the conditioned model round-trips through its own checkpoint,
    // preserving off-nominal predictions exactly.
    let mut restored = NithoModel::new(conditioned_config, &optics);
    restored
        .load_parameters(&conditioned_dir.join("roundtrip.ckpt"))
        .expect("conditioned load");
    let mask = litho_math::RealMatrix::filled(64, 64, 1.0);
    let condition = ProcessCondition::new(-75.0, 1.04);
    let a = conditioned.predict_aerial_at_condition(&mask, &condition);
    let b = restored.predict_aerial_at_condition(&mask, &condition);
    assert!(a.zip_map(&b, |x, y| (x - y).abs()).max() < 1e-12);

    std::fs::remove_dir_all(&dir).ok();
}

/// The rigorous engine and the serve-layer fan-out agree on the physics:
/// more defocus can only blur the chip, and the PVB area grows with the
/// window size.
#[test]
fn process_window_physics_sanity_through_the_service() {
    let optics = OpticalConfig::builder()
        .tile_px(64)
        .pixel_nm(8.0)
        .kernel_count(6)
        .build();
    let mut registry = ModelRegistry::new();
    registry.register_hopkins("hopkins", HopkinsSimulator::new(&optics));
    let service = Service::new(registry);

    let run = |focus: &str, dose: &str| -> litho_serve::ProcessWindowResponse {
        let body = format!(
            r#"{{"model":"hopkins",
                 "mask":{{"rows":64,"cols":64,"rects":[[8,24,56,40]]}},
                 "focus_nm":[{focus}],"dose":[{dose}],"halo_px":16}}"#
        );
        let request = Request {
            method: "POST".to_owned(),
            path: "/v1/process_window".to_owned(),
            headers: Vec::new(),
            body: body.into_bytes(),
        };
        let response = service.handle(&request);
        assert_eq!(
            response.status,
            200,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
        let doc = litho_serve::Json::parse(std::str::from_utf8(&response.body).expect("UTF-8"))
            .expect("JSON");
        litho_serve::ProcessWindowResponse::from_json(&doc).expect("typed response")
    };

    // A single-condition "window" has zero PVB area by definition.
    let single = run("0", "1");
    assert_eq!(single.pvb.area_px, 0.0);
    assert_eq!(single.conditions.len(), 1);

    // Widening the dose axis can only grow the band.
    let narrow = run("0", "0.97,1,1.03");
    let wide = run("0", "0.9,1,1.1");
    assert!(narrow.pvb.area_px > 0.0);
    assert!(wide.pvb.area_px >= narrow.pvb.area_px);

    // EPE against nominal grows with defocus on this pattern.
    let focus_sweep = run("0,80,160", "1");
    let epe: Vec<f64> = focus_sweep
        .conditions
        .iter()
        .map(|c| c.epe_mean_px)
        .collect();
    assert_eq!(epe[0], 0.0, "nominal vs itself");
    assert!(
        epe[2] >= epe[1],
        "strong defocus must displace edges at least as much: {epe:?}"
    );
}
