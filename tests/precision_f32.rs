//! Accuracy bar for the opt-in `NITHO_PRECISION=f32` inference path.
//!
//! The reduced-precision route (f32 CMLP forward passes plus the f32 SOCS
//! synthesis) is not bit-compatible with f64 by design; what it must do is
//! stay inside the paper's quality bar against the f64 reference on every
//! mask family:
//!
//! * aerial PSNR > 24 dB (the same bar the trained model must clear against
//!   rigorous Hopkins),
//! * mIOU > 88% between the thresholded aerials,
//! * a per-pixel error ceiling of 1e-3 relative to the aerial peak — the
//!   f32 pipeline may round, never wander.
//!
//! `force_precision` flips process-global state, so everything that touches
//! it lives in a single `#[test]` (this file is its own test binary; sibling
//! binaries run in separate processes and are unaffected). A drop guard
//! restores f64 even when an assertion unwinds mid-family.

use litho_masks::generators::{apply_opc, iccad_clip, metal_layer, via_layer};
use litho_masks::GeneratorConfig;
use litho_math::simd::{force_precision, Precision};
use litho_math::{DeterministicRng, RealMatrix};
use litho_metrics::{miou, psnr};
use litho_optics::OpticalConfig;
use nitho::{NithoConfig, NithoModel};

/// Restores the process-wide precision to f64 on scope exit, panicking or not.
struct PrecisionGuard;

impl Drop for PrecisionGuard {
    fn drop(&mut self) {
        force_precision(Precision::F64);
    }
}

fn test_model() -> NithoModel {
    let optics = OpticalConfig::builder()
        .tile_px(32)
        .pixel_nm(16.0)
        .kernel_count(4)
        .build();
    let config = NithoConfig {
        kernel_side: Some(9),
        kernel_count: 4,
        ..NithoConfig::fast()
    };
    // The physics-informed initial field is already a usable optical kernel
    // bank; precision equivalence does not depend on training having run.
    NithoModel::new(config, &optics)
}

fn mask_families() -> Vec<(&'static str, RealMatrix)> {
    let config = GeneratorConfig::new(32, 16.0);
    let mut rng = DeterministicRng::new(0xf32);
    let metal = metal_layer(&config, &mut rng);
    let vias = via_layer(&config, &mut rng);
    let clip = iccad_clip(&config, &mut rng);
    let opc = apply_opc(&clip, &config, &mut rng);
    vec![
        ("metal_layer", metal.rasterize()),
        ("via_layer", vias.rasterize()),
        ("iccad_clip", clip.rasterize()),
        ("apply_opc", opc.rasterize()),
    ]
}

#[test]
fn f32_aerials_clear_the_accuracy_bar_per_mask_family() {
    let families = mask_families();

    // f64 reference aerials first, with the kernels evaluated in f64.
    let mut model = test_model();
    force_precision(Precision::F64);
    model.refresh_kernels();
    let reference: Vec<RealMatrix> = families
        .iter()
        .map(|(_, mask)| model.predict_aerial(mask))
        .collect();

    // Flip the process to f32 — kernels AND synthesis — behind a drop guard.
    // Counter snapshots straddle the refresh: the CMLP re-evaluation below is
    // itself the f32 forward pass being counted.
    let cmlp_before = nitho::cmlp::total_infer_f32_dispatches();
    let socs_before = litho_fft::soa::total_socs_f32_dispatches();
    let _guard = PrecisionGuard;
    force_precision(Precision::F32);
    model.refresh_kernels();

    for ((name, mask), f64_aerial) in families.iter().zip(&reference) {
        let f32_aerial = model.predict_aerial(mask);

        let quality = psnr(f64_aerial, &f32_aerial);
        assert!(
            quality > 24.0,
            "{name}: f32 aerial PSNR {quality:.2} dB must clear the 24 dB bar"
        );

        let overlap = miou(f64_aerial, &f32_aerial);
        assert!(
            overlap > 0.88,
            "{name}: f32 aerial mIOU {:.2}% must clear the 88% bar",
            overlap * 100.0
        );

        // Per-pixel ceiling: no pixel may stray more than 1e-3 of the peak —
        // a much tighter leash than PSNR (which averages) alone would hold.
        let peak = f64_aerial.max();
        assert!(peak > 0.0, "{name}: degenerate all-dark reference aerial");
        let worst = f64_aerial.zip_map(&f32_aerial, |a, b| (a - b).abs()).max();
        assert!(
            worst <= 1e-3 * peak,
            "{name}: worst per-pixel error {worst:.3e} exceeds 1e-3 of peak {peak:.3e}"
        );

        // And the two precisions must actually differ somewhere — a
        // bit-identical result means the f32 path silently fell back to f64.
        assert!(
            worst > 0.0,
            "{name}: f32 aerial is bit-identical to f64 — f32 path not exercised?"
        );
    }

    // The observability counters prove the reduced-precision kernels ran:
    // one CMLP dispatch per kernel evaluation, one SOCS dispatch per aerial.
    // Monotone `>=` because counters are process-global.
    assert!(
        nitho::cmlp::total_infer_f32_dispatches() > cmlp_before,
        "expected f32 CMLP dispatches to be recorded"
    );
    assert!(
        litho_fft::soa::total_socs_f32_dispatches() >= socs_before + families.len() as u64,
        "expected one f32 SOCS dispatch per aerial"
    );
}
