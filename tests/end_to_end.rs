//! End-to-end integration test: the full Nitho pipeline (golden engine →
//! synthetic datasets → training → evaluation) must reproduce the paper's
//! headline qualitative results on a reduced scale:
//!
//! 1. Nitho beats both image-to-image baselines on in-distribution accuracy.
//! 2. Nitho's accuracy barely drops on out-of-distribution mask families,
//!    while the baselines degrade much more (Table IV's story).

use litho_baselines::{CnnLitho, FnoLitho, ImageRegressor, RegressorConfig, TargetStage};
use litho_integration::scale;
use litho_masks::{Dataset, DatasetKind};
use litho_optics::{HopkinsSimulator, OpticalConfig};
use nitho::{NithoConfig, NithoModel};

fn optics() -> OpticalConfig {
    scale::test_optics(64, 6)
}

fn nitho_config() -> NithoConfig {
    NithoConfig {
        kernel_side: Some(9),
        epochs: scale::epochs(30),
        ..NithoConfig::fast()
    }
}

fn baseline_config() -> RegressorConfig {
    RegressorConfig {
        working_resolution: 16,
        epochs: scale::epochs(30),
        ..RegressorConfig::default()
    }
}

#[test]
fn nitho_outperforms_image_to_image_baselines() {
    let optics = optics();
    let simulator = HopkinsSimulator::new(&optics);
    let dataset = Dataset::generate(DatasetKind::B2Metal, scale::train_tiles(14), &simulator, 21);
    let (train, test) = dataset.split(0.7);

    let mut nitho = NithoModel::new(nitho_config(), &optics);
    nitho.train(&train);
    let nitho_eval = nitho.evaluate(&test, optics.resist_threshold);

    let mut cnn = CnnLitho::with_channels(baseline_config(), 8);
    cnn.train(&train);
    let (cnn_aerial, _) = cnn.evaluate(&test, optics.resist_threshold, TargetStage::Aerial);

    let mut fno = FnoLitho::with_layers(baseline_config(), 2);
    fno.train(&train);
    let (fno_aerial, _) = fno.evaluate(&test, optics.resist_threshold, TargetStage::Aerial);

    assert!(
        nitho_eval.aerial.psnr_db > cnn_aerial.psnr_db + 3.0,
        "Nitho ({:.2} dB) must clearly beat the CNN baseline ({:.2} dB)",
        nitho_eval.aerial.psnr_db,
        cnn_aerial.psnr_db
    );
    assert!(
        nitho_eval.aerial.psnr_db > fno_aerial.psnr_db + 3.0,
        "Nitho ({:.2} dB) must clearly beat the FNO baseline ({:.2} dB)",
        nitho_eval.aerial.psnr_db,
        fno_aerial.psnr_db
    );
    assert!(
        nitho_eval.aerial.mse < cnn_aerial.mse && nitho_eval.aerial.mse < fno_aerial.mse,
        "Nitho must have the smallest MSE"
    );
    assert!(nitho_eval.resist.miou_percent > 85.0);
}

#[test]
fn nitho_has_much_smaller_ood_drop_than_baselines() {
    let optics = optics();
    let simulator = HopkinsSimulator::new(&optics);
    // Train on via arrays, test OOD on metal routing — the harder direction in
    // the paper's Table IV (B2v → B2m).
    let train = Dataset::generate(DatasetKind::B2Via, scale::train_tiles(12), &simulator, 31);
    let in_dist = Dataset::generate(DatasetKind::B2Via, 5, &simulator, 32);
    let ood = Dataset::generate(DatasetKind::B2Metal, 5, &simulator, 33);

    let mut nitho = NithoModel::new(nitho_config(), &optics);
    nitho.train(&train);
    let nitho_in = nitho.evaluate(&in_dist, optics.resist_threshold);
    let nitho_ood = nitho.evaluate(&ood, optics.resist_threshold);
    let nitho_drop = nitho_in.resist.miou_percent - nitho_ood.resist.miou_percent;

    let mut cnn = CnnLitho::with_channels(baseline_config(), 8);
    cnn.train(&train);
    let cnn_in = cnn
        .evaluate(&in_dist, optics.resist_threshold, TargetStage::Aerial)
        .1;
    let cnn_ood = cnn
        .evaluate(&ood, optics.resist_threshold, TargetStage::Aerial)
        .1;
    let cnn_drop = cnn_in.miou_percent - cnn_ood.miou_percent;

    // Nitho's kernels are mask-independent, so its mIOU drop must stay small
    // in absolute terms and be far smaller than the image learner's drop.
    assert!(
        nitho_drop.abs() < 6.0,
        "Nitho OOD mIOU drop should be small, got {nitho_drop:.2} points"
    );
    assert!(
        cnn_drop > nitho_drop + 5.0,
        "CNN drop ({cnn_drop:.2}) should far exceed Nitho drop ({nitho_drop:.2})"
    );
    // And Nitho must remain accurate in absolute terms on the unseen family.
    assert!(nitho_ood.aerial.psnr_db > 22.0);
}

#[test]
fn nitho_learns_from_fewer_samples_than_baselines() {
    // Fig. 6(a) in miniature: with only half of the training tiles Nitho still
    // reaches PSNR levels the baselines cannot reach even with the full set.
    // Metal routing tiles are used because their spectra cover the kernel grid
    // densely, which is the regime the figure studies.
    let optics = optics();
    let simulator = HopkinsSimulator::new(&optics);
    let full = Dataset::generate(DatasetKind::B2Metal, scale::train_tiles(12), &simulator, 41);
    let test = Dataset::generate(DatasetKind::B2Metal, 5, &simulator, 42);
    let small = full.subset_fraction(0.5);
    assert!(small.len() <= full.len().div_ceil(2));

    let mut nitho_small = NithoModel::new(
        NithoConfig {
            epochs: scale::epochs(40),
            ..nitho_config()
        },
        &optics,
    );
    nitho_small.train(&small);
    let nitho_small_psnr = nitho_small
        .evaluate(&test, optics.resist_threshold)
        .aerial
        .psnr_db;

    let mut cnn_full = CnnLitho::with_channels(baseline_config(), 8);
    cnn_full.train(&full);
    let cnn_full_psnr = cnn_full
        .evaluate(&test, optics.resist_threshold, TargetStage::Aerial)
        .0
        .psnr_db;

    assert!(
        nitho_small_psnr > cnn_full_psnr,
        "Nitho on half of the data ({nitho_small_psnr:.2} dB) should beat the CNN on all of it ({cnn_full_psnr:.2} dB)"
    );
}
