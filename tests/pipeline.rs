//! Pipeline-level integration tests: persistence, throughput ordering, the
//! dataset distribution analysis and the fast low-resolution training path.

use std::time::Instant;

use litho_analysis::{mask_features, pca, separation_score, tsne, TsneConfig};
use litho_integration::scale;
use litho_masks::{Dataset, DatasetKind};
use litho_math::RealMatrix;
use litho_optics::{HopkinsSimulator, OpticalConfig};
use nitho::{NithoConfig, NithoModel};

fn optics() -> OpticalConfig {
    scale::test_optics(64, 6)
}

fn quick_model(optics: &OpticalConfig, train: &Dataset) -> NithoModel {
    let mut model = NithoModel::new(
        NithoConfig {
            kernel_side: Some(9),
            epochs: scale::epochs(25),
            ..NithoConfig::fast()
        },
        optics,
    );
    model.train(train);
    model
}

#[test]
fn stored_kernel_inference_is_faster_than_rigorous_simulation() {
    let optics = optics();
    // The rigorous reference keeps far more kernels, as production TCC
    // decompositions do.
    let rigorous = HopkinsSimulator::new(&OpticalConfig {
        kernel_count: 30,
        ..optics.clone()
    });
    let labeller = HopkinsSimulator::new(&optics);
    let train = Dataset::generate(DatasetKind::B2Metal, scale::train_tiles(8), &labeller, 51);
    let workload = Dataset::generate(DatasetKind::B2Via, 10, &labeller, 52);
    let model = quick_model(&optics, &train);

    let start = Instant::now();
    for sample in workload.samples() {
        let _ = rigorous.simulate(&sample.mask);
    }
    let rigorous_time = start.elapsed();

    let start = Instant::now();
    for sample in workload.samples() {
        let _ = model.predict_resist(&sample.mask, optics.resist_threshold);
    }
    let nitho_time = start.elapsed();

    assert!(
        nitho_time < rigorous_time,
        "stored-kernel inference ({nitho_time:?}) must be faster than the rigorous simulator ({rigorous_time:?})"
    );
}

#[test]
fn model_round_trips_through_disk() {
    let optics = optics();
    let simulator = HopkinsSimulator::new(&optics);
    let train = Dataset::generate(DatasetKind::B1, scale::train_tiles(8), &simulator, 61);
    let model = quick_model(&optics, &train);

    let dir = std::env::temp_dir().join("nitho_integration_persistence");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("nitho.params");
    model.save_parameters(&path).expect("save");

    let mut restored = NithoModel::new(
        NithoConfig {
            kernel_side: Some(9),
            epochs: 25,
            ..NithoConfig::fast()
        },
        &optics,
    );
    restored.load_parameters(&path).expect("load");

    let probe = &train.samples()[0].mask;
    let original = model.predict_aerial(probe);
    let reloaded = restored.predict_aerial(probe);
    let max_diff = original.zip_map(&reloaded, |a, b| (a - b).abs()).max();
    assert!(max_diff < 1e-12);
    std::fs::remove_file(&path).ok();
}

#[test]
fn low_resolution_training_path_matches_full_resolution_labels() {
    // The hierarchical training path compares predictions against
    // band-limited low-resolution targets; a model trained that way must
    // still be accurate when evaluated at full tile resolution.
    let optics = optics();
    let simulator = HopkinsSimulator::new(&optics);
    let dataset = Dataset::generate(DatasetKind::B2Via, scale::train_tiles(12), &simulator, 71);
    let (train, test) = dataset.split(0.7);
    let model = quick_model(&optics, &train);
    // At the 32 px floor the band-limited training resolution coincides with
    // the full tile; the path is only strictly hierarchical above it.
    assert!(model.training_resolution() <= optics.tile_px);
    if optics.tile_px > 32 {
        assert!(model.training_resolution() < optics.tile_px);
    }
    let eval = model.evaluate(&test, optics.resist_threshold);
    assert!(
        eval.aerial.psnr_db > 24.0,
        "PSNR {:.2}",
        eval.aerial.psnr_db
    );
}

#[test]
fn dataset_families_form_separable_clusters() {
    // Fig. 2(a) as a numeric assertion: via-layer and metal-layer masks embed
    // into clearly separated clusters under t-SNE of simple mask features.
    let optics = optics();
    let simulator = HopkinsSimulator::new(&optics);
    let metal = Dataset::generate(DatasetKind::B2Metal, 10, &simulator, 81);
    let vias = Dataset::generate(DatasetKind::B2Via, 10, &simulator, 82);

    let masks: Vec<&RealMatrix> = metal
        .samples()
        .iter()
        .chain(vias.samples().iter())
        .map(|s| &s.mask)
        .collect();
    let features = mask_features(&masks, 16);
    let reduced = pca(&features, 8);
    let embedding = tsne(
        &reduced,
        &TsneConfig {
            iterations: 200,
            ..TsneConfig::default()
        },
    );
    let metal_idx: Vec<usize> = (0..10).collect();
    let via_idx: Vec<usize> = (10..20).collect();
    let score = separation_score(&embedding, &metal_idx, &via_idx);
    assert!(
        score > 0.0,
        "families should separate in the embedding, score {score}"
    );
}

#[test]
fn merged_dataset_training_keeps_accuracy_on_both_families() {
    // The paper's B2m+B2v experiment: training on the mixture must not hurt
    // Nitho, because the kernels are shared physics, not per-family fits.
    let optics = optics();
    let simulator = HopkinsSimulator::new(&optics);
    let metal = Dataset::generate(DatasetKind::B2Metal, scale::train_tiles(7), &simulator, 91);
    let vias = Dataset::generate(DatasetKind::B2Via, scale::train_tiles(7), &simulator, 92);
    let merged = metal.merged(&vias).shuffled(3);
    let metal_test = Dataset::generate(DatasetKind::B2Metal, 4, &simulator, 93);
    let via_test = Dataset::generate(DatasetKind::B2Via, 4, &simulator, 94);

    let model = quick_model(&optics, &merged);
    let metal_eval = model.evaluate(&metal_test, optics.resist_threshold);
    let via_eval = model.evaluate(&via_test, optics.resist_threshold);
    assert!(
        metal_eval.aerial.psnr_db > 24.0,
        "metal PSNR {:.2}",
        metal_eval.aerial.psnr_db
    );
    assert!(
        via_eval.aerial.psnr_db > 24.0,
        "via PSNR {:.2}",
        via_eval.aerial.psnr_db
    );
    assert!(
        metal_eval.resist.miou_percent > 85.0,
        "metal mIOU {:.2}",
        metal_eval.resist.miou_percent
    );
    // Isolated contacts are tiny and print close to the dose threshold, so a
    // one-pixel contour shift already costs several IoU points at this coarse
    // 8 nm/px test resolution; the experiment-scale run (table3_accuracy)
    // operates at 4 nm/px where the margin is much larger.
    assert!(
        via_eval.resist.miou_percent > 60.0,
        "via mIOU {:.2}",
        via_eval.resist.miou_percent
    );
}
