//! Equivalence pins for the split-complex (SoA) compute core:
//!
//! 1. `ifft2_batch` and the fused SOCS accumulate match the retained AoS
//!    baseline within 1e-12 on random spectra (property-tested).
//! 2. One serve round-trip is byte-identical across `NITHO_THREADS` 1/2/4
//!    after the SoA rewrite (the `/v1/process_window` body carries no timing
//!    field, so whole responses compare byte for byte).

use litho_math::{ComplexMatrix, DeterministicRng, RealMatrix};
use litho_optics::{HopkinsSimulator, OpticalConfig, SocsKernels};
use litho_serve::{Json, ModelRegistry, Request, Service};
use proptest::prelude::*;

fn random_matrix(rows: usize, cols: usize, rng: &mut DeterministicRng) -> ComplexMatrix {
    ComplexMatrix::from_fn(rows, cols, |_, _| rng.normal_complex(0.0, 1.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `ifft2_batch` vs the retained per-matrix AoS inverse transform.
    #[test]
    fn prop_ifft2_batch_matches_aos(
        rows in 1usize..24,
        cols in 1usize..24,
        count in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let mut rng = DeterministicRng::new(seed);
        let spectra: Vec<ComplexMatrix> =
            (0..count).map(|_| random_matrix(rows, cols, &mut rng)).collect();
        let batch = litho_fft::soa::ifft2_batch(&spectra);
        for (fast, m) in batch.iter().zip(&spectra) {
            let reference = litho_fft::unplanned::ifft2(m);
            for (a, b) in fast.iter().zip(reference.iter()) {
                prop_assert!((*a - *b).abs() <= 1e-12);
            }
        }
    }

    /// The full fused synthesis (pad + shift + batched inverse FFT + |·|²
    /// accumulate + clear-field normalization) vs the retained AoS path, on
    /// random kernels and spectra, power-of-two and odd output sizes alike.
    #[test]
    fn prop_fused_socs_matches_aos(
        k_side in 1usize..10,
        out_extra in 0usize..24,
        count in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let mut rng = DeterministicRng::new(seed ^ 0x50c5);
        let kernels: Vec<ComplexMatrix> =
            (0..count).map(|_| random_matrix(k_side, k_side, &mut rng)).collect();
        let bank = SocsKernels::from_kernels(kernels);
        let spectrum = random_matrix(k_side, k_side, &mut rng);
        let out = k_side + out_extra;
        let mask_pixels = out * out;

        let fused = bank.aerial_from_cropped_spectrum(&spectrum, mask_pixels, out, out);
        let aos = bank.aerial_from_cropped_spectrum_aos(&spectrum, mask_pixels, out, out);
        let max_err = fused.zip_map(&aos, |a, b| (a - b).abs()).max();
        prop_assert!(max_err <= 1e-12, "max abs err {max_err}");
    }
}

/// The fused engine must not depend on the thread count: fixed kernel groups,
/// ordered reduction.
#[test]
fn fused_socs_bit_identical_across_thread_counts() {
    let mut rng = DeterministicRng::new(41);
    // 40 kernels crosses the 16-kernel group boundary twice.
    let kernels: Vec<ComplexMatrix> = (0..40).map(|_| random_matrix(9, 9, &mut rng)).collect();
    let bank = SocsKernels::from_kernels(kernels);
    let spectrum = random_matrix(9, 9, &mut rng);
    let serial = litho_parallel::with_threads(1, || {
        bank.aerial_from_cropped_spectrum(&spectrum, 4096, 64, 64)
    });
    for threads in [2usize, 4] {
        let parallel = litho_parallel::with_threads(threads, || {
            bank.aerial_from_cropped_spectrum(&spectrum, 4096, 64, 64)
        });
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
        }
    }
}

/// One serve round-trip, byte-identical across `NITHO_THREADS` 1/2/4 on the
/// SoA hot path (rigorous engine; the conditioned-model variant is pinned in
/// `tests/process_window.rs`).
#[test]
fn serve_round_trip_byte_identical_across_thread_counts() {
    let optics = OpticalConfig::builder()
        .tile_px(64)
        .pixel_nm(8.0)
        .kernel_count(6)
        .build();
    let mut registry = ModelRegistry::new();
    registry.register_hopkins("hopkins", HopkinsSimulator::new(&optics));
    let service = Service::new(registry);
    let body = r#"{
        "model": "hopkins",
        "mask": {"rows": 96, "cols": 96, "rects": [[16, 16, 80, 40], [40, 56, 56, 88]]},
        "focus_nm": [0, 120],
        "dose": [0.95, 1.05],
        "halo_px": 16,
        "include_pvb_band": true
    }"#;
    let run = |threads: usize| {
        litho_parallel::with_threads(threads, || {
            let response = service.handle(&Request {
                method: "POST".to_owned(),
                path: "/v1/process_window".to_owned(),
                headers: Vec::new(),
                body: body.as_bytes().to_vec(),
            });
            assert_eq!(
                response.status,
                200,
                "{}",
                String::from_utf8_lossy(&response.body)
            );
            response.body
        })
    };
    let reference = run(1);
    // Sanity: the body parses and covers the full grid.
    let doc = Json::parse(std::str::from_utf8(&reference).expect("UTF-8")).expect("JSON");
    assert_eq!(
        doc.get("conditions")
            .and_then(Json::as_array)
            .map(|c| c.len()),
        Some(4)
    );
    for threads in [2usize, 4] {
        assert_eq!(run(threads), reference, "threads={threads}");
    }
}

/// Keep a direct pin that the AoS baseline and the fused engine agree on a
/// *physical* kernel bank too (eigendecomposed TCC, real mask spectrum),
/// not just random data.
#[test]
fn physical_bank_fused_matches_aos() {
    let optics = OpticalConfig::builder()
        .tile_px(64)
        .pixel_nm(8.0)
        .kernel_count(8)
        .build();
    let simulator = HopkinsSimulator::new(&optics);
    let mask = RealMatrix::from_fn(64, 64, |i, j| {
        if (20..44).contains(&i) && (12..52).contains(&j) {
            1.0
        } else {
            0.0
        }
    });
    let bank = simulator.kernels();
    let spectrum = bank.cropped_mask_spectrum(&mask);
    let fused = bank.aerial_from_cropped_spectrum(&spectrum, mask.len(), 64, 64);
    let aos = bank.aerial_from_cropped_spectrum_aos(&spectrum, mask.len(), 64, 64);
    let max_err = fused.zip_map(&aos, |a, b| (a - b).abs()).max();
    assert!(max_err <= 1e-12, "max abs err {max_err}");
    // And the end-to-end simulator still produces a sane clear-field scale.
    let clear = simulator.aerial_image(&RealMatrix::filled(64, 64, 1.0));
    assert!((clear.mean() - 1.0).abs() < 1e-9);
}
