//! Scratch-reuse pin: the warm split-complex FFT hot path performs **zero**
//! heap allocations per transform — including its observability hooks.
//!
//! The whole binary runs under [`litho_testsupport::CountingAllocator`];
//! after one warm-up pass (which builds plans, twiddle tables, the
//! thread-local scratch arenas and the metrics registry) the fused SOCS
//! accumulate, the in-place SoA plan passes, the Bluestein SoA path *and*
//! direct registry counter/histogram/span operations must leave the
//! allocation counter untouched.
//!
//! This file deliberately holds a single `#[test]`: the counter is global to
//! the process, so a sibling test running concurrently would pollute it.

use litho_math::{ComplexMatrix, DeterministicRng, RealMatrix};
use litho_obs::{Counter, Histogram};
use litho_testsupport::{allocations, CountingAllocator};

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

static PIN_COUNTER: Counter = Counter::new("test_hot_path_pin_total", "alloc-pin probe counter");
static PIN_HISTOGRAM: Histogram = Histogram::new(
    "test_hot_path_pin_size",
    "alloc-pin probe histogram",
    &[1, 8, 64, u64::MAX],
);

#[test]
fn warm_fft_hot_path_is_allocation_free() {
    let mut rng = DeterministicRng::new(9);
    let kernels: Vec<ComplexMatrix> = (0..8)
        .map(|_| ComplexMatrix::from_fn(9, 9, |_, _| rng.normal_complex(0.0, 1.0)))
        .collect();
    let spectrum = ComplexMatrix::from_fn(9, 9, |_, _| rng.normal_complex(0.0, 1.0));
    let mut acc = RealMatrix::zeros(64, 64);

    let radix2 = litho_fft::plan_for(64);
    let bluestein = litho_fft::bluestein_plan_for(48);
    let mut re = vec![0.5f64; 64];
    let mut im = vec![-0.25f64; 64];
    let mut bre = vec![0.125f64; 48];
    let mut bim = vec![0.75f64; 48];

    // Warm-up: builds plan tables, this thread's scratch arenas, and the
    // observability state (registration Vec growth, the one-time
    // NITHO_METRICS env read inside `enabled()`).
    litho_fft::cache::register_metrics();
    litho_obs::register(&PIN_COUNTER);
    litho_obs::register(&PIN_HISTOGRAM);
    assert!(litho_obs::enabled(), "metrics default on in tests");
    for _ in 0..2 {
        litho_fft::soa::accumulate_socs_intensity(&kernels, &spectrum, &mut acc);
        radix2.forward_soa_in_place(&mut re, &mut im);
        radix2.inverse_soa_in_place(&mut re, &mut im);
        bluestein.forward_soa_in_place(&mut bre, &mut bim);
        bluestein.inverse_soa_in_place(&mut bre, &mut bim);
        PIN_COUNTER.inc();
        PIN_HISTOGRAM.record(8);
        drop(litho_obs::span("alloc_pin.warmup"));
    }

    let transforms_before = litho_fft::cache::total_fft_1d_transforms();
    let counter_before = PIN_COUNTER.get();
    let before = allocations();
    for _ in 0..16 {
        litho_fft::soa::accumulate_socs_intensity(&kernels, &spectrum, &mut acc);
        radix2.forward_soa_in_place(&mut re, &mut im);
        radix2.inverse_soa_in_place(&mut re, &mut im);
        bluestein.forward_soa_in_place(&mut bre, &mut bim);
        bluestein.inverse_soa_in_place(&mut bre, &mut bim);
        // Registry mutation and (inactive) span guards ride the same pinned
        // loop: instrumentation must stay allocation-free too.
        PIN_COUNTER.inc();
        PIN_HISTOGRAM.record(64);
        drop(litho_obs::span("alloc_pin.iter"));
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "warm FFT hot path allocated {} times in 16 iterations",
        after - before
    );

    // The work above must actually have happened.
    assert!(acc.iter().all(|v| v.is_finite()));
    assert!(acc.max() > 0.0);
    assert_eq!(PIN_COUNTER.get(), counter_before + 16);
    assert_eq!(PIN_HISTOGRAM.count(), 2 + 16);
    assert!(
        litho_fft::cache::total_fft_1d_transforms() > transforms_before,
        "registry-backed FFT transform counter must advance inside the pinned loop"
    );
}
