//! Scratch-reuse pin: the warm split-complex FFT hot path performs **zero**
//! heap allocations per transform.
//!
//! The whole binary runs under [`litho_testsupport::CountingAllocator`];
//! after one warm-up pass (which builds plans, twiddle tables and the
//! thread-local scratch arenas) the fused SOCS accumulate, the in-place SoA
//! plan passes and the Bluestein SoA path must leave the allocation counter
//! untouched.
//!
//! This file deliberately holds a single `#[test]`: the counter is global to
//! the process, so a sibling test running concurrently would pollute it.

use litho_math::{ComplexMatrix, DeterministicRng, RealMatrix};
use litho_testsupport::{allocations, CountingAllocator};

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn warm_fft_hot_path_is_allocation_free() {
    let mut rng = DeterministicRng::new(9);
    let kernels: Vec<ComplexMatrix> = (0..8)
        .map(|_| ComplexMatrix::from_fn(9, 9, |_, _| rng.normal_complex(0.0, 1.0)))
        .collect();
    let spectrum = ComplexMatrix::from_fn(9, 9, |_, _| rng.normal_complex(0.0, 1.0));
    let mut acc = RealMatrix::zeros(64, 64);

    let radix2 = litho_fft::plan_for(64);
    let bluestein = litho_fft::bluestein_plan_for(48);
    let mut re = vec![0.5f64; 64];
    let mut im = vec![-0.25f64; 64];
    let mut bre = vec![0.125f64; 48];
    let mut bim = vec![0.75f64; 48];

    // Warm-up: builds plan tables and this thread's scratch arenas.
    for _ in 0..2 {
        litho_fft::soa::accumulate_socs_intensity(&kernels, &spectrum, &mut acc);
        radix2.forward_soa_in_place(&mut re, &mut im);
        radix2.inverse_soa_in_place(&mut re, &mut im);
        bluestein.forward_soa_in_place(&mut bre, &mut bim);
        bluestein.inverse_soa_in_place(&mut bre, &mut bim);
    }

    let before = allocations();
    for _ in 0..16 {
        litho_fft::soa::accumulate_socs_intensity(&kernels, &spectrum, &mut acc);
        radix2.forward_soa_in_place(&mut re, &mut im);
        radix2.inverse_soa_in_place(&mut re, &mut im);
        bluestein.forward_soa_in_place(&mut bre, &mut bim);
        bluestein.inverse_soa_in_place(&mut bre, &mut bim);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "warm FFT hot path allocated {} times in 16 iterations",
        after - before
    );

    // The work above must actually have happened.
    assert!(acc.iter().all(|v| v.is_finite()));
    assert!(acc.max() > 0.0);
}
