//! End-to-end round-trip through the `litho_serve` HTTP service: a real
//! TCP server on an ephemeral port, JSON in, stitched simulation out, clean
//! shutdown — the same exchange the CI smoke job drives against the
//! `nitho-serve` binary.

use std::sync::Arc;

use litho_optics::{HopkinsSimulator, OpticalConfig};
use litho_serve::{http_request, HttpServer, Json, ModelRegistry, Response, ServeConfig, Service};

fn start_service() -> (
    std::net::SocketAddr,
    litho_serve::ShutdownHandle,
    std::thread::JoinHandle<()>,
) {
    let optics = OpticalConfig::builder()
        .tile_px(64)
        .pixel_nm(8.0)
        .kernel_count(6)
        .build();
    let mut registry = ModelRegistry::new();
    registry.register_hopkins("hopkins", HopkinsSimulator::new(&optics));
    let service = Service::new(registry);

    let server = HttpServer::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let admin = shutdown.clone();
    let join = std::thread::spawn(move || {
        server.serve(move |request| {
            if (request.method.as_str(), request.path.as_str()) == ("POST", "/v1/shutdown") {
                admin.shutdown();
                return Response::json(200, r#"{"status":"shutting down"}"#.to_owned());
            }
            service.handle(request)
        });
    });
    (addr, shutdown, join)
}

#[test]
fn simulate_roundtrip_over_real_sockets() {
    let (addr, _shutdown, join) = start_service();

    let (status, body) = http_request(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).expect("healthz JSON");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));

    let (status, body) = http_request(addr, "GET", "/v1/models", None).expect("models");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).expect("models JSON");
    let models = doc.get("models").and_then(Json::as_array).expect("array");
    assert_eq!(
        models[0].get("name").and_then(Json::as_str),
        Some("hopkins")
    );

    // A 128×128 layout — 4× the 64-px tile area — through /v1/simulate.
    let request_body = r#"{
        "model": "hopkins",
        "mask": {
            "rows": 128, "cols": 128,
            "rects": [[16, 16, 112, 40], [16, 56, 48, 112], [72, 64, 112, 104]]
        }
    }"#;
    let (status, body) =
        http_request(addr, "POST", "/v1/simulate", Some(request_body)).expect("simulate");
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).expect("simulate JSON");
    assert_eq!(doc.get("rows").and_then(Json::as_usize), Some(128));
    assert_eq!(doc.get("cols").and_then(Json::as_usize), Some(128));
    assert!(doc.get("tiles").and_then(Json::as_usize).expect("tiles") >= 4);
    let aerial = doc
        .get("aerial")
        .and_then(Json::as_number_slice)
        .expect("aerial");
    assert_eq!(aerial.len(), 128 * 128);
    assert!(aerial.iter().all(|&x| x.is_finite() && x >= 0.0));
    let resist = doc
        .get("resist")
        .and_then(Json::as_number_slice)
        .expect("resist");
    let printed: f64 = resist.iter().sum();
    assert!(
        printed > 0.0 && printed < (128 * 128) as f64,
        "resist should print part of the layout ({printed} px)"
    );

    // Unknown models are a client error, not a crash.
    let (status, _) = http_request(
        addr,
        "POST",
        "/v1/simulate",
        Some(r#"{"model":"nope","mask":{"rows":64,"cols":64,"rects":[[0,0,8,8]]}}"#),
    )
    .expect("unknown model");
    assert_eq!(status, 404);

    // Clean shutdown: the admin route stops the accept loop and the server
    // thread exits.
    let (status, body) = http_request(addr, "POST", "/v1/shutdown", None).expect("shutdown");
    assert_eq!(status, 200);
    assert!(body.contains("shutting down"));
    join.join().expect("server thread exits cleanly");
}

#[test]
fn event_tier_roundtrip_matches_blocking_tier() {
    // The same exchange as above, served once by the blocking
    // thread-per-connection tier and once by the event-loop tier: the
    // /v1/simulate bytes must be identical, and the event tier's /healthz
    // must report its serving metrics.
    let optics = OpticalConfig::builder()
        .tile_px(64)
        .pixel_nm(8.0)
        .kernel_count(6)
        .build();
    let mut registry = ModelRegistry::new();
    registry.register_hopkins("hopkins", HopkinsSimulator::new(&optics));
    let service = Arc::new(Service::new(registry));
    let request_body = r#"{
        "model": "hopkins",
        "mask": {"rows": 96, "cols": 96, "rects": [[16, 16, 80, 40], [16, 56, 48, 80]]}
    }"#;

    // Blocking tier.
    let server = HttpServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("addr");
    let shutdown = server.shutdown_handle();
    let blocking_service = Arc::clone(&service);
    let join = std::thread::spawn(move || {
        server.serve(move |request| blocking_service.handle(request));
    });
    let (status, blocking_body) =
        http_request(addr, "POST", "/v1/simulate", Some(request_body)).expect("simulate");
    assert_eq!(status, 200, "{blocking_body}");
    shutdown.shutdown();
    join.join().expect("blocking server exits");

    // Event tier, same service.
    let server = HttpServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("addr");
    let shutdown = server.shutdown_handle();
    let config = ServeConfig {
        workers: 2,
        queue_depth: 8,
        ..ServeConfig::default()
    };
    let metrics = service.metrics().clone();
    let event_service = Arc::clone(&service);
    let join = std::thread::spawn(move || {
        server.serve_event(&config, &metrics, move |request| {
            event_service.handle(request)
        });
    });
    let (status, event_body) =
        http_request(addr, "POST", "/v1/simulate", Some(request_body)).expect("simulate");
    assert_eq!(status, 200, "{event_body}");
    assert_eq!(event_body, blocking_body, "tiers must agree byte for byte");

    let (status, health) = http_request(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(status, 200);
    let doc = Json::parse(&health).expect("healthz JSON");
    assert_eq!(doc.get("workers").and_then(Json::as_usize), Some(2));
    assert_eq!(doc.get("queue_capacity").and_then(Json::as_usize), Some(8));
    assert!(doc.get("served").and_then(Json::as_usize).expect("served") >= 1);
    assert!(doc.get("latency_ms").is_some(), "{health}");
    shutdown.shutdown();
    join.join().expect("event server exits");
}
