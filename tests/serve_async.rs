//! Byte-identity contract of the event-loop serving tier.
//!
//! The async tier (non-blocking event loop + bounded queue + worker pool +
//! cross-request condition batching) must produce responses that are
//! byte-for-byte identical to the serial `Service::handle` reference, for
//! any worker count, queue depth, intra-tile thread count and request
//! arrival order. `/healthz` and `/metrics` are deliberately excluded from
//! the identity set — they report live serving metrics and are *supposed*
//! to change between requests.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use litho_optics::{HopkinsSimulator, OpticalConfig};
use litho_serve::{
    http_request, HttpServer, ModelRegistry, Request, ServeConfig, ServerMetrics, Service,
};

/// Registry with every engine kind the wire protocol can exercise: a
/// rigorous Hopkins reference and a conditioned (untrained, deterministic)
/// Nitho model so `/v1/process_window` runs through the condition batcher.
fn shared_service() -> Arc<Service> {
    let optics = OpticalConfig::builder()
        .tile_px(64)
        .pixel_nm(8.0)
        .kernel_count(6)
        .build();
    let mut model = nitho::NithoModel::new(
        nitho::NithoConfig {
            kernel_side: Some(9),
            condition: Some(nitho::ConditionEncoding::default()),
            ..nitho::NithoConfig::fast()
        },
        &optics,
    );
    model.refresh_kernels();
    let mut registry = ModelRegistry::new();
    registry.register_nitho("nitho", model);
    registry.register_hopkins("hopkins", HopkinsSimulator::new(&optics));
    Arc::new(Service::new(registry))
}

/// The mixed-endpoint request set: simulation on both engines, a batched
/// process-window sweep, metadata, and client errors (404 model, 400 body).
fn request_mix() -> Vec<(&'static str, &'static str, Option<&'static str>)> {
    vec![
        (
            "POST",
            "/v1/simulate",
            Some(
                r#"{"model":"hopkins","mask":{"rows":96,"cols":64,
                    "rects":[[8,8,88,24],[8,40,48,56]]},"outputs":["resist"]}"#,
            ),
        ),
        (
            "POST",
            "/v1/simulate",
            Some(
                r#"{"model":"nitho","mask":{"rows":64,"cols":64,
                    "rects":[[16,8,48,24],[16,40,48,56]]}}"#,
            ),
        ),
        (
            "POST",
            "/v1/process_window",
            Some(
                r#"{"model":"nitho","mask":{"rows":48,"cols":48,
                    "rects":[[8,8,40,24]]},"focus_nm":[-50,0,50],"dose":[1.0]}"#,
            ),
        ),
        (
            "POST",
            "/v1/process_window",
            Some(
                r#"{"model":"nitho","mask":{"rows":48,"cols":48,
                    "rects":[[8,24,40,40]]},"focus_nm":[0,60]}"#,
            ),
        ),
        ("GET", "/v1/models", None),
        (
            "POST",
            "/v1/simulate",
            Some(r#"{"model":"nope","mask":{"rows":64,"cols":64,"rects":[[0,0,8,8]]}}"#),
        ),
        ("POST", "/v1/process_window", Some("not json")),
        ("GET", "/nowhere", None),
    ]
}

/// Serial reference: `(status, body)` per spec straight through
/// `Service::handle`, no sockets, no queue, no workers.
fn serial_reference(service: &Service) -> Vec<(u16, String)> {
    request_mix()
        .iter()
        .map(|(method, path, body)| {
            let response = service.handle(&Request {
                method: (*method).to_owned(),
                path: (*path).to_owned(),
                headers: Vec::new(),
                body: body.unwrap_or("").as_bytes().to_vec(),
            });
            (
                response.status,
                String::from_utf8(response.body.clone()).expect("UTF-8 body"),
            )
        })
        .collect()
}

/// Starts the event tier for `service` with the given shape and drives
/// `rounds` copies of the request mix from `clients` concurrent clients,
/// returning `(spec index, status, body)` observations.
fn drive_event_tier(
    service: &Arc<Service>,
    workers: usize,
    queue_depth: usize,
    threads: usize,
    clients: usize,
    rounds: usize,
    order: &[usize],
) -> Vec<(usize, u16, String)> {
    let mix = request_mix();
    assert_eq!(order.len(), mix.len(), "order must permute the mix");
    let server = HttpServer::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let config = ServeConfig {
        workers,
        queue_depth,
        ..ServeConfig::default()
    };
    let metrics = Arc::new(ServerMetrics::new());
    let handler_service = Arc::clone(service);
    let join = std::thread::spawn(move || {
        litho_parallel::with_threads(threads, || {
            server.serve_event(&config, &metrics, move |request| {
                handler_service.handle(request)
            });
        });
    });

    let total = mix.len() * rounds;
    let next = AtomicUsize::new(0);
    let observed = Mutex::new(Vec::with_capacity(total));
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| loop {
                let slot = next.fetch_add(1, Ordering::Relaxed);
                if slot >= total {
                    break;
                }
                let spec = order[slot % order.len()];
                let (method, path, body) = mix[spec];
                let (status, response) = http_request(addr, method, path, body).expect("transport");
                observed.lock().unwrap().push((spec, status, response));
            });
        }
    });

    shutdown.shutdown();
    join.join().expect("event loop exits");
    observed.into_inner().unwrap()
}

#[test]
fn event_tier_is_byte_identical_to_serial_reference() {
    let service = shared_service();
    let reference = serial_reference(&service);
    let identity = request_mix().len();

    // Worker pool shapes × intra-tile thread counts × arrival orders. The
    // forward and reversed orders bracket the permutation space; concurrent
    // clients randomise true arrival order within each run anyway.
    let forward: Vec<usize> = (0..identity).collect();
    let reversed: Vec<usize> = (0..identity).rev().collect();
    let shapes = [
        (1usize, 4usize, 1usize, &forward),
        (2, 8, 2, &reversed),
        (4, 16, 4, &forward),
    ];
    for (workers, queue_depth, threads, order) in shapes {
        let observed = drive_event_tier(&service, workers, queue_depth, threads, 4, 2, order);
        assert_eq!(observed.len(), identity * 2);
        for (spec, status, body) in &observed {
            let (want_status, want_body) = &reference[*spec];
            assert_eq!(
                (status, body.as_str()),
                (want_status, want_body.as_str()),
                "spec {spec} diverged under workers={workers} \
                 queue={queue_depth} threads={threads}"
            );
        }
    }
}

#[test]
fn arrival_order_permutations_do_not_change_any_response_byte() {
    let service = shared_service();
    let reference = serial_reference(&service);
    let mix_len = request_mix().len();

    // Sequential passes in rotated orders: each request's bytes must be a
    // pure function of the request, never of what was served before it —
    // the condition batcher must not leak one request's conditions into
    // another's response.
    let mut order: Vec<usize> = (0..mix_len).collect();
    for rotation in 0..3 {
        order.rotate_left(1 + rotation % 2);
        let observed = drive_event_tier(&service, 2, 8, 1, 1, 1, &order);
        for (spec, status, body) in &observed {
            let (want_status, want_body) = &reference[*spec];
            assert_eq!(
                (status, body.as_str()),
                (want_status, want_body.as_str()),
                "spec {spec} diverged in rotation {rotation}"
            );
        }
    }
}

#[test]
fn shutdown_drains_in_flight_simulate() {
    let service = shared_service();
    let server = HttpServer::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let config = ServeConfig {
        workers: 1,
        queue_depth: 4,
        ..ServeConfig::default()
    };
    let metrics = Arc::new(ServerMetrics::new());
    let entered = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let handler_entered = Arc::clone(&entered);
    let handler_release = Arc::clone(&release);
    let handler_service = Arc::clone(&service);
    let join = std::thread::spawn(move || {
        server.serve_event(&config, &metrics, move |request| {
            handler_entered.store(true, Ordering::SeqCst);
            while !handler_release.load(Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            handler_service.handle(request)
        });
    });

    // A real /v1/simulate that is provably in flight when shutdown lands.
    let body = r#"{"model":"hopkins","mask":{"rows":64,"cols":64,"rects":[[8,8,56,24]]}}"#;
    let client = std::thread::spawn(move || {
        http_request(addr, "POST", "/v1/simulate", Some(body)).expect("in-flight simulate")
    });
    while !entered.load(Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    shutdown.shutdown();
    release.store(true, Ordering::SeqCst);

    let (status, response) = client.join().expect("client thread");
    assert_eq!(status, 200, "{response}");
    assert!(response.contains("\"tiles\""), "{response}");
    join.join().expect("event loop drains and exits");

    // The reply matches the serial reference even though it crossed a
    // shutdown boundary.
    let reference = service.handle(&Request {
        method: "POST".to_owned(),
        path: "/v1/simulate".to_owned(),
        headers: Vec::new(),
        body: body.as_bytes().to_vec(),
    });
    assert_eq!(response.as_bytes(), &reference.body[..]);
}

/// Both overload 503 flavours of the event tier — queue-full shed ("server
/// busy") and deadline-expired — must carry the `retry-after` hint, end to
/// end through a real `Service` handler. The unit tests in `litho_serve`
/// pin each write site; this pins the wire behaviour clients actually see.
#[test]
fn overload_503s_carry_retry_after() {
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let service = shared_service();
    let server = HttpServer::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let metrics = Arc::new(ServerMetrics::new());
    let handler_service = Arc::clone(&service);
    let join = std::thread::spawn(move || {
        let config = ServeConfig {
            workers: 1,
            queue_depth: 1,
            deadline: std::time::Duration::from_millis(50),
            ..ServeConfig::default()
        };
        server.serve_event(&config, &metrics, move |request| {
            // Congest the single worker so the 1-deep queue both expires
            // (50 ms deadline < 200 ms service time) and overflows.
            std::thread::sleep(std::time::Duration::from_millis(200));
            handler_service.handle(request)
        });
    });

    // Raw sockets so response heads stay visible (`http_request` keeps only
    // the body).
    let raw_models_request = move || -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /v1/models HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n")
            .expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    };

    // One request to occupy the worker, then a burst: one lands in the
    // queue (and expires), the rest are shed.
    let first = std::thread::spawn(raw_models_request);
    std::thread::sleep(std::time::Duration::from_millis(60));
    let burst: Vec<String> = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..7).map(|_| scope.spawn(raw_models_request)).collect();
        clients.into_iter().map(|c| c.join().unwrap()).collect()
    });
    assert!(
        first.join().unwrap().starts_with("HTTP/1.1 200"),
        "the in-flight request must complete"
    );

    let rejected: Vec<&String> = burst
        .iter()
        .filter(|r| r.starts_with("HTTP/1.1 503"))
        .collect();
    assert!(
        rejected.iter().any(|r| r.contains("server busy")),
        "burst over a 1-deep queue must shed at least one request"
    );
    assert!(
        rejected.iter().any(|r| r.contains("deadline")),
        "the queued request must expire behind the congested worker"
    );
    for response in &rejected {
        assert!(
            response.to_ascii_lowercase().contains("retry-after: 1"),
            "every 503 must carry retry-after: {response}"
        );
    }

    shutdown.shutdown();
    join.join().expect("event loop exits");
}

/// One line of Prometheus text exposition: a `# HELP`/`# TYPE` comment or a
/// `name{labels} value` sample with a finite numeric value.
fn assert_exposition_line(line: &str) {
    fn is_name(name: &str) -> bool {
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            && !name.starts_with(|c: char| c.is_ascii_digit())
    }
    if let Some(comment) = line.strip_prefix("# ") {
        let (kind, rest) = comment.split_once(' ').expect("comment payload: {line}");
        assert!(matches!(kind, "HELP" | "TYPE"), "comment kind: {line}");
        let name = rest.split_whitespace().next().expect("metric name: {line}");
        assert!(is_name(name), "metric name grammar: {line}");
        if kind == "TYPE" {
            let family_type = rest.split_whitespace().nth(1).expect("type: {line}");
            assert!(
                matches!(family_type, "counter" | "gauge" | "histogram"),
                "family type: {line}"
            );
        }
        return;
    }
    let (series, value) = line.rsplit_once(' ').expect("sample grammar: {line}");
    let name = series.split('{').next().unwrap();
    assert!(is_name(name), "sample name grammar: {line}");
    if let Some(rest) = series.strip_prefix(name) {
        if !rest.is_empty() {
            assert!(
                rest.starts_with('{') && rest.ends_with('}'),
                "label block grammar: {line}"
            );
        }
    }
    if value != "+Inf" {
        let parsed: f64 = value.parse().unwrap_or_else(|_| panic!("value: {line}"));
        assert!(parsed.is_finite(), "finite value: {line}");
    }
}

#[test]
fn metrics_endpoint_serves_valid_prometheus_exposition() {
    let service = shared_service();
    // Warm real traffic through the event tier first so the exposition
    // carries live engine counters, then scrape it over the same socket.
    let forward: Vec<usize> = (0..request_mix().len()).collect();
    drive_event_tier(&service, 2, 8, 1, 2, 1, &forward);

    let server = HttpServer::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let config = ServeConfig {
        workers: 1,
        queue_depth: 4,
        ..ServeConfig::default()
    };
    let metrics = Arc::new(ServerMetrics::new());
    let handler_service = Arc::clone(&service);
    let join = std::thread::spawn(move || {
        server.serve_event(&config, &metrics, move |request| {
            handler_service.handle(request)
        });
    });
    let (status, body) = http_request(addr, "GET", "/metrics", None).expect("scrape");
    shutdown.shutdown();
    join.join().expect("event loop exits");

    assert_eq!(status, 200);
    let lines: Vec<&str> = body.lines().collect();
    assert!(!lines.is_empty(), "exposition must not be empty");
    for line in &lines {
        assert_exposition_line(line);
    }
    // Families from every instrumented layer are present with live values.
    for family in [
        "litho_fft_1d_transforms_total",
        "litho_optics_socs_aerials_total",
        "litho_cmlp_infer_dispatches_total",
        "litho_serve_requests_total",
        "litho_serve_batcher_dispatches_total",
        "litho_parallel_regions_total",
        "litho_serve_request_latency_ms_bucket",
    ] {
        assert!(
            lines.iter().any(|l| l.starts_with(family)),
            "family {family} missing from exposition"
        );
    }
}
