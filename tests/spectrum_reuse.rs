//! Regression pins for spectrum reuse across process-window conditions.
//!
//! The cropped mask spectrum depends only on the mask, never on focus or
//! dose. These tests count actual 1-D FFT kernel executions (the thread-local
//! counters exposed by `litho_fft::cache`) to pin that:
//!
//! 1. a conditioned sweep over C conditions costs exactly
//!    `spectrum + Σ per-condition synthesis` transforms — the spectrum is
//!    computed once, not per condition;
//! 2. `ProcessDataset::generate` adds only synthesis transforms when a second
//!    defocus group is added — the per-mask spectra are hoisted out of the
//!    condition loop.
//!
//! The counters are thread-local, so everything here runs under
//! `litho_parallel::with_threads(1, …)` (inline execution on this thread) and
//! sibling tests on other threads cannot disturb the accounting.

use litho_fft::cache::{thread_fft_1d_transforms, thread_plan_requests};
use litho_masks::{DatasetKind, ProcessDataset};
use litho_math::RealMatrix;
use litho_optics::{HopkinsSimulator, OpticalConfig, ProcessCondition};
use nitho::{ConditionEncoding, NithoConfig, NithoModel};

fn counted<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = thread_fft_1d_transforms();
    let result = litho_parallel::with_threads(1, f);
    (result, thread_fft_1d_transforms() - before)
}

fn test_optics() -> OpticalConfig {
    OpticalConfig::builder()
        .tile_px(32)
        .pixel_nm(16.0)
        .kernel_count(4)
        .build()
}

#[test]
fn conditioned_sweep_computes_the_mask_spectrum_once() {
    let optics = test_optics();
    let config = NithoConfig {
        kernel_side: Some(9),
        kernel_count: 4,
        condition: Some(ConditionEncoding::default()),
        ..NithoConfig::fast()
    };
    let mut model = NithoModel::new(config, &optics);
    model.refresh_kernels();
    let mask = RealMatrix::from_fn(32, 32, |i, j| {
        if (8..24).contains(&i) && (4..28).contains(&j) {
            1.0
        } else {
            0.0
        }
    });
    let conditions = [
        ProcessCondition::nominal(),
        ProcessCondition::new(60.0, 1.0),
        ProcessCondition::new(-60.0, 1.1),
    ];

    // Cost of the condition-independent half…
    let (spectrum, spectrum_cost) = counted(|| model.cropped_spectrum(&mask));
    assert!(spectrum_cost > 0, "spectrum must run real transforms");

    // …and of each condition's synthesis alone (no spectrum recompute).
    let mut per_condition = Vec::new();
    for condition in &conditions {
        let (_, cost) = counted(|| {
            let frozen = model.at_condition(condition).expect("conditioned model");
            frozen.predict_aerial_from_spectrum(&spectrum, mask.len(), 32)
        });
        assert!(cost > 0, "synthesis must run real transforms");
        per_condition.push(cost);
    }

    // The full hoisted sweep must cost exactly one spectrum plus the
    // per-condition syntheses — nothing hidden recomputes the mask FFT.
    let (_, sweep_cost) = counted(|| {
        let spectrum = model.cropped_spectrum(&mask);
        for condition in &conditions {
            let frozen = model.at_condition(condition).expect("conditioned model");
            let aerial = frozen.predict_aerial_from_spectrum(&spectrum, mask.len(), 32);
            std::hint::black_box(aerial);
        }
    });
    let expected = spectrum_cost + per_condition.iter().sum::<u64>();
    assert_eq!(
        sweep_cost, expected,
        "sweep must reuse the spectrum: cost {sweep_cost}, expected {expected} \
         (spectrum {spectrum_cost} + per-condition {per_condition:?})"
    );

    // And the plan cache served every lookup without growing costs: lookups
    // happen, but far fewer than transforms (one per pass, not per row).
    let before_plans = thread_plan_requests();
    let (_, with_reuse) = counted(|| {
        let spectrum = model.cropped_spectrum(&mask);
        std::hint::black_box(spectrum);
    });
    assert!(thread_plan_requests() > before_plans);
    assert_eq!(with_reuse, spectrum_cost, "spectrum cost must be stable");
}

#[test]
fn process_dataset_hoists_spectra_out_of_the_condition_loop() {
    let optics = test_optics();
    let simulator = HopkinsSimulator::new(&optics);
    let one_defocus = [ProcessCondition::nominal()];
    let two_defocus = [
        ProcessCondition::nominal(),
        ProcessCondition::new(80.0, 1.0),
    ];

    let (_, cost_one) =
        counted(|| ProcessDataset::generate(DatasetKind::B1, 2, &simulator, &one_defocus, 5));
    let (_, cost_two) =
        counted(|| ProcessDataset::generate(DatasetKind::B1, 2, &simulator, &two_defocus, 5));

    // The second defocus group may only add per-mask *synthesis* transforms —
    // measure that synthesis directly on the same masks and spectra.
    let pd = ProcessDataset::generate(DatasetKind::B1, 2, &simulator, &one_defocus, 5);
    let masks: Vec<RealMatrix> = pd.groups()[0]
        .1
        .samples()
        .iter()
        .map(|s| s.mask.clone())
        .collect();
    let defocused = simulator.at_condition(&ProcessCondition::new(80.0, 1.0));
    let spectra: Vec<_> = masks
        .iter()
        .map(|m| simulator.kernels().cropped_mask_spectrum(m))
        .collect();
    let (_, synthesis_only) = counted(|| {
        for (mask, spectrum) in masks.iter().zip(&spectra) {
            let aerial =
                defocused
                    .kernels()
                    .aerial_from_cropped_spectrum(spectrum, mask.len(), 32, 32);
            std::hint::black_box(aerial);
        }
    });
    assert!(synthesis_only > 0);
    assert_eq!(
        cost_two - cost_one,
        synthesis_only,
        "adding a defocus group must not recompute mask spectra \
         (one-group {cost_one}, two-group {cost_two}, synthesis {synthesis_only})"
    );

    // Dose-only variants reuse the defocus group's aerials entirely: zero
    // additional transforms.
    let dosed = [ProcessCondition::nominal(), ProcessCondition::new(0.0, 1.2)];
    let (_, cost_dosed) =
        counted(|| ProcessDataset::generate(DatasetKind::B1, 2, &simulator, &dosed, 5));
    assert_eq!(cost_dosed, cost_one, "dose variants must be FFT-free");
}
