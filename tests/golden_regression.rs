//! Golden-regression harness: small committed binary fixtures pin the
//! physics of the golden engine so numerical drift is caught by CI, not by
//! eyeballing benches.
//!
//! Fixtures live in `tests/golden/` and are regenerated with
//!
//! ```text
//! cargo test -p litho_integration --test golden_regression \
//!     regen_goldens -- --ignored
//! ```
//!
//! after any *intentional* physics change; the diff then shows up in review
//! as a fixture change rather than a silent behavior shift. The comparison
//! tests run in the default tier-1 job with explicit tolerances (exact
//! reproduction is not required across compilers/libm versions, only
//! physics-level agreement).
//!
//! Fixture format (little-endian):
//!
//! * matrices — `NGLDMAT1`, u32 rows, u32 cols, rows·cols f64 values
//! * tables   — `NGLDTAB1`, u32 count, count f64 values

use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use litho_masks::{Dataset, DatasetKind};
use litho_math::RealMatrix;
use litho_metrics::metrology::{cd_px, Cutline};
use litho_optics::{HopkinsSimulator, OpticalConfig, ProcessCondition};

const MATRIX_MAGIC: &[u8; 8] = b"NGLDMAT1";
const TABLE_MAGIC: &[u8; 8] = b"NGLDTAB1";

/// Tolerances: aerial images are clear-field-normalized (O(1) values), so
/// 1e-9 absolute catches any physics change while ignoring libm jitter.
const AERIAL_TOLERANCE: f64 = 1e-9;
const ENERGY_RELATIVE_TOLERANCE: f64 = 1e-9;
const CD_TOLERANCE_PX: f64 = 1e-6;

fn golden_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/integration; fixtures live at the
    // conventional workspace-level tests/golden.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn write_matrix(path: &Path, matrix: &RealMatrix) {
    let mut file = std::fs::File::create(path).expect("create fixture");
    file.write_all(MATRIX_MAGIC).expect("write magic");
    file.write_all(&(matrix.rows() as u32).to_le_bytes())
        .expect("write rows");
    file.write_all(&(matrix.cols() as u32).to_le_bytes())
        .expect("write cols");
    for &v in matrix.iter() {
        file.write_all(&v.to_le_bytes()).expect("write value");
    }
}

fn read_matrix(path: &Path) -> RealMatrix {
    let mut file = std::fs::File::open(path).unwrap_or_else(|err| {
        panic!(
            "missing golden fixture {} ({err}); regenerate with \
             `cargo test -p litho_integration --test golden_regression \
             regen_goldens -- --ignored`",
            path.display()
        )
    });
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic).expect("read magic");
    assert_eq!(&magic, MATRIX_MAGIC, "not a golden matrix fixture");
    let mut word = [0u8; 4];
    file.read_exact(&mut word).expect("read rows");
    let rows = u32::from_le_bytes(word) as usize;
    file.read_exact(&mut word).expect("read cols");
    let cols = u32::from_le_bytes(word) as usize;
    let mut data = Vec::with_capacity(rows * cols);
    let mut value = [0u8; 8];
    for _ in 0..rows * cols {
        file.read_exact(&mut value).expect("read value");
        data.push(f64::from_le_bytes(value));
    }
    RealMatrix::from_vec(rows, cols, data)
}

fn write_table(path: &Path, values: &[f64]) {
    let mut file = std::fs::File::create(path).expect("create fixture");
    file.write_all(TABLE_MAGIC).expect("write magic");
    file.write_all(&(values.len() as u32).to_le_bytes())
        .expect("write count");
    for &v in values {
        file.write_all(&v.to_le_bytes()).expect("write value");
    }
}

fn read_table(path: &Path) -> Vec<f64> {
    let mut file = std::fs::File::open(path).unwrap_or_else(|err| {
        panic!(
            "missing golden fixture {} ({err}); regenerate with \
             `cargo test -p litho_integration --test golden_regression \
             regen_goldens -- --ignored`",
            path.display()
        )
    });
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic).expect("read magic");
    assert_eq!(&magic, TABLE_MAGIC, "not a golden table fixture");
    let mut word = [0u8; 4];
    file.read_exact(&mut word).expect("read count");
    let count = u32::from_le_bytes(word) as usize;
    let mut values = Vec::with_capacity(count);
    let mut value = [0u8; 8];
    for _ in 0..count {
        file.read_exact(&mut value).expect("read value");
        values.push(f64::from_le_bytes(value));
    }
    values
}

/// The frozen scenario behind every fixture. Deliberately *not* wired to the
/// NITHO_* scale knobs: goldens pin one fixed, fast configuration.
fn golden_simulator() -> HopkinsSimulator {
    let optics = OpticalConfig::builder()
        .tile_px(64)
        .pixel_nm(8.0)
        .kernel_count(8)
        .build();
    HopkinsSimulator::new(&optics)
}

const DEFOCUS_NM: f64 = 120.0;
const GOLDEN_SEED: u64 = 4242;
const CD_THRESHOLDS: [f64; 4] = [0.15, 0.225, 0.3, 0.4];

fn golden_mask(simulator: &HopkinsSimulator) -> RealMatrix {
    Dataset::generate(DatasetKind::B1, 1, simulator, GOLDEN_SEED).samples()[0]
        .mask
        .clone()
}

/// CD table layout: for each threshold, [nominal row-CD, nominal col-CD,
/// defocused row-CD, defocused col-CD], with unprinted cutlines encoded as
/// −1.
fn cd_table(nominal: &RealMatrix, defocused: &RealMatrix) -> Vec<f64> {
    let encode = |v: Option<f64>| v.unwrap_or(-1.0);
    let mut table = Vec::with_capacity(4 * CD_THRESHOLDS.len());
    for &threshold in &CD_THRESHOLDS {
        let [row, col] = Cutline::center(nominal.rows(), nominal.cols());
        table.push(encode(cd_px(nominal, row, threshold)));
        table.push(encode(cd_px(nominal, col, threshold)));
        table.push(encode(cd_px(defocused, row, threshold)));
        table.push(encode(cd_px(defocused, col, threshold)));
    }
    table
}

/// Regenerates every fixture. Run explicitly (`--ignored`) after an
/// intentional physics change and commit the resulting binaries.
#[test]
#[ignore = "regenerates the committed golden fixtures"]
fn regen_goldens() {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("create tests/golden");
    let simulator = golden_simulator();
    let mask = golden_mask(&simulator);

    let nominal = simulator.aerial_image(&mask);
    write_matrix(&dir.join("aerial_nominal.bin"), &nominal);

    let defocused_sim = simulator.at_condition(&ProcessCondition::new(DEFOCUS_NM, 1.0));
    let defocused = defocused_sim.aerial_image(&mask);
    write_matrix(&dir.join("aerial_defocus.bin"), &defocused);

    write_table(
        &dir.join("kernel_energies.bin"),
        simulator.kernels().eigenvalues(),
    );
    write_table(&dir.join("cd_table.bin"), &cd_table(&nominal, &defocused));
    println!("regenerated golden fixtures in {}", dir.display());
}

#[test]
fn golden_nominal_aerial_matches() {
    let simulator = golden_simulator();
    let mask = golden_mask(&simulator);
    let aerial = simulator.aerial_image(&mask);
    let golden = read_matrix(&golden_dir().join("aerial_nominal.bin"));
    assert_eq!(aerial.shape(), golden.shape());
    let worst = aerial.zip_map(&golden, |a, b| (a - b).abs()).max();
    assert!(
        worst < AERIAL_TOLERANCE,
        "nominal aerial drifted from the golden fixture by {worst:e}"
    );
}

#[test]
fn golden_defocused_aerial_matches() {
    let simulator = golden_simulator();
    let mask = golden_mask(&simulator);
    let defocused = simulator
        .at_condition(&ProcessCondition::new(DEFOCUS_NM, 1.0))
        .aerial_image(&mask);
    let golden = read_matrix(&golden_dir().join("aerial_defocus.bin"));
    let worst = defocused.zip_map(&golden, |a, b| (a - b).abs()).max();
    assert!(
        worst < AERIAL_TOLERANCE,
        "defocused aerial drifted from the golden fixture by {worst:e}"
    );
    // The two fixtures must genuinely differ — defocus is not a no-op.
    let nominal = read_matrix(&golden_dir().join("aerial_nominal.bin"));
    assert!(nominal.zip_map(&golden, |a, b| (a - b).abs()).max() > 1e-4);
}

#[test]
fn golden_kernel_energies_match() {
    let simulator = golden_simulator();
    let energies = simulator.kernels().eigenvalues();
    let golden = read_table(&golden_dir().join("kernel_energies.bin"));
    assert_eq!(energies.len(), golden.len(), "kernel count changed");
    for (i, (&now, &then)) in energies.iter().zip(&golden).enumerate() {
        let scale = then.abs().max(1e-12);
        assert!(
            ((now - then) / scale).abs() < ENERGY_RELATIVE_TOLERANCE,
            "kernel {i} energy drifted: {now} vs golden {then}"
        );
    }
}

#[test]
fn golden_cd_table_matches() {
    let simulator = golden_simulator();
    let mask = golden_mask(&simulator);
    let nominal = simulator.aerial_image(&mask);
    let defocused = simulator
        .at_condition(&ProcessCondition::new(DEFOCUS_NM, 1.0))
        .aerial_image(&mask);
    let table = cd_table(&nominal, &defocused);
    let golden = read_table(&golden_dir().join("cd_table.bin"));
    assert_eq!(table.len(), golden.len(), "CD table layout changed");
    for (i, (&now, &then)) in table.iter().zip(&golden).enumerate() {
        if then < 0.0 {
            assert!(now < 0.0, "entry {i}: a cutline started printing");
        } else {
            assert!(
                (now - then).abs() < CD_TOLERANCE_PX,
                "entry {i}: CD drifted {now} vs golden {then}"
            );
        }
    }
}
