//! Cross-crate physics consistency checks: the learned pipeline and the
//! rigorous golden engine must agree wherever the mathematics says they must.

use litho_integration::scale;
use litho_masks::{Dataset, DatasetKind};
use litho_math::ComplexMatrix;
use litho_metrics::psnr;
use litho_optics::abbe::abbe_aerial_image;
use litho_optics::config::kernel_side;
use litho_optics::source::SourceGrid;
use litho_optics::{HopkinsSimulator, OpticalConfig, SocsKernels, TccMatrix};
use nitho::{NithoConfig, NithoModel, PositionalEncoding};

fn optics() -> OpticalConfig {
    scale::test_optics(64, 8)
}

#[test]
fn hopkins_and_abbe_agree_through_the_full_dataset_pipeline() {
    // Generate masks with the regular dataset machinery, then check the two
    // independent imaging formulations agree on every tile.
    let config = OpticalConfig {
        kernel_count: 25,
        ..optics()
    };
    let dims = config.kernel_dims_with_side(5);
    let grid = SourceGrid::sample(&config.source, 11);
    let tcc = TccMatrix::assemble(&config, dims, &grid);
    let socs = SocsKernels::from_tcc(&tcc);

    let simulator = HopkinsSimulator::new(&config);
    let dataset = Dataset::generate(DatasetKind::B2Via, 3, &simulator, 9);
    for sample in dataset.samples() {
        let hopkins = socs.aerial_image(&sample.mask);
        let abbe = abbe_aerial_image(
            &sample.mask,
            &config,
            dims,
            &grid,
            config.tile_px,
            config.tile_px,
        );
        let quality = psnr(&abbe, &hopkins);
        assert!(quality > 60.0, "Hopkins vs Abbe PSNR only {quality:.1} dB");
    }
}

#[test]
fn golden_simulator_beats_any_learned_model_on_its_own_labels() {
    // Sanity for the whole benchmark setup: re-simulating a labelled tile
    // reproduces the label exactly, so the golden engine defines the accuracy
    // ceiling every learned model is compared against.
    let optics = optics();
    let simulator = HopkinsSimulator::new(&optics);
    let dataset = Dataset::generate(DatasetKind::B1, 3, &simulator, 13);
    for sample in dataset.samples() {
        let (aerial, resist) = simulator.simulate(&sample.mask);
        let max_diff = aerial.zip_map(&sample.aerial, |a, b| (a - b).abs()).max();
        assert!(max_diff < 1e-12);
        assert_eq!(resist, sample.resist);
    }
}

#[test]
fn learned_kernels_span_the_same_band_as_physical_kernels() {
    // Nitho's kernels live on the same resolution-limit frequency grid as the
    // physical SOCS kernels; after training, the energy outside the pupil
    // support must stay negligible compared to the in-band energy.
    let optics = optics();
    let simulator = HopkinsSimulator::new(&optics);
    let train = Dataset::generate(DatasetKind::B2Metal, scale::train_tiles(10), &simulator, 17);
    let mut model = NithoModel::new(
        NithoConfig {
            kernel_side: Some(11),
            epochs: scale::epochs(30),
            ..NithoConfig::fast()
        },
        &optics,
    );
    model.train(&train);
    let kernels = model.kernels().expect("trained");

    // The physical pass band on an 11x11 grid for this configuration: bins
    // within (1 + sigma_outer) * NA/lambda of DC.
    let bin_scale = 193.0 / (optics.tile_nm() * 1.35);
    let band = |i: usize, j: usize| {
        let fy = (i as f64 - 5.0) * bin_scale;
        let fx = (j as f64 - 5.0) * bin_scale;
        (fy * fy + fx * fx).sqrt() <= 1.9
    };
    let mut in_band = 0.0;
    let mut out_band = 0.0;
    for kernel in kernels {
        for i in 0..11 {
            for j in 0..11 {
                let e = kernel[(i, j)].abs_sq();
                if band(i, j) {
                    in_band += e;
                } else {
                    out_band += e;
                }
            }
        }
    }
    assert!(
        out_band < 0.05 * in_band,
        "learned kernels leak {:.2}% of their energy outside the pupil band",
        100.0 * out_band / in_band
    );
}

#[test]
fn kernel_dimension_formula_saturates_accuracy() {
    // Fig. 6(b) in miniature: growing the kernel beyond the Eq. (10) optimum
    // gives no further benefit, while a severely truncated kernel hurts.
    let optics = optics();
    let simulator = HopkinsSimulator::new(&optics);
    let train = Dataset::generate(DatasetKind::B1, scale::train_tiles(10), &simulator, 23);
    let test = Dataset::generate(DatasetKind::B1, 4, &simulator, 24);
    let optimum = kernel_side(
        optics.tile_nm(),
        optics.wavelength_nm,
        optics.numerical_aperture,
    );
    assert_eq!(optimum, 15);

    let psnr_for = |side: usize| {
        let mut model = NithoModel::new(
            NithoConfig {
                kernel_side: Some(side),
                epochs: scale::epochs(30),
                ..NithoConfig::fast()
            },
            &optics,
        );
        model.train(&train);
        model
            .evaluate(&test, optics.resist_threshold)
            .aerial
            .psnr_db
    };

    let tiny = psnr_for(3);
    let at_optimum = psnr_for(15);
    assert!(
        at_optimum > tiny + 5.0,
        "kernel at the resolution limit ({at_optimum:.2} dB) must beat a 3x3 kernel ({tiny:.2} dB)"
    );
}

#[test]
fn rff_encoding_matches_paper_structure() {
    // Structural check of Eq. (15): every feature of the complex RFF encoding
    // is (1 + j)·cos or (1 + j)·sin of a fixed random frequency — i.e. real
    // and imaginary parts are identical and bounded by one.
    let encoding = PositionalEncoding::GaussianRff {
        features: 24,
        sigma: 2.0,
        seed: 5,
    };
    let grid: ComplexMatrix = encoding.encode_grid(7, 7);
    assert_eq!(grid.shape(), (49, 48));
    for z in grid.iter() {
        assert!((z.re - z.im).abs() < 1e-12);
        assert!(z.re.abs() <= 1.0 + 1e-12);
    }
}
