//! Workspace-level determinism contract of the parallel execution engine:
//! the thread count (`NITHO_THREADS` / `litho_parallel::with_threads`) may
//! change wall time, never bits.
//!
//! The full pipeline is pinned at two levels: the golden Hopkins simulator
//! (TCC assembly → SOCS → aerial image) and one complete Nitho training
//! epoch (per-sample parallel forward/backward with fixed-order gradient
//! reduction → Adam update → cached kernels).

use litho_masks::{Dataset, DatasetKind};
use litho_math::RealMatrix;
use litho_optics::{HopkinsSimulator, OpticalConfig};
use litho_parallel::with_threads;
use nitho::{NithoConfig, NithoModel};

fn optics() -> OpticalConfig {
    OpticalConfig::builder()
        .tile_px(64)
        .pixel_nm(8.0)
        .kernel_count(6)
        .build()
}

fn assert_bits_equal(a: &RealMatrix, b: &RealMatrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (idx, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bit mismatch at flat index {idx} ({x:e} vs {y:e})"
        );
    }
}

#[test]
fn golden_simulator_is_bit_identical_across_thread_counts() {
    let mask = RealMatrix::from_fn(64, 64, |i, j| {
        let line = (i / 8) % 2 == 0 && (8..56).contains(&j);
        let via = (24..32).contains(&i) && (40..48).contains(&j);
        if line || via {
            1.0
        } else {
            0.0
        }
    });
    // Build + simulate entirely under each thread count: TCC assembly, the
    // eigendecomposition input, and the SOCS aerial sum all sit on the
    // parallel paths.
    let serial = with_threads(1, || {
        let simulator = HopkinsSimulator::new(&optics());
        simulator.simulate(&mask)
    });
    for threads in [2usize, 4] {
        let parallel = with_threads(threads, || {
            let simulator = HopkinsSimulator::new(&optics());
            simulator.simulate(&mask)
        });
        assert_bits_equal(
            &serial.0,
            &parallel.0,
            &format!("aerial image, {threads} threads"),
        );
        assert_bits_equal(
            &serial.1,
            &parallel.1,
            &format!("resist image, {threads} threads"),
        );
    }
}

#[test]
fn one_training_epoch_is_bit_identical_across_thread_counts() {
    let optics = optics();
    let simulator = HopkinsSimulator::new(&optics);
    let dataset = Dataset::generate(DatasetKind::B1, 4, &simulator, 3);
    let config = NithoConfig {
        kernel_side: Some(9),
        epochs: 1,
        batch_size: 4,
        ..NithoConfig::fast()
    };

    let train_under = |threads: usize| {
        with_threads(threads, || {
            let mut model = NithoModel::new(config.clone(), &optics);
            let report = model.train(&dataset);
            let kernels = model.kernels().expect("training caches kernels").to_vec();
            (report, kernels)
        })
    };

    let (serial_report, serial_kernels) = train_under(1);
    for threads in [2usize, 4] {
        let (report, kernels) = train_under(threads);
        assert_eq!(
            serial_report.epoch_losses[0].to_bits(),
            report.epoch_losses[0].to_bits(),
            "epoch loss differs at {threads} threads"
        );
        assert_eq!(serial_kernels.len(), kernels.len());
        for (k, (a, b)) in serial_kernels.iter().zip(kernels.iter()).enumerate() {
            for (idx, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                assert_eq!(
                    x.re.to_bits(),
                    y.re.to_bits(),
                    "kernel {k} re at {idx}, {threads} threads"
                );
                assert_eq!(
                    x.im.to_bits(),
                    y.im.to_bits(),
                    "kernel {k} im at {idx}, {threads} threads"
                );
            }
        }
    }
}
