//! Scalar-vs-AVX2 equivalence pins for the explicit SIMD kernels.
//!
//! The scalar backend is the bit-exact pinned reference; the AVX2 backend is
//! allowed to differ only through FMA contraction, bounded by the module-wide
//! ≤ 1e-12 contract. Every fused SoA kernel, the planned Stockham/Bluestein
//! SoA transforms, and the fused SOCS accumulate are A/B-tested through their
//! explicit `_with(backend, …)` entry points, so no test here touches the
//! process-global `NITHO_SIMD` resolution. AVX2 arms are guarded on
//! [`avx2_available`] and the suite passes unchanged on non-x86 hosts.
//!
//! Satellite pin: tiny and prime FFT lengths (1, 2, 3, 5, 7) are routed
//! through the SoA Bluestein path explicitly — these lengths exercise the
//! chirp padding edge cases (`m = next_pow2(2n-1)` of 1, 4, 8, 16) that the
//! power-of-two production tiles never reach.

use litho_fft::bluestein_plan_for;
use litho_math::simd::{avx2_available, SimdBackend};
use litho_math::{soa, ComplexMatrix, DeterministicRng, RealMatrix};
use proptest::prelude::*;

fn random_plane(n: usize, rng: &mut DeterministicRng) -> (Vec<f64>, Vec<f64>) {
    let mut re = Vec::with_capacity(n);
    let mut im = Vec::with_capacity(n);
    for _ in 0..n {
        let z = rng.normal_complex(0.0, 1.0);
        re.push(z.re);
        im.push(z.im);
    }
    (re, im)
}

fn random_matrix(rows: usize, cols: usize, rng: &mut DeterministicRng) -> ComplexMatrix {
    ComplexMatrix::from_fn(rows, cols, |_, _| rng.normal_complex(0.0, 1.0))
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Reference DFT, O(n²): `X[k] = Σⱼ x[j]·e^{-2πi·jk/n}` — trivially correct
/// for the tiny lengths pinned below.
fn naive_forward_dft(re: &[f64], im: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = re.len();
    let mut out_re = vec![0.0; n];
    let mut out_im = vec![0.0; n];
    for k in 0..n {
        for j in 0..n {
            let angle = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
            let (s, c) = angle.sin_cos();
            out_re[k] += re[j] * c - im[j] * s;
            out_im[k] += re[j] * s + im[j] * c;
        }
    }
    (out_re, out_im)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Elementwise complex product, both backends, all remainder lanes.
    #[test]
    fn prop_mul_into_backends_agree(len in 0usize..97, seed in 0u64..10_000) {
        if !avx2_available() {
            return Ok(());
        }
        let mut rng = DeterministicRng::new(seed);
        let (ar, ai) = random_plane(len, &mut rng);
        let (br, bi) = random_plane(len, &mut rng);
        let mut scalar_re = vec![0.0; len];
        let mut scalar_im = vec![0.0; len];
        let mut simd_re = vec![0.0; len];
        let mut simd_im = vec![0.0; len];
        soa::mul_into_with(SimdBackend::Scalar, &ar, &ai, &br, &bi, &mut scalar_re, &mut scalar_im);
        soa::mul_into_with(SimdBackend::Avx2, &ar, &ai, &br, &bi, &mut simd_re, &mut simd_im);
        prop_assert!(max_abs_diff(&scalar_re, &simd_re) <= 1e-12);
        prop_assert!(max_abs_diff(&scalar_im, &simd_im) <= 1e-12);
    }

    /// Complex axpy (the CMLP matmul inner loop), accumulating into a
    /// non-zero destination.
    #[test]
    fn prop_axpy_backends_agree(len in 0usize..97, seed in 0u64..10_000) {
        if !avx2_available() {
            return Ok(());
        }
        let mut rng = DeterministicRng::new(seed ^ 0xa11);
        let (xr, xi) = random_plane(len, &mut rng);
        let (mut scalar_re, mut scalar_im) = random_plane(len, &mut rng);
        let mut simd_re = scalar_re.clone();
        let mut simd_im = scalar_im.clone();
        let alpha = rng.normal_complex(0.0, 1.0);
        soa::axpy_in_place_with(
            SimdBackend::Scalar, alpha.re, alpha.im, &xr, &xi, &mut scalar_re, &mut scalar_im,
        );
        soa::axpy_in_place_with(
            SimdBackend::Avx2, alpha.re, alpha.im, &xr, &xi, &mut simd_re, &mut simd_im,
        );
        prop_assert!(max_abs_diff(&scalar_re, &simd_re) <= 1e-12);
        prop_assert!(max_abs_diff(&scalar_im, &simd_im) <= 1e-12);
    }

    /// Real scale of both planes; pure products, so the backends agree
    /// exactly, but pinned through the shared 1e-12 contract.
    #[test]
    fn prop_scale_backends_agree(len in 0usize..97, seed in 0u64..10_000) {
        if !avx2_available() {
            return Ok(());
        }
        let mut rng = DeterministicRng::new(seed ^ 0x5ca1e);
        let (mut scalar_re, mut scalar_im) = random_plane(len, &mut rng);
        let mut simd_re = scalar_re.clone();
        let mut simd_im = scalar_im.clone();
        let s = rng.normal_complex(0.0, 1.0).re;
        soa::scale_in_place_with(SimdBackend::Scalar, &mut scalar_re, &mut scalar_im, s);
        soa::scale_in_place_with(SimdBackend::Avx2, &mut simd_re, &mut simd_im, s);
        prop_assert!(max_abs_diff(&scalar_re, &simd_re) <= 1e-12);
        prop_assert!(max_abs_diff(&scalar_im, &simd_im) <= 1e-12);
    }

    /// Fused |z|² accumulate into a pre-seeded accumulator.
    #[test]
    fn prop_accumulate_abs_sq_backends_agree(len in 0usize..97, seed in 0u64..10_000) {
        if !avx2_available() {
            return Ok(());
        }
        let mut rng = DeterministicRng::new(seed ^ 0xab5);
        let (re, im) = random_plane(len, &mut rng);
        let (mut scalar_acc, _) = random_plane(len, &mut rng);
        let mut simd_acc = scalar_acc.clone();
        soa::accumulate_abs_sq_with(SimdBackend::Scalar, &re, &im, &mut scalar_acc);
        soa::accumulate_abs_sq_with(SimdBackend::Avx2, &re, &im, &mut simd_acc);
        prop_assert!(max_abs_diff(&scalar_acc, &simd_acc) <= 1e-12);
    }

    /// Stockham radix-2 butterfly with a broadcast unit-circle twiddle.
    #[test]
    fn prop_stockham_butterfly_backends_agree(
        len in 0usize..97,
        angle_steps in 0u32..360,
        seed in 0u64..10_000,
    ) {
        if !avx2_available() {
            return Ok(());
        }
        let mut rng = DeterministicRng::new(seed ^ 0x57c);
        let (ar, ai) = random_plane(len, &mut rng);
        let (br, bi) = random_plane(len, &mut rng);
        let angle = f64::from(angle_steps).to_radians();
        let (wi, wr) = angle.sin_cos();
        let mut s = [vec![0.0; len], vec![0.0; len], vec![0.0; len], vec![0.0; len]];
        let mut v = [vec![0.0; len], vec![0.0; len], vec![0.0; len], vec![0.0; len]];
        {
            let [d0r, d0i, d1r, d1i] = &mut s;
            soa::stockham_butterfly_with(
                SimdBackend::Scalar, &ar, &ai, &br, &bi, d0r, d0i, d1r, d1i, wr, wi,
            );
        }
        {
            let [d0r, d0i, d1r, d1i] = &mut v;
            soa::stockham_butterfly_with(
                SimdBackend::Avx2, &ar, &ai, &br, &bi, d0r, d0i, d1r, d1i, wr, wi,
            );
        }
        for (scalar, simd) in s.iter().zip(&v) {
            prop_assert!(max_abs_diff(scalar, simd) <= 1e-12);
        }
    }

    /// The full fused SOCS accumulate (pad + shift + planned inverse FFTs +
    /// |z|² fold), A/B over the explicit-backend entry point on random
    /// kernel banks, power-of-two and odd output sizes alike.
    #[test]
    fn prop_socs_accumulate_backends_agree(
        k_side in 1usize..9,
        out_extra in 0usize..17,
        count in 1usize..5,
        seed in 0u64..10_000,
    ) {
        if !avx2_available() {
            return Ok(());
        }
        let mut rng = DeterministicRng::new(seed ^ 0x50c5);
        let kernels: Vec<ComplexMatrix> =
            (0..count).map(|_| random_matrix(k_side, k_side, &mut rng)).collect();
        let spectrum = random_matrix(k_side, k_side, &mut rng);
        let out = k_side + out_extra;
        let mut scalar_acc = RealMatrix::from_fn(out, out, |_, _| 0.0);
        let mut simd_acc = RealMatrix::from_fn(out, out, |_, _| 0.0);
        litho_fft::soa::accumulate_socs_intensity_with(
            SimdBackend::Scalar, &kernels, &spectrum, &mut scalar_acc,
        );
        litho_fft::soa::accumulate_socs_intensity_with(
            SimdBackend::Avx2, &kernels, &spectrum, &mut simd_acc,
        );
        let max_err = scalar_acc.zip_map(&simd_acc, |a, b| (a - b).abs()).max();
        prop_assert!(max_err <= 1e-12, "max abs err {max_err}");
    }

    /// f32 kernels: both backends run the same single-precision arithmetic,
    /// so they agree to f32 rounding (FMA contraction only).
    #[test]
    fn prop_f32_kernels_backends_agree(len in 0usize..97, seed in 0u64..10_000) {
        if !avx2_available() {
            return Ok(());
        }
        let mut rng = DeterministicRng::new(seed ^ 0xf32);
        let narrow = |v: &[f64]| v.iter().map(|&x| x as f32).collect::<Vec<f32>>();
        let (ar, ai) = random_plane(len, &mut rng);
        let (br, bi) = random_plane(len, &mut rng);
        let (ar, ai, br, bi) = (narrow(&ar), narrow(&ai), narrow(&br), narrow(&bi));

        let mut scalar_re = vec![0.0f32; len];
        let mut scalar_im = vec![0.0f32; len];
        let mut simd_re = vec![0.0f32; len];
        let mut simd_im = vec![0.0f32; len];
        soa::mul_into_f32_with(
            SimdBackend::Scalar, &ar, &ai, &br, &bi, &mut scalar_re, &mut scalar_im,
        );
        soa::mul_into_f32_with(SimdBackend::Avx2, &ar, &ai, &br, &bi, &mut simd_re, &mut simd_im);
        for (s, v) in scalar_re.iter().chain(&scalar_im).zip(simd_re.iter().chain(&simd_im)) {
            prop_assert!((s - v).abs() <= 2e-6);
        }

        let alpha = rng.normal_complex(0.0, 1.0);
        let mut scalar_yr = br.clone();
        let mut scalar_yi = bi.clone();
        let mut simd_yr = br.clone();
        let mut simd_yi = bi.clone();
        soa::axpy_in_place_f32_with(
            SimdBackend::Scalar, alpha.re as f32, alpha.im as f32,
            &ar, &ai, &mut scalar_yr, &mut scalar_yi,
        );
        soa::axpy_in_place_f32_with(
            SimdBackend::Avx2, alpha.re as f32, alpha.im as f32,
            &ar, &ai, &mut simd_yr, &mut simd_yi,
        );
        for (s, v) in scalar_yr.iter().chain(&scalar_yi).zip(simd_yr.iter().chain(&simd_yi)) {
            prop_assert!((s - v).abs() <= 2e-6);
        }
    }
}

/// Satellite pin: lengths 1, 2, 3, 5 and 7 through the SoA Bluestein path —
/// forward matches a naive O(n²) DFT, forward→inverse round-trips, and the
/// AVX2 backend tracks scalar within 1e-12 on every plane.
#[test]
fn tiny_and_prime_lengths_through_bluestein_soa() {
    for n in [1usize, 2, 3, 5, 7] {
        let plan = bluestein_plan_for(n);
        let mut rng = DeterministicRng::new(0xb1e + n as u64);
        let (sig_re, sig_im) = random_plane(n, &mut rng);
        let (dft_re, dft_im) = naive_forward_dft(&sig_re, &sig_im);

        // Scalar forward is the reference: it must be the DFT.
        let mut scalar_re = sig_re.clone();
        let mut scalar_im = sig_im.clone();
        plan.forward_soa_with(SimdBackend::Scalar, &mut scalar_re, &mut scalar_im);
        assert!(
            max_abs_diff(&scalar_re, &dft_re) <= 1e-9 && max_abs_diff(&scalar_im, &dft_im) <= 1e-9,
            "n={n}: scalar SoA Bluestein disagrees with the naive DFT"
        );

        // Scalar round-trip recovers the signal.
        plan.inverse_soa_with(SimdBackend::Scalar, &mut scalar_re, &mut scalar_im);
        assert!(
            max_abs_diff(&scalar_re, &sig_re) <= 1e-9 && max_abs_diff(&scalar_im, &sig_im) <= 1e-9,
            "n={n}: scalar SoA Bluestein round-trip drifted"
        );

        if avx2_available() {
            let mut simd_re = sig_re.clone();
            let mut simd_im = sig_im.clone();
            plan.forward_soa_with(SimdBackend::Avx2, &mut simd_re, &mut simd_im);
            let mut fwd_re = sig_re.clone();
            let mut fwd_im = sig_im.clone();
            plan.forward_soa_with(SimdBackend::Scalar, &mut fwd_re, &mut fwd_im);
            assert!(
                max_abs_diff(&fwd_re, &simd_re) <= 1e-12
                    && max_abs_diff(&fwd_im, &simd_im) <= 1e-12,
                "n={n}: AVX2 forward broke the 1e-12 contract"
            );
            plan.inverse_soa_with(SimdBackend::Avx2, &mut simd_re, &mut simd_im);
            assert!(
                max_abs_diff(&simd_re, &sig_re) <= 1e-9 && max_abs_diff(&simd_im, &sig_im) <= 1e-9,
                "n={n}: AVX2 SoA Bluestein round-trip drifted"
            );
        }

        // f32 twin of the same route, against the f64 reference.
        let mut f32_re: Vec<f32> = sig_re.iter().map(|&x| x as f32).collect();
        let mut f32_im: Vec<f32> = sig_im.iter().map(|&x| x as f32).collect();
        plan.forward_soa_f32_with(SimdBackend::Scalar, &mut f32_re, &mut f32_im);
        for k in 0..n {
            assert!(
                (f64::from(f32_re[k]) - dft_re[k]).abs() <= 1e-4
                    && (f64::from(f32_im[k]) - dft_im[k]).abs() <= 1e-4,
                "n={n}: f32 SoA Bluestein strayed from the DFT at bin {k}"
            );
        }
        if avx2_available() {
            let mut v_re: Vec<f32> = sig_re.iter().map(|&x| x as f32).collect();
            let mut v_im: Vec<f32> = sig_im.iter().map(|&x| x as f32).collect();
            plan.forward_soa_f32_with(SimdBackend::Avx2, &mut v_re, &mut v_im);
            for k in 0..n {
                assert!(
                    (v_re[k] - f32_re[k]).abs() <= 2e-5 && (v_im[k] - f32_im[k]).abs() <= 2e-5,
                    "n={n}: f32 AVX2 forward diverged from f32 scalar at bin {k}"
                );
            }
        }
    }
}

/// Prime-sided SOCS synthesis (7×7 kernels into prime 19×19 output) walks
/// every Bluestein row/column plan through the fused accumulate on both
/// backends.
#[test]
fn prime_sided_socs_accumulate_backends_agree() {
    if !avx2_available() {
        return;
    }
    let mut rng = DeterministicRng::new(0x719);
    let kernels: Vec<ComplexMatrix> = (0..3).map(|_| random_matrix(7, 7, &mut rng)).collect();
    let spectrum = random_matrix(7, 7, &mut rng);
    let mut scalar_acc = RealMatrix::from_fn(19, 19, |_, _| 0.0);
    let mut simd_acc = RealMatrix::from_fn(19, 19, |_, _| 0.0);
    litho_fft::soa::accumulate_socs_intensity_with(
        SimdBackend::Scalar,
        &kernels,
        &spectrum,
        &mut scalar_acc,
    );
    litho_fft::soa::accumulate_socs_intensity_with(
        SimdBackend::Avx2,
        &kernels,
        &spectrum,
        &mut simd_acc,
    );
    let max_err = scalar_acc.zip_map(&simd_acc, |a, b| (a - b).abs()).max();
    assert!(max_err <= 1e-12, "max abs err {max_err}");
}

/// The scalar backend must be deterministic run to run (reused thread-local
/// scratch may never leak state between calls): two identical accumulates
/// are bit-identical.
#[test]
fn scalar_socs_accumulate_is_bit_stable() {
    let mut rng = DeterministicRng::new(0xdead);
    let kernels: Vec<ComplexMatrix> = (0..4).map(|_| random_matrix(5, 5, &mut rng)).collect();
    let spectrum = random_matrix(5, 5, &mut rng);
    let mut first = RealMatrix::from_fn(24, 24, |_, _| 0.0);
    let mut second = RealMatrix::from_fn(24, 24, |_, _| 0.0);
    litho_fft::soa::accumulate_socs_intensity_with(
        SimdBackend::Scalar,
        &kernels,
        &spectrum,
        &mut first,
    );
    litho_fft::soa::accumulate_socs_intensity_with(
        SimdBackend::Scalar,
        &kernels,
        &spectrum,
        &mut second,
    );
    for (a, b) in first.iter().zip(second.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
