//! Streaming process-window pins — the contract of the O(1)-plane PVB fold:
//!
//! 1. `StreamingPvb` is bit-identical to a naive materialized reference (the
//!    pre-streaming stack-then-reduce algorithm, reimplemented here) for
//!    random aerial stacks, any per-condition threshold, and any fold order
//!    (property-tested).
//! 2. A streamed `/v1/process_window` response equals a materialized
//!    reference built with [`litho_serve::aerial_sweep`] + the naive fold —
//!    summary, band and every per-condition report — and stays byte-identical
//!    across `NITHO_THREADS` 1 / 2 / 4.
//! 3. Allocation residency: a 5×5 dense grid and the 9×9 (81-condition) CI
//!    smoke both hold peak heap growth to a couple of full-chip planes plus
//!    the bit-packed fold accumulator and the O(threads) tile transients —
//!    far below the O(conditions) plane stack the materialized path kept.
//!
//! The whole binary runs under [`litho_testsupport::CountingAllocator`]. The
//! counters are process-global and the test harness runs `#[test]`s
//! concurrently, so every test here serializes on [`ALLOC_LOCK`].

use std::sync::{Mutex, MutexGuard};

use litho_math::{DeterministicRng, RealMatrix};
use litho_metrics::StreamingPvb;
use litho_optics::{HopkinsSimulator, OpticalConfig, ProcessCondition};
use litho_serve::{
    aerial_sweep, Json, ModelRegistry, ProcessWindowRequest, ProcessWindowResponse, Request,
    Service, TileSimulator,
};
use litho_testsupport::{peak_growth_during, CountingAllocator};
use nitho::{ConditionEncoding, NithoConfig, NithoModel};
use proptest::prelude::*;

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Serializes tests: the allocator counters are global to the process.
static ALLOC_LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    ALLOC_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

/// The pre-streaming reference: materialize every resist plane, then reduce.
/// Returns `(per-condition printed counts, union, intersection, band)`.
fn naive_pvb(aerials: &[RealMatrix], thresholds: &[f64]) -> (Vec<f64>, f64, f64, RealMatrix) {
    let (rows, cols) = aerials[0].shape();
    let stack: Vec<RealMatrix> = aerials
        .iter()
        .zip(thresholds)
        .map(|(aerial, &t)| aerial.map(|v| f64::from(v >= t)))
        .collect();
    let printed = stack.iter().map(|resist| resist.sum()).collect();
    let mut union = 0.0;
    let mut intersection = 0.0;
    let band = RealMatrix::from_fn(rows, cols, |i, j| {
        let any = stack.iter().any(|r| r.as_slice()[i * cols + j] == 1.0);
        let all = stack.iter().all(|r| r.as_slice()[i * cols + j] == 1.0);
        union += f64::from(any);
        intersection += f64::from(all);
        f64::from(any && !all)
    });
    (printed, union, intersection, band)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The streaming fold vs the naive materialized reference, on random
    /// stacks with per-condition thresholds, folded in two different orders.
    #[test]
    fn prop_streaming_fold_matches_materialized(
        rows in 1usize..20,
        cols in 1usize..20,
        count in 1usize..8,
        rotate in 0usize..8,
        seed in 0u64..10_000,
    ) {
        let _guard = serialize();
        let mut rng = DeterministicRng::new(seed ^ 0x5f01d);
        let aerials: Vec<RealMatrix> = (0..count)
            .map(|_| RealMatrix::from_fn(rows, cols, |_, _| rng.uniform(0.0, 1.0)))
            .collect();
        let thresholds: Vec<f64> = (0..count).map(|_| rng.uniform(0.2, 0.8)).collect();
        let (printed, union, intersection, band) = naive_pvb(&aerials, &thresholds);

        let mut fold = StreamingPvb::new();
        for ((aerial, &t), &expected) in aerials.iter().zip(&thresholds).zip(&printed) {
            // Each push returns the condition's printed-pixel count exactly.
            prop_assert_eq!(fold.push_thresholded(aerial, t), expected);
        }
        let (summary, streamed_band) = fold.finish(true);
        prop_assert_eq!(summary.union_px, union);
        prop_assert_eq!(summary.intersection_px, intersection);
        prop_assert_eq!(summary.area_px, union - intersection);
        let streamed_band = streamed_band.expect("band requested");
        prop_assert!(
            streamed_band.iter().zip(band.iter()).all(|(a, b)| a == b),
            "streamed band diverged from the materialized reference"
        );

        // The fold is a commutative monoid: any push order gives the same
        // result bit for bit.
        let mut permuted = StreamingPvb::new();
        for k in 0..count {
            let idx = (k + rotate) % count;
            permuted.push_thresholded(&aerials[idx], thresholds[idx]);
        }
        let (rotated, rotated_band) = permuted.finish(true);
        prop_assert_eq!(rotated.union_px, summary.union_px);
        prop_assert_eq!(rotated.intersection_px, summary.intersection_px);
        let rotated_band = rotated_band.expect("band requested");
        prop_assert!(rotated_band.iter().zip(streamed_band.iter()).all(|(a, b)| a == b));
    }
}

fn pw_request(body: &str) -> Request {
    Request {
        method: "POST".to_owned(),
        path: "/v1/process_window".to_owned(),
        headers: Vec::new(),
        body: body.as_bytes().to_vec(),
    }
}

/// Streamed handler output vs an independently materialized reference
/// (aerial_sweep → threshold → naive stack reduce), plus thread-count
/// byte-identity of the streamed path.
#[test]
fn streamed_handler_matches_materialized_reference() {
    let _guard = serialize();
    let optics = OpticalConfig::builder()
        .tile_px(64)
        .pixel_nm(8.0)
        .kernel_count(6)
        .build();
    let mut registry = ModelRegistry::new();
    registry.register_hopkins("hopkins", HopkinsSimulator::new(&optics));
    let service = Service::new(registry);

    let focus = [-60.0, 0.0, 60.0];
    let dose = [0.9, 1.0, 1.1];
    let halo = 16usize;
    let body = r#"{
        "model": "hopkins",
        "mask": {"rows": 64, "cols": 64, "rects": [[8, 24, 56, 40], [24, 8, 40, 56]]},
        "focus_nm": [-60, 0, 60],
        "dose": [0.9, 1, 1.1],
        "halo_px": 16,
        "include_pvb_band": true
    }"#;
    let request = pw_request(body);

    // The streamed fold must not perturb thread determinism: whole response
    // bodies compare byte for byte across NITHO_THREADS 1 / 2 / 4.
    let serial = litho_parallel::with_threads(1, || service.handle(&request));
    assert_eq!(
        serial.status,
        200,
        "{}",
        String::from_utf8_lossy(&serial.body)
    );
    for threads in [2usize, 4] {
        let parallel = litho_parallel::with_threads(threads, || service.handle(&request));
        assert_eq!(
            serial.body, parallel.body,
            "streamed response must be bit-identical at {threads} threads"
        );
    }
    let doc = Json::parse(std::str::from_utf8(&serial.body).expect("UTF-8")).expect("JSON");
    let response = ProcessWindowResponse::from_json(&doc).expect("typed response");

    // Materialized reference: one stitched plane per focus engine, one
    // binarized plane per condition, then the naive reduce. This is exactly
    // the data path the streaming refactor deleted from the handler.
    let hopkins = HopkinsSimulator::new(&optics);
    let base: &dyn TileSimulator = &hopkins;
    let engines: Vec<Box<dyn TileSimulator>> = focus
        .iter()
        .map(|&defocus_nm| {
            base.for_condition(&ProcessCondition {
                defocus_nm,
                dose: 1.0,
            })
            .expect("hopkins serves any focus")
        })
        .collect();
    let parsed =
        ProcessWindowRequest::from_json(&Json::parse(body).expect("JSON")).expect("request parses");
    let mask = parsed.mask.rasterize();
    let per_focus = aerial_sweep(&engines, &mask, halo);

    let mut aerials = Vec::new();
    let mut thresholds = Vec::new();
    for (engine, aerial) in engines.iter().zip(&per_focus) {
        for &d in &dose {
            aerials.push(aerial.clone());
            thresholds.push(engine.resist_threshold() / d);
        }
    }
    let (printed, union, intersection, band) = naive_pvb(&aerials, &thresholds);

    assert_eq!(response.pvb.union_px, union);
    assert_eq!(response.pvb.intersection_px, intersection);
    assert_eq!(response.pvb.area_px, union - intersection);
    let response_band = response.pvb_band.as_deref().expect("band requested");
    assert_eq!(response_band.len(), 64 * 64);
    assert!(
        response_band.iter().zip(band.iter()).all(|(a, b)| a == b),
        "streamed band diverged from the materialized reference"
    );
    assert_eq!(response.conditions.len(), printed.len());
    for (report, &expected) in response.conditions.iter().zip(&printed) {
        assert_eq!(report.printed_px, expected, "at {report:?}");
    }
}

/// Conditioned-nitho service used by the residency pins: kernel inference is
/// allocation-light, so the measured peak is dominated by the reduction data
/// path under test rather than by engine specialization.
fn nitho_service(optics: &OpticalConfig) -> Service {
    let mut registry = ModelRegistry::new();
    let mut model = NithoModel::new(
        NithoConfig {
            kernel_side: Some(9),
            condition: Some(ConditionEncoding::default()),
            ..NithoConfig::fast()
        },
        optics,
    );
    model.refresh_kernels();
    registry.register_nitho("nitho", model);
    Service::new(registry)
}

/// Peak-heap budget of one warm streamed request, in bytes.
///
/// Streaming holds two full-chip planes (nominal + recycled scratch) plus
/// the rasterized mask, the bit-packed fold accumulator (2 bits/pixel), the
/// in-flight tile windows of one stitch chunk, and bounded small stuff
/// (request/response JSON, reports, cropped spectra) — crucially *no* term
/// that scales with the condition count. The materialized path it replaced
/// kept `conditions × plane` resident on top of all of the above.
fn streamed_budget(rows: usize, cols: usize, tile_px: usize, tiles: usize) -> u64 {
    let plane = (rows * cols * 8) as u64;
    let tile_window = (tile_px * tile_px * 8) as u64;
    let accumulator = 2 * ((rows * cols).div_ceil(64) * 8) as u64;
    let chunk = tiles.min(4 * litho_parallel::max_threads().max(1)) as u64;
    3 * plane + chunk * tile_window + accumulator + 512 * 1024
}

/// A dense 5×5 grid (25 conditions) through the service stays within the
/// streamed budget — the materialized resist stack alone would need
/// 25 chip planes, which does not fit it.
#[test]
fn dense_grid_sweep_holds_the_two_plane_budget() {
    let _guard = serialize();
    let optics = OpticalConfig::builder()
        .tile_px(64)
        .pixel_nm(8.0)
        .kernel_count(6)
        .build();
    let service = nitho_service(&optics);
    let request = pw_request(
        r#"{
            "model": "nitho",
            "mask": {"rows": 96, "cols": 96, "rects": [[16, 16, 80, 40], [40, 56, 56, 88]]},
            "focus_nm": [-80, -40, 0, 40, 80],
            "dose": [0.9, 0.95, 1, 1.05, 1.1],
            "halo_px": 16
        }"#,
    );

    let (response, peak) = litho_parallel::with_threads(2, || {
        // Warm-up builds FFT plans, twiddles and the thread-local scratch
        // arenas; the measured request then exercises steady-state serving.
        let warm = service.handle(&request);
        assert_eq!(warm.status, 200, "{}", String::from_utf8_lossy(&warm.body));
        peak_growth_during(|| service.handle(&request))
    });
    assert_eq!(response.status, 200);

    let budget = streamed_budget(96, 96, 64, 9);
    let materialized_stack = 25 * (96 * 96 * 8) as u64;
    assert!(
        budget < materialized_stack,
        "budget {budget} must be unreachable by the materialized path ({materialized_stack})"
    );
    assert!(
        peak <= budget,
        "25-condition sweep peaked at {peak} bytes, budget {budget}"
    );
}

/// The acceptance sweep: 9×9 = 81 conditions on a small chip, under a hard
/// allocator byte-cap. Runs in CI (`pw-memory-smoke`) as the memory-cliff
/// regression guard — the pre-streaming handler held 81 resist planes and
/// cannot pass this cap.
#[test]
fn nine_by_nine_sweep_respects_the_byte_cap() {
    let _guard = serialize();
    let optics = OpticalConfig::builder()
        .tile_px(32)
        .pixel_nm(16.0)
        .kernel_count(4)
        .build();
    let service = nitho_service(&optics);
    let focus: Vec<String> = (-4..=4).map(|k| format!("{}", k * 20)).collect();
    let dose: Vec<String> = (-4..=4)
        .map(|k| format!("{}", 1.0 + f64::from(k) * 0.02))
        .collect();
    let body = format!(
        r#"{{
            "model": "nitho",
            "mask": {{"rows": 64, "cols": 64, "rects": [[8, 8, 56, 24], [8, 40, 56, 56], [28, 8, 36, 56]]}},
            "focus_nm": [{}],
            "dose": [{}],
            "halo_px": 8
        }}"#,
        focus.join(","),
        dose.join(",")
    );
    let request = pw_request(&body);

    let (response, peak) = litho_parallel::with_threads(2, || {
        let warm = service.handle(&request);
        assert_eq!(warm.status, 200, "{}", String::from_utf8_lossy(&warm.body));
        peak_growth_during(|| service.handle(&request))
    });
    assert_eq!(response.status, 200);
    let doc = Json::parse(std::str::from_utf8(&response.body).expect("UTF-8")).expect("JSON");
    let parsed = ProcessWindowResponse::from_json(&doc).expect("typed response");
    assert_eq!(parsed.grid, (9, 9));
    assert_eq!(parsed.conditions.len(), 81);

    let budget = streamed_budget(64, 64, 32, 16);
    let materialized_stack = 81 * (64 * 64 * 8) as u64;
    assert!(
        budget < materialized_stack,
        "budget {budget} must be unreachable by the materialized path ({materialized_stack})"
    );
    assert!(
        peak <= budget,
        "81-condition sweep peaked at {peak} bytes, budget {budget}"
    );
}
