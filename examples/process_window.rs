//! Process-window walkthrough: train one defocus/dose-conditioned Nitho
//! model, sweep a focus × dose grid with it, and compare against the
//! rigorous per-condition Hopkins reference — printing a focus-exposure
//! matrix of CD / EPE / printed-area metrology plus the PVB summary.
//!
//! The sweep drives the streaming data path end to end: the model yields
//! each condition's aerial into one recycled scratch plane
//! (`NithoModel::for_each_condition`, mask spectrum hoisted once) and the
//! PVB is folded as the grid is produced (`StreamingPvb`), so no resist
//! stack is ever materialized — the same O(1)-plane reduction
//! `/v1/process_window` serves (DESIGN.md §9).
//!
//! ```sh
//! cargo run --release -p litho_integration --example process_window
//! ```
//!
//! Scale knobs (see `litho_integration::scale`): `NITHO_TILE_PX`,
//! `NITHO_TRAIN_TILES`, `NITHO_EPOCHS`.

use litho_integration::scale;
use litho_masks::{DatasetKind, ProcessDataset};
use litho_math::RealMatrix;
use litho_metrics::metrology::{cd_px, epe_with_thresholds, Cutline, StreamingPvb};
use litho_optics::{HopkinsSimulator, ProcessCondition, ProcessWindow};
use nitho::{ConditionEncoding, NithoConfig, NithoModel};

fn main() {
    let optics = scale::test_optics(64, 6);
    let simulator = HopkinsSimulator::new(&optics);
    let window = ProcessWindow::symmetric(80.0, 3, 0.05, 3);
    let conditions = window.conditions();

    println!(
        "training a conditioned model on a {}x{} focus x dose grid \
         ({} px tiles, {} kernels)…",
        window.shape().0,
        window.shape().1,
        optics.tile_px,
        optics.kernel_count
    );
    let pd = ProcessDataset::generate(
        DatasetKind::B1,
        scale::train_tiles(8),
        &simulator,
        &conditions,
        7,
    );
    let (train, test) = pd.split(0.75);
    let config = NithoConfig {
        kernel_side: Some(9),
        epochs: scale::epochs(25),
        condition: Some(ConditionEncoding {
            focus_span_nm: 80.0,
            dose_span: 0.05,
            ..ConditionEncoding::default()
        }),
        ..NithoConfig::fast()
    };
    let mut model = NithoModel::new(config, &optics);
    let report = model.train_process_window(train.groups());
    println!(
        "trained: loss {:.3e} → {:.3e} over {} epochs\n",
        report.initial_loss(),
        report.final_loss(),
        report.len()
    );

    // Sweep a held-out mask (never seen in training) through the window
    // with both engines, folding the PVB as the grid streams by.
    let mask = test.groups()[0].1.samples()[0].mask.clone();
    let n = mask.rows();
    let cutlines = Cutline::center(n, n);
    let nominal_threshold = optics.resist_threshold;
    let nominal_reference = model
        .at_condition(&ProcessCondition::nominal())
        .expect("conditioned model")
        .predict_aerial(&mask);

    println!("condition            CD_v[px]  EPE_mean[px]  printed[px]  PSNR_vs_rigorous[dB]");
    let mut fold = StreamingPvb::new();
    let mut scratch = RealMatrix::zeros(n, n);
    model.for_each_condition(
        &mask,
        &conditions,
        &mut scratch,
        |condition, threshold, aerial| {
            let printed = fold.push_thresholded(aerial, threshold);

            let rigorous = simulator.at_condition(condition).aerial_image(&mask);
            let psnr = litho_metrics::psnr(&rigorous, aerial);
            let stats = epe_with_thresholds(
                &nominal_reference,
                nominal_threshold,
                aerial,
                threshold,
                &cutlines,
            );
            let cd = cd_px(aerial, cutlines[1], threshold)
                .map_or("    --".to_owned(), |v| format!("{v:6.2}"));
            println!(
                "Δz={:+6.1}nm d={:.2}  {cd}    {:8.3}      {:7.0}        {:6.2}",
                condition.defocus_nm, condition.dose, stats.mean_abs_px, printed, psnr
            );
        },
    );

    let (pvb, _) = fold.finish(false);
    println!(
        "\nprocess-variation band: {} px ({:.2}% of the tile), union {} / \
         intersection {} px",
        pvb.area_px,
        100.0 * pvb.area_fraction,
        pvb.union_px,
        pvb.intersection_px
    );
}
