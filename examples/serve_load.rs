//! `serve_load` — closed-loop load client for a running `nitho-serve`.
//!
//! Fires a mixed request stream (`/healthz`, `/v1/models`, `/v1/simulate`)
//! at an already-listening server and reports throughput and latency
//! percentiles. Exits non-zero on any *unexpected* failure (transport
//! error or non-2xx/non-503 status) so CI can use it as a smoke gate;
//! 503 load-sheds are counted but tolerated — that is the server working
//! as designed.
//!
//! ```text
//! cargo run --release --example serve_load -- \
//!     --addr 127.0.0.1:8425 [--requests 64] [--concurrency 8]
//! ```

use std::net::SocketAddr;
use std::process::ExitCode;

use litho_serve::{drive, RequestSpec};

struct Options {
    addr: SocketAddr,
    requests: usize,
    concurrency: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut addr: Option<SocketAddr> = None;
    let mut requests = 64usize;
    let mut concurrency = 8usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => {
                addr = Some(
                    value("--addr")?
                        .parse()
                        .map_err(|_| "--addr must be HOST:PORT".to_owned())?,
                )
            }
            "--requests" => {
                requests = value("--requests")?
                    .parse()
                    .map_err(|_| "--requests must be a positive integer".to_owned())?
            }
            "--concurrency" => {
                concurrency = value("--concurrency")?
                    .parse()
                    .map_err(|_| "--concurrency must be a positive integer".to_owned())?
            }
            "--help" | "-h" => {
                return Err(
                    "usage: serve_load --addr HOST:PORT [--requests N] [--concurrency C]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let addr = addr.ok_or_else(|| "--addr HOST:PORT is required".to_owned())?;
    if requests == 0 || concurrency == 0 {
        return Err("--requests and --concurrency must be at least 1".to_owned());
    }
    Ok(Options {
        addr,
        requests,
        concurrency,
    })
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    // A small mask keeps per-request work light so the run exercises the
    // admission queue and batching, not raw simulation throughput.
    let simulate = r#"{
        "model": "nitho",
        "mask": {
            "rows": 64, "cols": 64,
            "rects": [[8, 8, 56, 24], [8, 40, 56, 56]]
        },
        "outputs": ["resist"]
    }"#;
    let specs = [
        RequestSpec::post("/v1/simulate", simulate),
        RequestSpec::get("/healthz"),
        RequestSpec::get("/v1/models"),
    ];

    println!(
        "serve_load: {} requests at concurrency {} against {}",
        options.requests, options.concurrency, options.addr
    );
    let report = drive(options.addr, options.concurrency, options.requests, &specs);
    println!(
        "serve_load: {} ok, {} shed (503), {} failed in {:.2}s — {:.1} req/s, \
         p50 {} ms, p95 {} ms, p99 {} ms",
        report.ok,
        report.shed,
        report.failed,
        report.elapsed.as_secs_f64(),
        report.throughput_rps(),
        report.p50_ms(),
        report.p95_ms(),
        report.p99_ms(),
    );
    if report.failed > 0 {
        eprintln!("serve_load: {} unexpected failures", report.failed);
        return ExitCode::FAILURE;
    }
    if report.ok == 0 {
        eprintln!("serve_load: every request was shed; nothing was served");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
