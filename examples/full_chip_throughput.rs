//! Throughput comparison between the rigorous Hopkins simulator and Nitho's
//! stored-kernel fast-lithography path — a miniature of the paper's Fig. 5.
//!
//! Nitho needs no network inference after training: the predicted kernels are
//! applied with the same SOCS arithmetic as a production simulator, but with
//! far fewer kernels than the rigorous decomposition, which is where the
//! speed-up comes from.
//!
//! ```text
//! cargo run --release --example full_chip_throughput
//! ```

use std::time::Instant;

use litho_masks::{Dataset, DatasetKind};
use litho_optics::{HopkinsSimulator, OpticalConfig};
use nitho::{NithoConfig, NithoModel};

fn main() {
    let optics = OpticalConfig::builder()
        .tile_px(128)
        .pixel_nm(4.0)
        .kernel_count(8)
        .build();

    // A "full-chip" workload: a stream of metal and via tiles.
    let rigorous_config = OpticalConfig {
        // Rigorous reference retains many more kernels, as production TCC
        // decompositions do.
        kernel_count: 40,
        ..optics.clone()
    };
    let rigorous = HopkinsSimulator::new(&rigorous_config);
    let labeller = HopkinsSimulator::new(&optics);

    let train = Dataset::generate(DatasetKind::B2Metal, 16, &labeller, 21);
    let workload = Dataset::generate(DatasetKind::B2Via, 24, &labeller, 22)
        .merged(&Dataset::generate(DatasetKind::B2Metal, 24, &labeller, 23));

    let mut model = NithoModel::new(
        NithoConfig {
            epochs: 30,
            ..NithoConfig::fast()
        },
        &optics,
    );
    model.train(&train);

    let tile_area = optics.tile_area_um2();

    let start = Instant::now();
    for sample in workload.samples() {
        let _ = rigorous.simulate(&sample.mask);
    }
    let rigorous_seconds = start.elapsed().as_secs_f64();

    let start = Instant::now();
    for sample in workload.samples() {
        let _ = model.predict_resist(&sample.mask, optics.resist_threshold);
    }
    let nitho_seconds = start.elapsed().as_secs_f64();

    let area = tile_area * workload.len() as f64;
    println!(
        "workload               : {} tiles ({:.3} um^2)",
        workload.len(),
        area
    );
    println!(
        "rigorous simulator     : {:>8.3} s  ({:>9.4} um^2/s)",
        rigorous_seconds,
        area / rigorous_seconds
    );
    println!(
        "nitho stored kernels   : {:>8.3} s  ({:>9.4} um^2/s)",
        nitho_seconds,
        area / nitho_seconds
    );
    println!(
        "speed-up               : {:>8.1}x",
        rigorous_seconds / nitho_seconds
    );
}
