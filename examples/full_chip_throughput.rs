//! Full-chip throughput on the `litho_serve` tiling engine — the paper's
//! Fig. 5 argument at deployment scale: one large stitched layout instead of
//! a stream of isolated training tiles.
//!
//! A 4×4-tile mosaic chip is decomposed into guard-band tiles, fanned out
//! over `litho_parallel` workers, and stitched back; the same pipeline runs
//! the rigorous Hopkins engine (production-sized kernel bank) and Nitho's
//! stored regressed kernels, which is where the speed-up comes from.
//!
//! ```text
//! cargo run --release --example full_chip_throughput
//! ```

use std::time::Instant;

use litho_masks::{chip_mosaic, Dataset, DatasetKind, GeneratorConfig};
use litho_optics::{HopkinsSimulator, OpticalConfig};
use litho_serve::{ChipPipeline, TileSimulator};
use nitho::{NithoConfig, NithoModel};

fn main() {
    let optics = OpticalConfig::builder()
        .tile_px(128)
        .pixel_nm(4.0)
        .kernel_count(8)
        .build();

    // Rigorous reference retains many more kernels, as production TCC
    // decompositions do.
    let rigorous_config = OpticalConfig {
        kernel_count: 40,
        ..optics.clone()
    };
    let rigorous = HopkinsSimulator::new(&rigorous_config);
    let labeller = HopkinsSimulator::new(&optics);

    let train = Dataset::generate(DatasetKind::B2Metal, 16, &labeller, 21);
    let mut model = NithoModel::new(
        NithoConfig {
            epochs: 30,
            ..NithoConfig::fast()
        },
        &optics,
    );
    model.train(&train);

    // One contiguous 512×512-px chip (4×4 mosaic of metal/via geometry).
    let chip = chip_mosaic(
        DatasetKind::B2Metal,
        4,
        4,
        &GeneratorConfig::new(128, 4.0),
        22,
    );
    let mask = chip.rasterize();
    let (rows, cols) = mask.shape();
    let area_um2 =
        (rows as f64 * optics.pixel_nm / 1000.0) * (cols as f64 * optics.pixel_nm / 1000.0);

    let run = |name: &str, simulator: &dyn TileSimulator| -> f64 {
        let pipeline = ChipPipeline::new(simulator);
        let start = Instant::now();
        let result = pipeline.simulate(&mask);
        let seconds = start.elapsed().as_secs_f64();
        println!(
            "{name:<22} : {seconds:>8.3} s  ({:>9.4} um^2/s, {:>6.1} tiles/s, {} tiles, halo {} px)",
            area_um2 / seconds,
            result.tiles as f64 / seconds,
            result.tiles,
            result.halo_px,
        );
        seconds
    };

    println!(
        "chip                   : {rows}x{cols} px ({area_um2:.3} um^2), {} worker thread(s)",
        litho_parallel::max_threads()
    );
    let rigorous_seconds = run("rigorous simulator", &rigorous);
    let nitho_seconds = run("nitho stored kernels", &model);
    println!(
        "speed-up               : {:>8.1}x",
        rigorous_seconds / nitho_seconds
    );
}
