//! Inspect the physical SOCS kernels and the kernels recovered by Nitho's
//! complex-valued neural field.
//!
//! Prints the TCC eigenvalue spectrum, the energy captured per kernel order,
//! and an ASCII rendering of the leading kernel magnitude from both the
//! physical decomposition and the learned model.
//!
//! ```text
//! cargo run --release --example kernel_inspection
//! ```

use litho_masks::{Dataset, DatasetKind};
use litho_math::ComplexMatrix;
use litho_optics::{HopkinsSimulator, OpticalConfig};
use nitho::{NithoConfig, NithoModel};

fn render_magnitude(kernel: &ComplexMatrix) -> String {
    let magnitudes = kernel.abs();
    let max = magnitudes.max().max(f64::MIN_POSITIVE);
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut out = String::new();
    for i in 0..kernel.rows() {
        for j in 0..kernel.cols() {
            let level = ((magnitudes[(i, j)] / max) * (glyphs.len() - 1) as f64).round() as usize;
            out.push(glyphs[level.min(glyphs.len() - 1)]);
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

fn main() {
    let optics = OpticalConfig::builder()
        .tile_px(128)
        .pixel_nm(4.0)
        .kernel_count(8)
        .build();
    let simulator = HopkinsSimulator::new(&optics);

    println!("== physical SOCS kernels ==");
    println!(
        "kernel grid         : {0}x{0}",
        simulator.kernel_dims().rows
    );
    println!(
        "captured TCC energy : {:.2} %",
        100.0 * simulator.captured_energy()
    );
    let eigenvalues = simulator.kernels().eigenvalues();
    for (order, value) in eigenvalues.iter().enumerate() {
        println!("  alpha_{order:<2} = {value:.4e}");
    }
    println!("\nleading physical kernel |K_0| :");
    println!("{}", render_magnitude(&simulator.kernels().kernels()[0]));

    println!("== Nitho learned kernels ==");
    let train = Dataset::generate(DatasetKind::B1, 16, &simulator, 5);
    let mut model = NithoModel::new(
        NithoConfig {
            epochs: 35,
            ..NithoConfig::fast()
        },
        &optics,
    );
    let report = model.train(&train);
    println!(
        "training loss       : {:.3e} -> {:.3e}",
        report.initial_loss(),
        report.final_loss()
    );
    let kernels = model.kernels().expect("trained");
    let energies: Vec<f64> = kernels.iter().map(|k| k.frobenius_norm().powi(2)).collect();
    for (order, energy) in energies.iter().enumerate() {
        println!("  |K_{order}|^2 = {energy:.4e}");
    }
    println!("\nleading learned kernel |K_0| :");
    println!("{}", render_magnitude(&kernels[0]));
}
