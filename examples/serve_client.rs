//! `nitho-serve` client walkthrough: starts the inference service in-process
//! on an ephemeral port, then talks to it exactly like a network client —
//! `/healthz`, `/v1/models`, a `/v1/simulate` round-trip whose resist image
//! is rendered as ASCII art, and the async `/v1/jobs` submit → poll → fetch
//! cycle, checking the stitched job bytes against the synchronous answer.
//!
//! ```text
//! cargo run --release --example serve_client
//! ```
//!
//! Against a standalone server (`cargo run --release -p litho_serve --bin
//! nitho-serve`), the same three requests work over plain `curl`; see the
//! README quick-start.

use litho_masks::{Dataset, DatasetKind};
use litho_optics::{HopkinsSimulator, OpticalConfig};
use litho_serve::{
    http_request, http_request_with_timeout, HttpServer, Json, ModelRegistry, Service,
};
use nitho::{NithoConfig, NithoModel};

fn main() {
    // --- Server side: registry with a rigorous engine and a trained model.
    let optics = OpticalConfig::builder()
        .tile_px(64)
        .pixel_nm(8.0)
        .kernel_count(8)
        .build();
    let labeller = HopkinsSimulator::new(&optics);
    println!("training a small Nitho model for the registry...");
    let train = Dataset::generate(DatasetKind::B2Metal, 8, &labeller, 21);
    let mut model = NithoModel::new(
        NithoConfig {
            epochs: 12,
            ..NithoConfig::fast()
        },
        &optics,
    );
    model.train(&train);

    let mut registry = ModelRegistry::new();
    registry.register_nitho("nitho", model);
    registry.register_hopkins("hopkins", labeller);
    let service = Service::new(registry);

    let server = HttpServer::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || {
        server.serve(move |request| service.handle(request));
    });
    println!("serving on http://{addr}\n");

    // --- Client side: plain HTTP/1.1 over a TcpStream.
    let (status, body) = http_request(addr, "GET", "/healthz", None).expect("healthz");
    println!("GET /healthz      -> {status} {body}");

    let (status, body) = http_request(addr, "GET", "/v1/models", None).expect("models");
    println!("GET /v1/models    -> {status} {body}\n");

    // A 160×128 layout (5×4 tile cores at halo 16): three metal lines and a
    // via field, sent as rectangles.
    let simulate = r#"{
        "model": "nitho",
        "halo_px": 16,
        "mask": {
            "rows": 160, "cols": 128,
            "rects": [
                [8, 16, 120, 32], [8, 48, 96, 64], [40, 80, 120, 96],
                [16, 112, 28, 124], [52, 112, 64, 124], [88, 112, 100, 124],
                [16, 136, 28, 148], [52, 136, 64, 148], [88, 136, 100, 148]
            ]
        },
        "outputs": ["resist"]
    }"#;
    // Responses carry no timing field (bytes are a pure function of the
    // request); time the round trip on the client side instead.
    let sent = std::time::Instant::now();
    let (status, body) =
        http_request(addr, "POST", "/v1/simulate", Some(simulate)).expect("simulate");
    let round_trip_ms = sent.elapsed().as_secs_f64() * 1e3;
    let doc = Json::parse(&body).expect("simulate JSON");
    println!(
        "POST /v1/simulate -> {status}: {} tiles, grid {:?}, halo {} px, {round_trip_ms:.1} ms round trip",
        doc.get("tiles").and_then(Json::as_usize).unwrap_or(0),
        doc.get("grid")
            .and_then(|g| g.serialize().ok())
            .unwrap_or_default(),
        doc.get("halo_px").and_then(Json::as_usize).unwrap_or(0),
    );

    let rows = doc.get("rows").and_then(Json::as_usize).expect("rows");
    let cols = doc.get("cols").and_then(Json::as_usize).expect("cols");
    let resist = doc
        .get("resist")
        .and_then(Json::to_numbers)
        .expect("resist");
    let image = litho_math::RealMatrix::from_vec(rows, cols, resist.clone());
    println!("\npredicted resist image ({rows}x{cols}):");
    println!("{}", litho_bench::ascii_image(&image, 64));

    // --- Async jobs tier: the same chip as a sharded background job. With
    // no worker launcher configured the supervisor degrades gracefully to
    // in-process execution — the stitched bytes are identical either way.
    // `http_request_with_timeout` puts an explicit deadline on every socket
    // read and write, the polite way to poll a long-running job endpoint.
    let budget = std::time::Duration::from_secs(10);
    let job = r#"{
        "model": "nitho",
        "halo_px": 16,
        "shard_tiles": 2,
        "mask": {
            "rows": 160, "cols": 128,
            "rects": [
                [8, 16, 120, 32], [8, 48, 96, 64], [40, 80, 120, 96],
                [16, 112, 28, 124], [52, 112, 64, 124], [88, 112, 100, 124],
                [16, 136, 28, 148], [52, 136, 64, 148], [88, 136, 100, 148]
            ]
        }
    }"#;
    let (status, body) =
        http_request_with_timeout(addr, "POST", "/v1/jobs", Some(job), budget).expect("submit");
    let receipt = Json::parse(&body).expect("receipt JSON");
    let job_id = receipt
        .get("job_id")
        .and_then(Json::as_str)
        .expect("job_id")
        .to_owned();
    println!(
        "\nPOST /v1/jobs     -> {status}: job {job_id}, {} shards over {} tiles",
        receipt.get("shards").and_then(Json::as_usize).unwrap_or(0),
        receipt.get("tiles").and_then(Json::as_usize).unwrap_or(0),
    );

    let final_status = loop {
        let (status, body) =
            http_request_with_timeout(addr, "GET", &format!("/v1/jobs/{job_id}"), None, budget)
                .expect("poll");
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).expect("status JSON");
        match doc.get("state").and_then(Json::as_str) {
            Some("running") => std::thread::sleep(std::time::Duration::from_millis(25)),
            Some("done") => break doc,
            other => panic!("job ended in state {other:?}: {body}"),
        }
    };
    println!(
        "GET /v1/jobs/{{id}} -> done: {}/{} shards, {} retries, {} fallback",
        final_status
            .get("shards_done")
            .and_then(Json::as_usize)
            .unwrap_or(0),
        final_status
            .get("shards")
            .and_then(Json::as_usize)
            .unwrap_or(0),
        final_status
            .get("retries")
            .and_then(Json::as_usize)
            .unwrap_or(0),
        final_status
            .get("fallback_shards")
            .and_then(Json::as_usize)
            .unwrap_or(0),
    );

    let (status, body) = http_request_with_timeout(
        addr,
        "GET",
        &format!("/v1/jobs/{job_id}/result"),
        None,
        budget,
    )
    .expect("result");
    assert_eq!(status, 200, "{body}");
    let stitched = Json::parse(&body).expect("result JSON");
    let job_resist = stitched
        .get("resist")
        .and_then(Json::to_numbers)
        .expect("stitched resist");
    assert_eq!(
        job_resist, resist,
        "async job and synchronous /v1/simulate must agree bit for bit"
    );
    println!("GET .../result    -> {status}: stitched resist matches /v1/simulate exactly");

    shutdown.shutdown();
    server_thread.join().expect("server thread");
    println!("server shut down cleanly");
}
