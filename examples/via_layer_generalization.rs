//! Out-of-distribution generalization: train Nitho on metal routing tiles and
//! evaluate on via arrays (and the reverse) — a miniature of the paper's
//! Table IV.
//!
//! Because Nitho learns the mask-independent optical kernels rather than an
//! image-to-image mapping, the accuracy drop across mask families should be
//! tiny.
//!
//! ```text
//! cargo run --release --example via_layer_generalization
//! ```

use litho_masks::{Dataset, DatasetKind};
use litho_optics::{HopkinsSimulator, OpticalConfig};
use nitho::{NithoConfig, NithoModel};

fn main() {
    let optics = OpticalConfig::builder()
        .tile_px(128)
        .pixel_nm(4.0)
        .kernel_count(8)
        .build();
    let simulator = HopkinsSimulator::new(&optics);

    let metal = Dataset::generate(DatasetKind::B2Metal, 20, &simulator, 11);
    let vias = Dataset::generate(DatasetKind::B2Via, 20, &simulator, 13);

    for (train_set, in_dist_test, ood_test) in [(&metal, &metal, &vias), (&vias, &vias, &metal)] {
        let (train, held_out) = train_set.split(0.75);
        let mut model = NithoModel::new(
            NithoConfig {
                epochs: 40,
                ..NithoConfig::fast()
            },
            &optics,
        );
        model.train(&train);

        let in_dist = model.evaluate(&held_out, optics.resist_threshold);
        let ood = model.evaluate(ood_test, optics.resist_threshold);
        let _ = in_dist_test; // the held-out split of the training family

        println!(
            "train on {:>3} | test {:>3}: PSNR {:>6.2} dB, mIOU {:>6.2} % | OOD {:>3}: PSNR {:>6.2} dB, mIOU {:>6.2} % | mIOU drop {:>5.2} pts",
            train_set.name(),
            train_set.name(),
            in_dist.aerial.psnr_db,
            in_dist.resist.miou_percent,
            ood_test.name(),
            ood.aerial.psnr_db,
            ood.resist.miou_percent,
            in_dist.resist.miou_percent - ood.resist.miou_percent,
        );
    }
}
