//! Quickstart: train Nitho on a small synthetic metal-clip dataset and
//! evaluate it on held-out tiles.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use litho_masks::{Dataset, DatasetKind};
use litho_optics::{HopkinsSimulator, OpticalConfig};
use nitho::{NithoConfig, NithoModel};

fn main() {
    // 1. Describe the imaging system: 193 nm immersion optics on a 512 nm
    //    tile rasterized at 4 nm/pixel (128×128 masks).
    let optics = OpticalConfig::builder()
        .tile_px(128)
        .pixel_nm(4.0)
        .kernel_count(8)
        .build();
    println!("resolution limit   : {:.1} nm", optics.resolution_nm());
    println!(
        "kernel grid (Eq.10): {}x{}",
        optics.kernel_dims().rows,
        optics.kernel_dims().cols
    );

    // 2. Build the rigorous Hopkins simulator (the golden engine) and label a
    //    small ICCAD-style dataset with it.
    let simulator = HopkinsSimulator::new(&optics);
    let dataset = Dataset::generate(DatasetKind::B1, 24, &simulator, 7);
    let (train, test) = dataset.split(0.75);
    println!(
        "dataset            : {} train / {} test tiles",
        train.len(),
        test.len()
    );

    // 3. Train Nitho from mask–aerial pairs only.
    let config = NithoConfig {
        epochs: 40,
        ..NithoConfig::fast()
    };
    let mut model = NithoModel::new(config, &optics);
    println!(
        "model              : {} parameters ({:.2} KB)",
        model.num_parameters(),
        model.size_bytes() as f64 / 1024.0
    );
    let report = model.train(&train);
    println!(
        "training loss      : {:.3e} -> {:.3e} over {} epochs",
        report.initial_loss(),
        report.final_loss(),
        report.len()
    );

    // 4. Evaluate on unseen tiles.
    let evaluation = model.evaluate(&test, optics.resist_threshold);
    println!("aerial  PSNR       : {:.2} dB", evaluation.aerial.psnr_db);
    println!("aerial  MSE (x1e-5): {:.2}", evaluation.aerial.mse_e5());
    println!(
        "aerial  ME  (x1e-2): {:.2}",
        evaluation.aerial.max_error_e2()
    );
    println!(
        "resist  mPA        : {:.2} %",
        evaluation.resist.mpa_percent
    );
    println!(
        "resist  mIOU       : {:.2} %",
        evaluation.resist.miou_percent
    );
}
