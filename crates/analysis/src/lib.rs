//! Dataset-distribution analysis: PCA and t-SNE embeddings of mask
//! collections, used to regenerate the paper's Fig. 2(a).
//!
//! Masks are reduced to low-dimensional feature vectors (block-averaged
//! pixels), optionally compressed with [`pca`], and embedded in 2-D with an
//! exact (non-approximated) [`tsne`] implementation — dataset sizes in this
//! workspace are small enough that the O(N²) formulation is fine.

#![forbid(unsafe_code)]

use litho_math::linalg::matmul;
use litho_math::util::block_downsample;
use litho_math::{eigen, DeterministicRng, RealMatrix};

/// Converts a set of masks into row-feature vectors by block-averaging each
/// mask down to `feature_side × feature_side` pixels.
///
/// # Panics
///
/// Panics if `masks` is empty or `feature_side` does not divide the mask size.
pub fn mask_features(masks: &[&RealMatrix], feature_side: usize) -> RealMatrix {
    assert!(!masks.is_empty(), "need at least one mask");
    let dim = feature_side * feature_side;
    let mut features = RealMatrix::zeros(masks.len(), dim);
    for (row, mask) in masks.iter().enumerate() {
        assert_eq!(
            mask.rows() % feature_side,
            0,
            "feature side must divide the mask size"
        );
        let small = block_downsample(mask, mask.rows() / feature_side);
        for (col, &value) in small.as_slice().iter().enumerate() {
            features[(row, col)] = value;
        }
    }
    features
}

/// Projects row-vector samples onto their `components` leading principal
/// components.
///
/// # Panics
///
/// Panics if `components` is zero or exceeds the feature dimension.
pub fn pca(data: &RealMatrix, components: usize) -> RealMatrix {
    let (n, d) = data.shape();
    assert!(components > 0 && components <= d, "invalid component count");
    // Center the data.
    let mut means = vec![0.0; d];
    for i in 0..n {
        for j in 0..d {
            means[j] += data[(i, j)] / n as f64;
        }
    }
    let centered = data.map_indexed(|_, j, v| v - means[j]);
    // Covariance (d × d) and its eigenvectors.
    let covariance = matmul(&centered.transpose(), &centered).scale(1.0 / n.max(1) as f64);
    let eig = eigen::symmetric_eigen(&covariance);
    let projection = RealMatrix::from_fn(d, components, |i, k| eig.vectors[(i, k)]);
    matmul(&centered, &projection)
}

/// Configuration of the exact t-SNE embedding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsneConfig {
    /// Target perplexity (effective number of neighbours).
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Seed for the initial embedding.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 12.0,
            iterations: 300,
            learning_rate: 60.0,
            seed: 17,
        }
    }
}

/// Embeds row-vector samples into 2-D with exact t-SNE (KL divergence between
/// Gaussian input affinities and Student-t output affinities, gradient
/// descent with momentum and early exaggeration).
///
/// Returns an `N × 2` matrix of embedding coordinates.
///
/// # Panics
///
/// Panics if fewer than four samples are provided.
pub fn tsne(data: &RealMatrix, config: &TsneConfig) -> RealMatrix {
    let n = data.rows();
    assert!(n >= 4, "t-SNE needs at least four samples");

    let p = joint_affinities(data, config.perplexity);
    let mut rng = DeterministicRng::new(config.seed);
    let mut y = RealMatrix::from_fn(n, 2, |_, _| rng.normal(0.0, 1e-2));
    let mut velocity = RealMatrix::zeros(n, 2);

    for iteration in 0..config.iterations {
        let exaggeration = if iteration < config.iterations / 4 {
            4.0
        } else {
            1.0
        };
        // Student-t affinities of the embedding.
        let mut q_num = RealMatrix::zeros(n, n);
        let mut q_sum = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let dy0 = y[(i, 0)] - y[(j, 0)];
                let dy1 = y[(i, 1)] - y[(j, 1)];
                let value = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
                q_num[(i, j)] = value;
                q_sum += value;
            }
        }
        // Gradient step.
        let momentum = if iteration < 60 { 0.5 } else { 0.8 };
        let mut gradient = RealMatrix::zeros(n, 2);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let q = (q_num[(i, j)] / q_sum).max(1e-12);
                let coeff = 4.0 * (exaggeration * p[(i, j)] - q) * q_num[(i, j)];
                gradient[(i, 0)] += coeff * (y[(i, 0)] - y[(j, 0)]);
                gradient[(i, 1)] += coeff * (y[(i, 1)] - y[(j, 1)]);
            }
        }
        for i in 0..n {
            for k in 0..2 {
                velocity[(i, k)] =
                    momentum * velocity[(i, k)] - config.learning_rate * gradient[(i, k)];
                y[(i, k)] += velocity[(i, k)];
            }
        }
    }
    y
}

/// Symmetrized input affinities with per-point bandwidths found by a binary
/// search on the perplexity.
fn joint_affinities(data: &RealMatrix, perplexity: f64) -> RealMatrix {
    let n = data.rows();
    let d = data.cols();
    // Pairwise squared distances.
    let mut dist = RealMatrix::zeros(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            let mut acc = 0.0;
            for k in 0..d {
                let diff = data[(i, k)] - data[(j, k)];
                acc += diff * diff;
            }
            dist[(i, j)] = acc;
            dist[(j, i)] = acc;
        }
    }
    let target_entropy = perplexity.max(2.0).ln();
    let mut p = RealMatrix::zeros(n, n);
    for i in 0..n {
        let mut beta = 1.0;
        let (mut beta_min, mut beta_max) = (0.0_f64, f64::INFINITY);
        for _ in 0..50 {
            let mut sum = 0.0;
            for j in 0..n {
                if j != i {
                    sum += (-beta * dist[(i, j)]).exp();
                }
            }
            let sum = sum.max(1e-300);
            let mut entropy = 0.0;
            for j in 0..n {
                if j != i {
                    let pij = (-beta * dist[(i, j)]).exp() / sum;
                    if pij > 1e-300 {
                        entropy -= pij * pij.ln();
                    }
                }
            }
            if (entropy - target_entropy).abs() < 1e-5 {
                break;
            }
            if entropy > target_entropy {
                beta_min = beta;
                beta = if beta_max.is_finite() {
                    (beta + beta_max) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                beta_max = beta;
                beta = (beta + beta_min) / 2.0;
            }
        }
        let mut sum = 0.0;
        for j in 0..n {
            if j != i {
                sum += (-beta * dist[(i, j)]).exp();
            }
        }
        let sum = sum.max(1e-300);
        for j in 0..n {
            if j != i {
                p[(i, j)] = (-beta * dist[(i, j)]).exp() / sum;
            }
        }
    }
    // Symmetrize and normalize.
    let mut joint = RealMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            joint[(i, j)] = ((p[(i, j)] + p[(j, i)]) / (2.0 * n as f64)).max(1e-12);
        }
    }
    joint
}

/// Mean pairwise Euclidean distance between two groups of embedded points
/// minus the mean within-group distance; positive values mean the groups are
/// separated. Used to verify Fig. 2(a)-style cluster structure numerically.
pub fn separation_score(embedding: &RealMatrix, group_a: &[usize], group_b: &[usize]) -> f64 {
    let dist = |i: usize, j: usize| {
        let dx = embedding[(i, 0)] - embedding[(j, 0)];
        let dy = embedding[(i, 1)] - embedding[(j, 1)];
        (dx * dx + dy * dy).sqrt()
    };
    let mean_pairs = |pairs: &mut dyn Iterator<Item = (usize, usize)>| {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (i, j) in pairs {
            sum += dist(i, j);
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    };
    let between = mean_pairs(
        &mut group_a
            .iter()
            .flat_map(|&i| group_b.iter().map(move |&j| (i, j))),
    );
    let within_a = mean_pairs(
        &mut group_a
            .iter()
            .enumerate()
            .flat_map(|(idx, &i)| group_a[idx + 1..].iter().map(move |&j| (i, j))),
    );
    let within_b = mean_pairs(
        &mut group_b
            .iter()
            .enumerate()
            .flat_map(|(idx, &i)| group_b[idx + 1..].iter().map(move |&j| (i, j))),
    );
    between - 0.5 * (within_a + within_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster_data(per_cluster: usize, dim: usize, gap: f64) -> RealMatrix {
        let mut rng = DeterministicRng::new(3);
        RealMatrix::from_fn(2 * per_cluster, dim, |i, _| {
            let center = if i < per_cluster { 0.0 } else { gap };
            center + rng.normal(0.0, 0.3)
        })
    }

    #[test]
    fn mask_features_shape_and_values() {
        let mask_a = RealMatrix::filled(32, 32, 1.0);
        let mask_b = RealMatrix::zeros(32, 32);
        let features = mask_features(&[&mask_a, &mask_b], 8);
        assert_eq!(features.shape(), (2, 64));
        assert!((features[(0, 0)] - 1.0).abs() < 1e-12);
        assert_eq!(features[(1, 0)], 0.0);
    }

    #[test]
    fn pca_projects_onto_dominant_direction() {
        let data = two_cluster_data(20, 6, 10.0);
        let projected = pca(&data, 2);
        assert_eq!(projected.shape(), (40, 2));
        // The first component must separate the two clusters.
        let first: Vec<f64> = (0..40).map(|i| projected[(i, 0)]).collect();
        let mean_a: f64 = first[..20].iter().sum::<f64>() / 20.0;
        let mean_b: f64 = first[20..].iter().sum::<f64>() / 20.0;
        assert!((mean_a - mean_b).abs() > 5.0);
    }

    #[test]
    fn tsne_separates_well_separated_clusters() {
        let data = two_cluster_data(12, 8, 8.0);
        let config = TsneConfig {
            iterations: 150,
            ..TsneConfig::default()
        };
        let embedding = tsne(&data, &config);
        assert_eq!(embedding.shape(), (24, 2));
        let group_a: Vec<usize> = (0..12).collect();
        let group_b: Vec<usize> = (12..24).collect();
        let score = separation_score(&embedding, &group_a, &group_b);
        assert!(score > 0.0, "clusters should separate, score {score}");
    }

    #[test]
    fn tsne_is_deterministic_per_seed() {
        let data = two_cluster_data(6, 4, 4.0);
        let config = TsneConfig {
            iterations: 50,
            ..TsneConfig::default()
        };
        let a = tsne(&data, &config);
        let b = tsne(&data, &config);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least four")]
    fn tsne_too_few_samples_panics() {
        let data = RealMatrix::zeros(3, 4);
        let _ = tsne(&data, &TsneConfig::default());
    }

    #[test]
    #[should_panic(expected = "invalid component count")]
    fn pca_too_many_components_panics() {
        let data = RealMatrix::zeros(5, 3);
        let _ = pca(&data, 4);
    }
}
