//! Wire types for the `/v1/process_window` endpoint.
//!
//! The request names a model, a mask, and the focus × dose axes of the
//! process grid; the response carries per-condition metrology (printed area,
//! CD along the center cutlines, EPE against the nominal-condition contour)
//! plus the process-variation-band summary. Every type serializes to and
//! parses from the in-crate [`Json`] codec, and `parse ∘ serialize == id`
//! holds exactly (pinned by a property test below) — which also makes the
//! endpoint's output bit-identical across runs: the response deliberately
//! carries no timing field.

use litho_masks::{ChipLayout, Rect};
use litho_math::RealMatrix;

use crate::json::Json;

/// Maximum number of process conditions (focus × dose) per request.
///
/// The streamed reduction (see `Service::process_window`) holds O(1) chip
/// planes regardless of the grid size, so this bounds *compute* per request,
/// not memory: one full-chip simulation per unique focus value.
pub const MAX_CONDITIONS: usize = 256;

/// Maximum number of points on either grid axis per request. Keeps a single
/// degenerate axis from consuming the whole condition budget (256 focus
/// values would mean 256 full-chip simulations).
pub const MAX_AXIS_POINTS: usize = 64;

/// The mask member of a request: raw pixels or rectangles, as in
/// `/v1/simulate`.
#[derive(Debug, Clone, PartialEq)]
pub enum MaskSpec {
    /// Row-major pixel values in `[0, 1]`.
    Pixels {
        /// Chip height in pixels.
        rows: usize,
        /// Chip width in pixels.
        cols: usize,
        /// `rows · cols` values.
        values: Vec<f64>,
    },
    /// Axis-aligned `[x0, y0, x1, y1]` rectangles (half-open, clipped).
    Rects {
        /// Chip height in pixels.
        rows: usize,
        /// Chip width in pixels.
        cols: usize,
        /// Rectangle corners.
        rects: Vec<[i64; 4]>,
    },
}

impl MaskSpec {
    /// Chip dimensions `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            MaskSpec::Pixels { rows, cols, .. } | MaskSpec::Rects { rows, cols, .. } => {
                (*rows, *cols)
            }
        }
    }

    /// Serializes to the `mask` JSON member.
    pub fn to_json(&self) -> Json {
        match self {
            MaskSpec::Pixels { rows, cols, values } => Json::object(vec![
                ("rows", Json::Number(*rows as f64)),
                ("cols", Json::Number(*cols as f64)),
                ("pixels", Json::NumberArray(values.clone())),
            ]),
            MaskSpec::Rects { rows, cols, rects } => Json::object(vec![
                ("rows", Json::Number(*rows as f64)),
                ("cols", Json::Number(*cols as f64)),
                (
                    "rects",
                    Json::Array(
                        rects
                            .iter()
                            .map(|r| Json::NumberArray(r.iter().map(|&v| v as f64).collect()))
                            .collect(),
                    ),
                ),
            ]),
        }
    }

    /// Parses the `mask` JSON member.
    ///
    /// # Errors
    ///
    /// Returns a protocol-level message on any malformed member.
    pub fn from_json(mask: &Json) -> Result<Self, String> {
        let rows = mask
            .get("rows")
            .and_then(Json::as_usize)
            .ok_or("\"mask.rows\" must be a positive integer")?;
        let cols = mask
            .get("cols")
            .and_then(Json::as_usize)
            .ok_or("\"mask.cols\" must be a positive integer")?;
        if rows == 0 || cols == 0 {
            return Err("mask dimensions must be non-zero".to_owned());
        }
        match (mask.get("rects"), mask.get("pixels")) {
            (Some(rects), None) => {
                let items = rects.as_array().ok_or("\"mask.rects\" must be an array")?;
                let mut parsed = Vec::with_capacity(items.len());
                for (idx, rect) in items.iter().enumerate() {
                    let quad = rect
                        .to_numbers()
                        .filter(|q| q.len() == 4)
                        .ok_or(format!("rect {idx} must be a [x0, y0, x1, y1] quadruple"))?;
                    let mut corner = [0i64; 4];
                    for (slot, &n) in corner.iter_mut().zip(&quad) {
                        if n.fract() != 0.0 || n.abs() > 1e9 {
                            return Err(format!("rect {idx} corners must be integers"));
                        }
                        *slot = n as i64;
                    }
                    if corner[2] <= corner[0] || corner[3] <= corner[1] {
                        return Err(format!("rect {idx} must have positive extent"));
                    }
                    parsed.push(corner);
                }
                Ok(MaskSpec::Rects {
                    rows,
                    cols,
                    rects: parsed,
                })
            }
            (None, Some(pixels)) => {
                let values: Vec<f64> = match pixels {
                    Json::NumberArray(values) => values.clone(),
                    Json::Array(items) if items.is_empty() => Vec::new(),
                    _ => return Err("\"mask.pixels\" must be a flat numeric array".to_owned()),
                };
                if values.len() != rows * cols {
                    return Err(format!(
                        "\"mask.pixels\" has {} values, expected {}",
                        values.len(),
                        rows * cols
                    ));
                }
                if !values.iter().all(|v| (0.0..=1.0).contains(v)) {
                    return Err("\"mask.pixels\" values must lie in [0, 1]".to_owned());
                }
                Ok(MaskSpec::Pixels { rows, cols, values })
            }
            _ => Err("\"mask\" needs exactly one of \"rects\" or \"pixels\"".to_owned()),
        }
    }

    /// Rasterizes the spec into the chip mask.
    pub fn rasterize(&self) -> RealMatrix {
        match self {
            MaskSpec::Pixels { rows, cols, values } => {
                RealMatrix::from_vec(*rows, *cols, values.clone())
            }
            MaskSpec::Rects { rows, cols, rects } => {
                let mut layout = ChipLayout::new(*rows, *cols);
                for &[x0, y0, x1, y1] in rects {
                    layout.push(Rect::new(x0, y0, x1, y1));
                }
                layout.rasterize()
            }
        }
    }
}

/// A `/v1/process_window` request.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessWindowRequest {
    /// Model name; `None` selects the registry default.
    pub model: Option<String>,
    /// The chip mask.
    pub mask: MaskSpec,
    /// Focus axis in nanometres (row-major outer loop of the grid).
    pub focus_nm: Vec<f64>,
    /// Dose axis (inner loop).
    pub dose: Vec<f64>,
    /// Guard-band override in pixels.
    pub halo_px: Option<usize>,
    /// When `true`, the response carries the PVB band image.
    pub include_pvb_band: bool,
}

impl ProcessWindowRequest {
    /// Serializes the request body.
    pub fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        if let Some(model) = &self.model {
            fields.push(("model", Json::string(model)));
        }
        fields.push(("mask", self.mask.to_json()));
        fields.push(("focus_nm", Json::NumberArray(self.focus_nm.clone())));
        fields.push(("dose", Json::NumberArray(self.dose.clone())));
        if let Some(halo) = self.halo_px {
            fields.push(("halo_px", Json::Number(halo as f64)));
        }
        if self.include_pvb_band {
            fields.push(("include_pvb_band", Json::Bool(true)));
        }
        Json::object(fields)
    }

    /// Parses a request body.
    ///
    /// # Errors
    ///
    /// Returns a protocol-level message on any malformed member; grid bounds
    /// (positive doses, [`MAX_AXIS_POINTS`] per axis, [`MAX_CONDITIONS`]
    /// total) are enforced here so a malformed body can never reach the
    /// simulation engine.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let model = match doc.get("model") {
            None => None,
            Some(value) => Some(
                value
                    .as_str()
                    .ok_or("\"model\" must be a string")?
                    .to_owned(),
            ),
        };
        let mask = MaskSpec::from_json(doc.get("mask").ok_or("missing \"mask\"")?)?;
        let axis = |name: &str, default: f64| -> Result<Vec<f64>, String> {
            match doc.get(name) {
                None => Ok(vec![default]),
                Some(value) => {
                    let values = value
                        .to_numbers()
                        .ok_or(format!("\"{name}\" must be a numeric array"))?;
                    if values.is_empty() {
                        return Err(format!("\"{name}\" cannot be empty"));
                    }
                    if !values.iter().all(|v| v.is_finite()) {
                        return Err(format!("\"{name}\" values must be finite"));
                    }
                    if values.len() > MAX_AXIS_POINTS {
                        return Err(format!(
                            "\"{name}\" has {} points, exceeding the \
                             {MAX_AXIS_POINTS}-point axis limit",
                            values.len()
                        ));
                    }
                    Ok(values)
                }
            }
        };
        let focus_nm = axis("focus_nm", 0.0)?;
        let dose = axis("dose", 1.0)?;
        if !dose.iter().all(|&d| d > 0.0) {
            return Err("\"dose\" values must be positive".to_owned());
        }
        if focus_nm.len() * dose.len() > MAX_CONDITIONS {
            return Err(format!(
                "{}x{} grid exceeds the {MAX_CONDITIONS}-condition limit",
                focus_nm.len(),
                dose.len()
            ));
        }
        let halo_px = match doc.get("halo_px") {
            None => None,
            Some(value) => Some(
                value
                    .as_usize()
                    .ok_or("\"halo_px\" must be a non-negative integer")?,
            ),
        };
        let include_pvb_band = match doc.get("include_pvb_band") {
            None => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err("\"include_pvb_band\" must be a boolean".to_owned()),
        };
        Ok(Self {
            model,
            mask,
            focus_nm,
            dose,
            halo_px,
            include_pvb_band,
        })
    }
}

/// Per-condition metrology in a response.
#[derive(Debug, Clone, PartialEq)]
pub struct ConditionReport {
    /// Defocus of this condition in nanometres.
    pub defocus_nm: f64,
    /// Relative dose of this condition.
    pub dose: f64,
    /// Number of printed resist pixels.
    pub printed_px: f64,
    /// CD along the horizontal center cutline, in pixels (`None` when
    /// nothing prints on the cutline).
    pub cd_h_px: Option<f64>,
    /// CD along the vertical center cutline, in pixels.
    pub cd_v_px: Option<f64>,
    /// Mean absolute edge-placement error against the nominal contour, in
    /// pixels.
    pub epe_mean_px: f64,
    /// Largest absolute edge-placement error, in pixels.
    pub epe_max_px: f64,
    /// Reference edges matched / unmatched on the measurement cutlines.
    pub epe_matched: usize,
    /// Reference edges with no counterpart at this condition.
    pub epe_unmatched: usize,
}

impl ConditionReport {
    fn to_json(&self) -> Json {
        let optional = |v: Option<f64>| v.map_or(Json::Null, Json::Number);
        Json::object(vec![
            ("defocus_nm", Json::Number(self.defocus_nm)),
            ("dose", Json::Number(self.dose)),
            ("printed_px", Json::Number(self.printed_px)),
            ("cd_h_px", optional(self.cd_h_px)),
            ("cd_v_px", optional(self.cd_v_px)),
            ("epe_mean_px", Json::Number(self.epe_mean_px)),
            ("epe_max_px", Json::Number(self.epe_max_px)),
            ("epe_matched", Json::Number(self.epe_matched as f64)),
            ("epe_unmatched", Json::Number(self.epe_unmatched as f64)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        let number = |name: &str| -> Result<f64, String> {
            doc.get(name)
                .and_then(Json::as_f64)
                .ok_or(format!("condition report misses \"{name}\""))
        };
        let optional = |name: &str| -> Result<Option<f64>, String> {
            match doc.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(value) => value
                    .as_f64()
                    .map(Some)
                    .ok_or(format!("\"{name}\" must be a number or null")),
            }
        };
        let count = |name: &str| -> Result<usize, String> {
            doc.get(name)
                .and_then(Json::as_usize)
                .ok_or(format!("condition report misses \"{name}\""))
        };
        Ok(Self {
            defocus_nm: number("defocus_nm")?,
            dose: number("dose")?,
            printed_px: number("printed_px")?,
            cd_h_px: optional("cd_h_px")?,
            cd_v_px: optional("cd_v_px")?,
            epe_mean_px: number("epe_mean_px")?,
            epe_max_px: number("epe_max_px")?,
            epe_matched: count("epe_matched")?,
            epe_unmatched: count("epe_unmatched")?,
        })
    }
}

/// PVB summary in a response.
#[derive(Debug, Clone, PartialEq)]
pub struct PvbReport {
    /// Pixels printed under at least one condition.
    pub union_px: f64,
    /// Pixels printed under every condition.
    pub intersection_px: f64,
    /// Band area (union − intersection), in pixels.
    pub area_px: f64,
    /// Band area as a fraction of the chip.
    pub area_fraction: f64,
}

impl PvbReport {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("union_px", Json::Number(self.union_px)),
            ("intersection_px", Json::Number(self.intersection_px)),
            ("area_px", Json::Number(self.area_px)),
            ("area_fraction", Json::Number(self.area_fraction)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        let number = |name: &str| -> Result<f64, String> {
            doc.get(name)
                .and_then(Json::as_f64)
                .ok_or(format!("pvb report misses \"{name}\""))
        };
        Ok(Self {
            union_px: number("union_px")?,
            intersection_px: number("intersection_px")?,
            area_px: number("area_px")?,
            area_fraction: number("area_fraction")?,
        })
    }
}

/// A `/v1/process_window` response.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessWindowResponse {
    /// Model that served the request.
    pub model: String,
    /// Chip height in pixels.
    pub rows: usize,
    /// Chip width in pixels.
    pub cols: usize,
    /// Process-grid shape `(focus_steps, dose_steps)`.
    pub grid: (usize, usize),
    /// Tiles simulated per condition.
    pub tiles_per_condition: usize,
    /// Guard-band width used, in pixels.
    pub halo_px: usize,
    /// Per-condition metrology, row-major (focus outer, dose inner).
    pub conditions: Vec<ConditionReport>,
    /// Process-variation-band summary over the whole grid.
    pub pvb: PvbReport,
    /// Row-major PVB band image, when requested.
    pub pvb_band: Option<Vec<f64>>,
}

impl ProcessWindowResponse {
    /// Serializes the response body.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("model", Json::string(&self.model)),
            ("rows", Json::Number(self.rows as f64)),
            ("cols", Json::Number(self.cols as f64)),
            (
                "grid",
                Json::NumberArray(vec![self.grid.0 as f64, self.grid.1 as f64]),
            ),
            (
                "tiles_per_condition",
                Json::Number(self.tiles_per_condition as f64),
            ),
            ("halo_px", Json::Number(self.halo_px as f64)),
            (
                "conditions",
                Json::Array(
                    self.conditions
                        .iter()
                        .map(ConditionReport::to_json)
                        .collect(),
                ),
            ),
            ("pvb", self.pvb.to_json()),
        ];
        if let Some(band) = &self.pvb_band {
            fields.push(("pvb_band", Json::NumberArray(band.clone())));
        }
        Json::object(fields)
    }

    /// Parses a response body.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped member.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let count = |name: &str| -> Result<usize, String> {
            doc.get(name)
                .and_then(Json::as_usize)
                .ok_or(format!("response misses \"{name}\""))
        };
        let grid = doc
            .get("grid")
            .and_then(Json::to_numbers)
            .filter(|g| g.len() == 2 && g.iter().all(|v| *v >= 0.0 && v.fract() == 0.0))
            .ok_or("response misses \"grid\"")?;
        let conditions = doc
            .get("conditions")
            .and_then(Json::as_array)
            .ok_or("response misses \"conditions\"")?
            .iter()
            .map(ConditionReport::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let pvb = PvbReport::from_json(doc.get("pvb").ok_or("response misses \"pvb\"")?)?;
        let pvb_band = match doc.get("pvb_band") {
            None => None,
            Some(value) => Some(
                value
                    .to_numbers()
                    .ok_or("\"pvb_band\" must be a numeric array")?,
            ),
        };
        Ok(Self {
            model: doc
                .get("model")
                .and_then(Json::as_str)
                .ok_or("response misses \"model\"")?
                .to_owned(),
            rows: count("rows")?,
            cols: count("cols")?,
            grid: (grid[0] as usize, grid[1] as usize),
            tiles_per_condition: count("tiles_per_condition")?,
            halo_px: count("halo_px")?,
            conditions,
            pvb,
            pvb_band,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_math::DeterministicRng;
    use proptest::prelude::*;

    fn random_request(rng: &mut DeterministicRng) -> ProcessWindowRequest {
        let mask = if rng.uniform(0.0, 1.0) < 0.5 {
            let rows = 8 + (rng.uniform(0.0, 8.0) as usize);
            let cols = 8 + (rng.uniform(0.0, 8.0) as usize);
            MaskSpec::Pixels {
                rows,
                cols,
                values: (0..rows * cols)
                    .map(|_| (rng.uniform(0.0, 4.0).floor() / 4.0).clamp(0.0, 1.0))
                    .collect(),
            }
        } else {
            MaskSpec::Rects {
                rows: 32,
                cols: 48,
                rects: (0..1 + (rng.uniform(0.0, 3.0) as usize))
                    .map(|_| {
                        let x0 = rng.uniform(0.0, 20.0).floor() as i64;
                        let y0 = rng.uniform(0.0, 20.0).floor() as i64;
                        [
                            x0,
                            y0,
                            x0 + 1 + rng.uniform(0.0, 20.0).floor() as i64,
                            y0 + 1 + rng.uniform(0.0, 20.0).floor() as i64,
                        ]
                    })
                    .collect(),
            }
        };
        ProcessWindowRequest {
            model: (rng.uniform(0.0, 1.0) < 0.5).then(|| "nitho".to_owned()),
            mask,
            focus_nm: (0..1 + (rng.uniform(0.0, 4.0) as usize))
                .map(|_| rng.uniform(-150.0, 150.0))
                .collect(),
            dose: (0..1 + (rng.uniform(0.0, 4.0) as usize))
                .map(|_| rng.uniform(0.5, 1.5))
                .collect(),
            halo_px: (rng.uniform(0.0, 1.0) < 0.5).then(|| rng.uniform(0.0, 24.0) as usize),
            include_pvb_band: rng.uniform(0.0, 1.0) < 0.5,
        }
    }

    fn random_response(rng: &mut DeterministicRng) -> ProcessWindowResponse {
        let grid = (
            1 + (rng.uniform(0.0, 3.0) as usize),
            1 + (rng.uniform(0.0, 3.0) as usize),
        );
        let conditions = (0..grid.0 * grid.1)
            .map(|_| ConditionReport {
                defocus_nm: rng.uniform(-150.0, 150.0),
                dose: rng.uniform(0.5, 1.5),
                printed_px: rng.uniform(0.0, 1000.0).floor(),
                cd_h_px: (rng.uniform(0.0, 1.0) < 0.7).then(|| rng.uniform(0.0, 64.0)),
                cd_v_px: (rng.uniform(0.0, 1.0) < 0.7).then(|| rng.uniform(0.0, 64.0)),
                epe_mean_px: rng.uniform(0.0, 4.0),
                epe_max_px: rng.uniform(0.0, 9.0),
                epe_matched: rng.uniform(0.0, 9.0) as usize,
                epe_unmatched: rng.uniform(0.0, 3.0) as usize,
            })
            .collect();
        ProcessWindowResponse {
            model: "nitho".to_owned(),
            rows: 96,
            cols: 96,
            grid,
            tiles_per_condition: 9,
            halo_px: 16,
            conditions,
            pvb: PvbReport {
                union_px: rng.uniform(0.0, 9216.0).floor(),
                intersection_px: rng.uniform(0.0, 9216.0).floor(),
                area_px: rng.uniform(0.0, 9216.0).floor(),
                area_fraction: rng.uniform(0.0, 1.0),
            },
            pvb_band: (rng.uniform(0.0, 1.0) < 0.5)
                .then(|| (0..16).map(|_| rng.uniform(0.0, 2.0).floor()).collect()),
        }
    }

    #[test]
    fn request_parses_defaults() {
        let doc = Json::parse(r#"{"mask":{"rows":8,"cols":8,"rects":[[0,0,4,4]]}}"#).expect("json");
        let request = ProcessWindowRequest::from_json(&doc).expect("parse");
        assert_eq!(request.focus_nm, vec![0.0]);
        assert_eq!(request.dose, vec![1.0]);
        assert_eq!(request.model, None);
        assert_eq!(request.halo_px, None);
        assert!(!request.include_pvb_band);
        assert_eq!(request.mask.shape(), (8, 8));
        let mask = request.mask.rasterize();
        assert_eq!(mask.sum(), 16.0);
    }

    #[test]
    fn request_rejections_name_the_field() {
        let cases = [
            (r#"{}"#, "mask"),
            (r#"{"mask":{"rows":8,"cols":8}}"#, "rects"),
            (
                r#"{"mask":{"rows":8,"cols":8,"rects":[[0,0,4,4]]},"focus_nm":[]}"#,
                "focus_nm",
            ),
            (
                r#"{"mask":{"rows":8,"cols":8,"rects":[[0,0,4,4]]},"dose":[0]}"#,
                "dose",
            ),
            (
                r#"{"mask":{"rows":8,"cols":8,"rects":[[0,0,4,4]]},"dose":[1,"x"]}"#,
                "dose",
            ),
            (
                r#"{"mask":{"rows":8,"cols":8,"rects":[[0,0,4,4]]},"halo_px":1.5}"#,
                "halo_px",
            ),
            (r#"{"mask":{"rows":8,"cols":8,"pixels":[0,1]}}"#, "pixels"),
            (
                r#"{"mask":{"rows":8,"cols":8,"rects":[[4,4,0,0]]}}"#,
                "rect 0",
            ),
        ];
        for (body, needle) in cases {
            let doc = Json::parse(body).expect("json");
            let err = ProcessWindowRequest::from_json(&doc).expect_err(body);
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    fn grid_body(focus_points: usize, dose_points: usize) -> String {
        let focus: Vec<String> = (0..focus_points).map(|i| format!("{i}")).collect();
        let dose: Vec<String> = (0..dose_points)
            .map(|i| format!("{}", 1.0 + i as f64 / 1000.0))
            .collect();
        format!(
            r#"{{"mask":{{"rows":8,"cols":8,"rects":[[0,0,4,4]]}},"focus_nm":[{}],"dose":[{}]}}"#,
            focus.join(","),
            dose.join(",")
        )
    }

    #[test]
    fn grid_limits_are_enforced() {
        // (focus points, dose points, expected rejection needle; None = OK).
        let cases = [
            (9, 9, None),
            (MAX_AXIS_POINTS, 5, Some("condition limit")),
            (MAX_AXIS_POINTS, MAX_CONDITIONS / MAX_AXIS_POINTS, None),
            (MAX_AXIS_POINTS + 1, 1, Some("axis limit")),
            (1, MAX_AXIS_POINTS + 1, Some("axis limit")),
            (17, 16, Some("condition limit")),
        ];
        for (focus_points, dose_points, expected) in cases {
            let body = grid_body(focus_points, dose_points);
            let doc = Json::parse(&body).expect("json");
            let result = ProcessWindowRequest::from_json(&doc);
            match expected {
                None => {
                    let request = result.unwrap_or_else(|err| {
                        panic!("{focus_points}x{dose_points} should parse: {err}")
                    });
                    assert_eq!(request.focus_nm.len(), focus_points);
                    assert_eq!(request.dose.len(), dose_points);
                }
                Some(needle) => {
                    let err = result.expect_err("over-limit grid must be rejected");
                    assert!(err.contains(needle), "{focus_points}x{dose_points}: {err}");
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_request_roundtrips_through_the_codec(seed in 0u64..10_000) {
            let mut rng = DeterministicRng::new(seed);
            let request = random_request(&mut rng);
            let wire = request.to_json().serialize().expect("finite request");
            let parsed = ProcessWindowRequest::from_json(&Json::parse(&wire).expect("wire JSON"))
                .expect("round-trip parse");
            prop_assert_eq!(parsed, request);
        }

        #[test]
        fn prop_response_roundtrips_through_the_codec(seed in 0u64..10_000) {
            let mut rng = DeterministicRng::new(seed);
            let response = random_response(&mut rng);
            let wire = response.to_json().serialize().expect("finite response");
            let parsed = ProcessWindowResponse::from_json(&Json::parse(&wire).expect("wire JSON"))
                .expect("round-trip parse");
            prop_assert_eq!(parsed, response);
        }
    }
}
