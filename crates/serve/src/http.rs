//! Hand-rolled HTTP/1.1 server on [`std::net::TcpListener`].
//!
//! crates.io is unreachable, so the service speaks a deliberately small but
//! correct slice of HTTP/1.1: request line + headers + `Content-Length`
//! bodies in, status line + headers + body out, one request per connection
//! (`Connection: close`). Connections are handled on scoped worker threads;
//! a [`ShutdownHandle`] lets tests and the `/v1/shutdown` endpoint stop the
//! accept loop cleanly from another thread.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Upper bound on request bodies (64 MiB — a 2048² chip of f64 pixels fits).
const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;
/// Upper bound on concurrently served connections; excess clients get 503.
const MAX_CONNECTIONS: usize = 64;
/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Per-connection socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), upper-case as received.
    pub method: String,
    /// Request path including any query string (e.g. `/v1/simulate`).
    pub path: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn body_text(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 404, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json".to_owned(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: &str) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8".to_owned(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn status_reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.status,
            self.status_reason(),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Handle that stops a running [`HttpServer`] accept loop from any thread.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Requests shutdown: sets the stop flag and pokes the listener with a
    /// throwaway connection so a blocked `accept` returns.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // A wildcard bind address (0.0.0.0 / ::) is not connectable on every
        // platform; poke the loopback of the same family instead.
        let mut poke = self.addr;
        if poke.ip().is_unspecified() {
            poke.set_ip(match poke.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        // Ignore errors: if the listener is already gone, we are done.
        let _ = TcpStream::connect_timeout(&poke, Duration::from_secs(1));
    }

    /// `true` once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// A minimal threaded HTTP/1.1 server.
pub struct HttpServer {
    listener: TcpListener,
    stop: Arc<AtomicBool>,
}

impl HttpServer {
    /// Binds to an address (`port 0` selects an ephemeral port).
    ///
    /// # Errors
    ///
    /// Returns the bind error from the OS.
    pub fn bind(addr: &str) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound socket address (reports the ephemeral port after `bind`).
    ///
    /// # Errors
    ///
    /// Returns the OS error when the socket is gone.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from another thread.
    ///
    /// # Panics
    ///
    /// Panics if the local address cannot be resolved (the listener is bound,
    /// so this cannot happen in practice).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            stop: Arc::clone(&self.stop),
            addr: self.local_addr().expect("bound listener has an address"),
        }
    }

    /// Runs the accept loop until [`ShutdownHandle::shutdown`] is called.
    /// Each connection is served on its own scoped thread by `handler`
    /// (handler panics are confined to their connection); connections above
    /// [`MAX_CONNECTIONS`] are turned away with a 503 instead of spawning
    /// unboundedly.
    pub fn serve<H>(&self, handler: H)
    where
        H: Fn(&Request) -> Response + Send + Sync,
    {
        let active = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for stream in self.listener.incoming() {
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match stream {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                if active.load(Ordering::SeqCst) >= MAX_CONNECTIONS {
                    // Shedding happens off the accept thread too: the request
                    // must be drained (cheaply, into a sink) before the 503,
                    // or closing with unread data makes the kernel RST the
                    // response away.
                    scope.spawn(move || {
                        let _ = drain_and_reject(stream);
                    });
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                let handler = &handler;
                let active = Arc::clone(&active);
                scope.spawn(move || {
                    let _ = serve_connection(stream, handler);
                    active.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
    }
}

fn serve_connection<H>(mut stream: TcpStream, handler: &H) -> io::Result<()>
where
    H: Fn(&Request) -> Response,
{
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let response = match read_request(&mut stream) {
        // A handler panic (e.g. an assert deep in the simulators) must not
        // take the accept loop down with it; the client gets a 500.
        Ok(request) => {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(&request))) {
                Ok(response) => response,
                Err(_) => Response::text(500, "internal error"),
            }
        }
        Err(err) if err.kind() == io::ErrorKind::InvalidData => {
            Response::text(400, &format!("bad request: {err}"))
        }
        Err(err) if err.kind() == io::ErrorKind::FileTooLarge => {
            Response::text(413, "request too large")
        }
        // A closed or timed-out socket cannot carry a response.
        Err(err) => return Err(err),
    };
    response.write_to(&mut stream)
}

/// Overload path: drains the request (head parsed line-wise, body copied to
/// a sink, never buffered) and answers 503 — so the shedding response
/// actually reaches the client instead of being discarded by a TCP reset,
/// at O(1) memory per rejected connection.
fn drain_and_reject(mut stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(&mut stream);
    let mut content_length: u64 = 0;
    let mut head_bytes = 0usize;
    loop {
        let mut line = String::new();
        if read_line_bounded(&mut reader, &mut line).is_err() {
            break;
        }
        head_bytes += line.len();
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() || head_bytes > MAX_HEAD_BYTES {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let _ = io::copy(
        &mut reader.take(content_length.min(MAX_BODY_BYTES as u64)),
        &mut io::sink(),
    );
    Response::text(503, "server busy").write_to(&mut stream)
}

fn invalid(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Reads and parses one HTTP/1.1 request from a stream.
///
/// # Errors
///
/// `InvalidData` for malformed requests, `FileTooLarge` for oversized heads
/// or bodies, or any underlying socket error.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream);

    let mut request_line = String::new();
    read_line_bounded(&mut reader, &mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| invalid("empty request line"))?
        .to_owned();
    let path = parts
        .next()
        .ok_or_else(|| invalid("request line has no path"))?
        .to_owned();
    let version = parts.next().ok_or_else(|| invalid("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    let mut head_bytes = request_line.len();
    loop {
        let mut line = String::new();
        read_line_bounded(&mut reader, &mut line)?;
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::FileTooLarge,
                "head too large",
            ));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| invalid("bad header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| invalid("bad content-length"))?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::FileTooLarge,
            "body too large",
        ));
    }
    // Read incrementally instead of allocating content_length up front, so a
    // client claiming a huge body without sending one cannot pin memory for
    // the whole socket timeout.
    let mut body = Vec::with_capacity(content_length.min(64 * 1024));
    reader.take(content_length as u64).read_to_end(&mut body)?;
    if body.len() != content_length {
        return Err(invalid("connection closed mid-body"));
    }

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn read_line_bounded<R: BufRead>(reader: &mut R, out: &mut String) -> io::Result<()> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let n = reader.read(&mut byte)?;
        if n == 0 {
            return Err(invalid("connection closed mid-request"));
        }
        buf.push(byte[0]);
        if byte[0] == b'\n' {
            break;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(io::Error::new(io::ErrorKind::FileTooLarge, "line too long"));
        }
    }
    out.push_str(std::str::from_utf8(&buf).map_err(|_| invalid("non-UTF-8 head"))?);
    Ok(())
}

/// Issues one HTTP request over a fresh connection and returns
/// `(status, body)`. Shared by tests, the client example and smoke checks —
/// the server always closes the connection after responding, so a plain
/// read-to-end sees the full body.
///
/// # Errors
///
/// Returns connection errors or `InvalidData` on a malformed response head.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw).map_err(|_| invalid("non-UTF-8 response"))?;
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| invalid("malformed response"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| invalid("malformed status line"))?;
    Ok((status, payload.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> (ShutdownHandle, SocketAddr, std::thread::JoinHandle<()>) {
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || {
            server.serve(|request| {
                Response::json(
                    200,
                    format!(
                        "{{\"method\":\"{}\",\"path\":\"{}\",\"body_len\":{}}}",
                        request.method,
                        request.path,
                        request.body.len()
                    ),
                )
            });
        });
        (handle, addr, join)
    }

    #[test]
    fn roundtrip_get_and_post() {
        let (handle, addr, join) = echo_server();
        let (status, body) = http_request(addr, "GET", "/healthz", None).expect("GET");
        assert_eq!(status, 200);
        assert!(body.contains("\"method\":\"GET\""), "{body}");
        assert!(body.contains("\"path\":\"/healthz\""), "{body}");

        let (status, body) =
            http_request(addr, "POST", "/v1/echo", Some("hello world")).expect("POST");
        assert_eq!(status, 200);
        assert!(body.contains("\"body_len\":11"), "{body}");

        handle.shutdown();
        join.join().expect("server thread");
        assert!(handle.is_shutdown());
    }

    #[test]
    fn concurrent_requests_are_all_served() {
        let (handle, addr, join) = echo_server();
        let responses: Vec<_> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..8)
                .map(|i| {
                    scope.spawn(move || {
                        http_request(addr, "POST", &format!("/r{i}"), Some("x")).expect("request")
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("join"))
                .collect()
        });
        for (i, (status, body)) in responses.iter().enumerate() {
            assert_eq!(*status, 200);
            assert!(body.contains(&format!("/r{i}")));
        }
        handle.shutdown();
        join.join().expect("server thread");
    }

    #[test]
    fn malformed_request_gets_400() {
        let (handle, addr, join) = echo_server();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"NONSENSE\r\n\r\n")
            .expect("write garbage");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        handle.shutdown();
        join.join().expect("server thread");
    }

    #[test]
    fn oversized_content_length_gets_413() {
        let (handle, addr, join) = echo_server();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"POST / HTTP/1.1\r\ncontent-length: 999999999999\r\n\r\n")
            .expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 413"), "{response}");
        handle.shutdown();
        join.join().expect("server thread");
    }
}
