//! Hand-rolled HTTP/1.1 server on [`std::net::TcpListener`].
//!
//! crates.io is unreachable, so the service speaks a deliberately small but
//! correct slice of HTTP/1.1: request line + headers + `Content-Length`
//! bodies in, status line + headers + body out, one request per connection
//! (`Connection: close`). Two execution models share one parser and one
//! response encoder:
//!
//! * [`HttpServer::serve`] — the original thread-per-connection baseline
//!   (one scoped thread per accepted socket, blocking I/O), retained as the
//!   byte-identity reference and benchmark baseline.
//! * [`HttpServer::serve_event`] — the production path: a non-blocking
//!   event loop (`TcpListener::set_nonblocking` + readiness polling) drives
//!   incremental per-connection head/body state machines and hands complete
//!   requests to a fixed worker pool through a bounded [`WorkQueue`]. Load
//!   is shed at the queue (`503` + `Retry-After`), not at `accept`;
//!   per-request deadlines expire queued work; a [`ShutdownHandle`] drains
//!   queued + in-flight requests to completion before the loop exits.
//!
//! Both paths produce byte-identical responses for the same request — the
//! event loop only changes *when* compute runs, never what is written.
//! See DESIGN.md §10.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use litho_obs::{Counter, Gauge, Histogram};

use crate::queue::{PushError, ServerMetrics, WorkQueue, LATENCY_BUCKETS_MS};

/// Process-wide registry mirrors of the per-instance [`ServerMetrics`]
/// block. `ServerMetrics` stays the per-server API (tests and `/healthz`
/// read its fields directly); these statics aggregate across every server
/// instance in the process for `/metrics`.
static SERVE_REQUESTS_TOTAL: Counter = Counter::new(
    "litho_serve_requests_total",
    "requests answered by the event-loop tier (any status, including shed 503s)",
);
static SERVE_SHED_TOTAL: Counter = Counter::new(
    "litho_serve_shed_total",
    "requests refused with 503 because the work queue was full",
);
static SERVE_DEADLINE_EXPIRATIONS_TOTAL: Counter = Counter::new(
    "litho_serve_deadline_expirations_total",
    "queued requests whose deadline expired before a worker picked them up",
);
static SERVE_QUEUE_DEPTH: Gauge = Gauge::new(
    "litho_serve_queue_depth",
    "pending requests in the event-loop work queue",
);

/// Known endpoints get their own latency series; everything else shares the
/// `other` label so path cardinality stays bounded.
struct Endpoint {
    path: &'static str,
    span: &'static str,
    latency: Histogram,
}

const LATENCY_NAME: &str = "litho_serve_request_latency_ms";
const LATENCY_HELP: &str = "end-to-end request latency (accept to response ready), by endpoint";

static ENDPOINTS: [Endpoint; 7] = [
    Endpoint {
        path: "/v1/simulate",
        span: "serve./v1/simulate",
        latency: Histogram::with_label(
            LATENCY_NAME,
            LATENCY_HELP,
            "endpoint=\"/v1/simulate\"",
            &LATENCY_BUCKETS_MS,
        ),
    },
    Endpoint {
        path: "/v1/process_window",
        span: "serve./v1/process_window",
        latency: Histogram::with_label(
            LATENCY_NAME,
            LATENCY_HELP,
            "endpoint=\"/v1/process_window\"",
            &LATENCY_BUCKETS_MS,
        ),
    },
    Endpoint {
        path: "/v1/models",
        span: "serve./v1/models",
        latency: Histogram::with_label(
            LATENCY_NAME,
            LATENCY_HELP,
            "endpoint=\"/v1/models\"",
            &LATENCY_BUCKETS_MS,
        ),
    },
    Endpoint {
        path: "/healthz",
        span: "serve./healthz",
        latency: Histogram::with_label(
            LATENCY_NAME,
            LATENCY_HELP,
            "endpoint=\"/healthz\"",
            &LATENCY_BUCKETS_MS,
        ),
    },
    Endpoint {
        path: "/v1/jobs",
        span: "serve./v1/jobs",
        latency: Histogram::with_label(
            LATENCY_NAME,
            LATENCY_HELP,
            "endpoint=\"/v1/jobs\"",
            &LATENCY_BUCKETS_MS,
        ),
    },
    Endpoint {
        path: "/v1/shard",
        span: "serve./v1/shard",
        latency: Histogram::with_label(
            LATENCY_NAME,
            LATENCY_HELP,
            "endpoint=\"/v1/shard\"",
            &LATENCY_BUCKETS_MS,
        ),
    },
    Endpoint {
        path: "",
        span: "serve.other",
        latency: Histogram::with_label(
            LATENCY_NAME,
            LATENCY_HELP,
            "endpoint=\"other\"",
            &LATENCY_BUCKETS_MS,
        ),
    },
];

fn endpoint_for(path: &str) -> &'static Endpoint {
    ENDPOINTS
        .iter()
        .find(|e| {
            !e.path.is_empty()
                // `/v1/jobs/<id>` and `/v1/jobs/<id>/result` share the
                // `/v1/jobs` series: path cardinality must stay bounded.
                && (e.path == path || (e.path == "/v1/jobs" && path.starts_with("/v1/jobs/")))
        })
        .unwrap_or(&ENDPOINTS[ENDPOINTS.len() - 1])
}

/// Registers the serve tier's metrics with the `litho_obs` registry.
/// Idempotent.
pub(crate) fn register_serve_metrics() {
    litho_obs::register(&SERVE_REQUESTS_TOTAL);
    litho_obs::register(&SERVE_SHED_TOTAL);
    litho_obs::register(&SERVE_DEADLINE_EXPIRATIONS_TOTAL);
    litho_obs::register(&SERVE_QUEUE_DEPTH);
    for endpoint in &ENDPOINTS {
        litho_obs::register(&endpoint.latency);
    }
}

/// Process-wide count of requests answered by the event-loop tier.
pub fn total_requests_served() -> u64 {
    SERVE_REQUESTS_TOTAL.get()
}

/// Upper bound on request bodies (64 MiB — a 2048² chip of f64 pixels fits).
const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;
/// Upper bound on concurrently served connections; the threaded path sheds
/// excess clients with a 503, the event loop simply pauses `accept`.
const MAX_CONNECTIONS: usize = 64;
/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Per-connection socket timeout (each individual read or write).
const IO_TIMEOUT: Duration = Duration::from_secs(30);
/// Total wall-clock budget for one blocking-path connection (read + handle +
/// write). The per-call [`IO_TIMEOUT`] alone lets a slowloris peer pin a
/// thread forever by trickling one byte per interval; the budget caps the
/// whole exchange.
const CONNECTION_BUDGET: Duration = Duration::from_secs(60);
/// Event-loop pause when every connection is idle. Worker completions
/// interrupt the pause through the loop's [`Waker`], so this bounds only the
/// latency of *unannounced* readiness — a new connection in the accept
/// backlog or fresh client bytes on an established socket.
const IDLE_POLL: Duration = Duration::from_micros(150);

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), upper-case as received.
    pub method: String,
    /// Request path including any query string (e.g. `/v1/simulate`).
    pub path: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn body_text(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 404, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Extra headers appended after `content-length` (e.g. `retry-after`).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json".to_owned(),
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: &str) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8".to_owned(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    /// Appends an extra response header (name must be lower-case).
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }

    fn status_reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            409 => "Conflict",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        }
    }

    /// Encodes the full response (status line, headers, body) — the single
    /// encoder shared by the threaded and event-loop paths, so identical
    /// `Response` values always reach the wire as identical bytes.
    pub fn render(&self) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
            self.status,
            self.status_reason(),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("connection: close\r\n\r\n");
        let mut bytes = head.into_bytes();
        bytes.extend_from_slice(&self.body);
        bytes
    }

    fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        stream.write_all(&self.render())?;
        stream.flush()
    }
}

/// Handle that stops a running [`HttpServer`] loop from any thread.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Requests shutdown: sets the stop flag and pokes the listener with a
    /// throwaway connection so a blocked `accept` returns. The event loop
    /// stops accepting and *drains* queued + in-flight requests to
    /// completion before exiting.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // A wildcard bind address (0.0.0.0 / ::) is not connectable on every
        // platform; poke the loopback of the same family instead.
        let mut poke = self.addr;
        if poke.ip().is_unspecified() {
            poke.set_ip(match poke.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        // Ignore errors: if the listener is already gone, we are done.
        let _ = TcpStream::connect_timeout(&poke, Duration::from_secs(1));
    }

    /// `true` once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// Tuning knobs of the event-loop path, normally read from the environment.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker-pool size (`NITHO_SERVE_WORKERS`; default: the execution
    /// engine's thread budget, so compute saturates the machine).
    pub workers: usize,
    /// Bounded work-queue depth (`NITHO_QUEUE_DEPTH`, default 64); pushes
    /// beyond it are shed with `503` + `Retry-After`.
    pub queue_depth: usize,
    /// Per-request deadline (`NITHO_DEADLINE_MS`, default 30 000): requests
    /// still queued when it expires are answered `503` without running.
    pub deadline: Duration,
    /// Maximum simultaneously open connections; beyond it the loop pauses
    /// `accept` (clients wait in the listen backlog) rather than shedding.
    pub max_connections: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: litho_parallel::max_threads(),
            queue_depth: 64,
            deadline: Duration::from_secs(30),
            max_connections: MAX_CONNECTIONS,
        }
    }
}

impl ServeConfig {
    /// Reads the `NITHO_SERVE_WORKERS` / `NITHO_QUEUE_DEPTH` /
    /// `NITHO_DEADLINE_MS` knobs, falling back to the defaults above.
    pub fn from_env() -> Self {
        fn env_usize(name: &str) -> Option<usize> {
            std::env::var(name).ok()?.trim().parse().ok()
        }
        let mut config = Self::default();
        if let Some(n) = env_usize("NITHO_SERVE_WORKERS") {
            config.workers = n;
        }
        if let Some(n) = env_usize("NITHO_QUEUE_DEPTH") {
            config.queue_depth = n;
        }
        if let Some(ms) = env_usize("NITHO_DEADLINE_MS") {
            config.deadline = Duration::from_millis(ms as u64);
        }
        config.sanitized()
    }

    fn sanitized(mut self) -> Self {
        self.workers = self.workers.clamp(1, 256);
        self.queue_depth = self.queue_depth.clamp(1, 4096);
        self.deadline = self.deadline.max(Duration::from_millis(1));
        self.max_connections = self.max_connections.clamp(1, 4096);
        self
    }
}

/// A minimal HTTP/1.1 server with a threaded and an event-loop front end.
pub struct HttpServer {
    listener: TcpListener,
    stop: Arc<AtomicBool>,
}

impl HttpServer {
    /// Binds to an address (`port 0` selects an ephemeral port).
    ///
    /// # Errors
    ///
    /// Returns the bind error from the OS.
    pub fn bind(addr: &str) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound socket address (reports the ephemeral port after `bind`).
    ///
    /// # Errors
    ///
    /// Returns the OS error when the socket is gone.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from another thread.
    ///
    /// # Panics
    ///
    /// Panics if the local address cannot be resolved (the listener is bound,
    /// so this cannot happen in practice).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            stop: Arc::clone(&self.stop),
            addr: self.local_addr().expect("bound listener has an address"),
        }
    }

    /// Runs the thread-per-connection accept loop until
    /// [`ShutdownHandle::shutdown`] is called. Each connection is served on
    /// its own scoped thread by `handler` (handler panics are confined to
    /// their connection); connections above [`MAX_CONNECTIONS`] are turned
    /// away with a 503 instead of spawning unboundedly.
    ///
    /// This is the baseline execution model; production serving uses
    /// [`HttpServer::serve_event`].
    pub fn serve<H>(&self, handler: H)
    where
        H: Fn(&Request) -> Response + Send + Sync,
    {
        let active = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for stream in self.listener.incoming() {
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match stream {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                if active.load(Ordering::SeqCst) >= MAX_CONNECTIONS {
                    // Shedding happens off the accept thread too: the request
                    // must be drained (cheaply, into a sink) before the 503,
                    // or closing with unread data makes the kernel RST the
                    // response away.
                    scope.spawn(move || {
                        let _ = drain_and_reject(stream);
                    });
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                let handler = &handler;
                let active = Arc::clone(&active);
                scope.spawn(move || {
                    let _ = serve_connection(stream, handler);
                    active.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
    }

    /// Runs the non-blocking event loop until [`ShutdownHandle::shutdown`]
    /// is called, then drains queued and in-flight requests to completion
    /// before returning.
    ///
    /// One polling thread owns every socket and its incremental head/body
    /// state machine; complete requests flow through a bounded [`WorkQueue`]
    /// to `config.workers` persistent compute threads (each running the
    /// handler under an equal share of the `litho_parallel` thread budget).
    /// A full queue sheds with `503` + `Retry-After`; a request whose
    /// deadline passes while queued is answered `503` without running.
    /// `metrics` is updated continuously and never influences response
    /// bytes.
    pub fn serve_event<H>(&self, config: &ServeConfig, metrics: &Arc<ServerMetrics>, handler: H)
    where
        H: Fn(&Request) -> Response + Send + Sync,
    {
        let config = config.clone().sanitized();
        metrics
            .workers
            .store(config.workers as u64, Ordering::Relaxed);
        metrics
            .queue_capacity
            .store(config.queue_depth as u64, Ordering::Relaxed);
        self.listener
            .set_nonblocking(true)
            .expect("listener supports non-blocking mode");
        let queue: WorkQueue<Job> = WorkQueue::new(config.queue_depth);
        let waker = Waker::default();
        // Each worker runs the handler under an equal share of the engine's
        // thread budget (computed here so a `with_threads` override on the
        // calling thread is honoured); at least one thread each.
        let threads_per_worker = (litho_parallel::max_threads() / config.workers).max(1);

        std::thread::scope(|scope| {
            for _ in 0..config.workers {
                let queue = &queue;
                let waker = &waker;
                let metrics = Arc::clone(metrics);
                let handler = &handler;
                scope.spawn(move || {
                    while let Some(job) = queue.pop() {
                        let depth = queue.len() as u64;
                        metrics.queue_depth.store(depth, Ordering::Relaxed);
                        SERVE_QUEUE_DEPTH.set(depth);
                        let endpoint = endpoint_for(&job.request.path);
                        let response = if Instant::now() > job.deadline {
                            metrics.deadline_misses.fetch_add(1, Ordering::Relaxed);
                            SERVE_DEADLINE_EXPIRATIONS_TOTAL.inc();
                            Response::text(503, "deadline exceeded").with_header("retry-after", "1")
                        } else {
                            metrics.in_flight.fetch_add(1, Ordering::Relaxed);
                            let _span = litho_obs::span(endpoint.span);
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    litho_parallel::with_threads(threads_per_worker, || {
                                        handler(&job.request)
                                    })
                                }));
                            metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
                            result.unwrap_or_else(|_| Response::text(500, "internal error"))
                        };
                        let elapsed_ms = job.accepted.elapsed().as_millis() as u64;
                        metrics.record_completion(elapsed_ms);
                        SERVE_REQUESTS_TOTAL.inc();
                        endpoint.latency.record(elapsed_ms);
                        job.slot.fulfill(response);
                        waker.notify();
                    }
                });
            }

            let mut conns: Vec<Conn> = Vec::new();
            let mut draining = false;
            loop {
                let mut progress = false;

                if !draining && self.stop.load(Ordering::SeqCst) {
                    draining = true;
                    // The shutdown poke (and any other connection that has
                    // not sent a byte yet) must not hold the drain open.
                    conns.retain(|conn| !conn.is_pristine());
                    progress = true;
                }

                if !draining {
                    while conns.len() < config.max_connections {
                        match self.listener.accept() {
                            Ok((stream, _)) => {
                                if stream.set_nonblocking(true).is_err() {
                                    continue;
                                }
                                conns.push(Conn::new(stream));
                                progress = true;
                            }
                            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(_) => break,
                        }
                    }
                }

                let mut index = 0;
                while index < conns.len() {
                    match conns[index].drive(&queue, metrics, config.deadline) {
                        ConnStatus::Progress => {
                            progress = true;
                            index += 1;
                        }
                        ConnStatus::Idle => {
                            if conns[index].last_activity.elapsed() > IO_TIMEOUT {
                                conns.swap_remove(index);
                                progress = true;
                            } else {
                                index += 1;
                            }
                        }
                        ConnStatus::Done => {
                            conns.swap_remove(index);
                            progress = true;
                        }
                    }
                }

                if draining && conns.is_empty() {
                    break;
                }
                if !progress {
                    waker.wait_timeout(IDLE_POLL);
                }
            }

            // No connection can submit work any more; release the workers
            // (the queue is necessarily empty — every queued job belonged to
            // a connection that only closed after its response was written).
            queue.close();
        });
        metrics.queue_depth.store(0, Ordering::Relaxed);
        SERVE_QUEUE_DEPTH.set(0);
        let _ = self.listener.set_nonblocking(false);
    }
}

/// Wakes the event loop out of its idle pause when a worker finishes a job,
/// so fulfilled responses are written immediately instead of waiting for the
/// next timed poll. The flag absorbs notifications that land between the
/// loop's progress check and its wait (no lost wake-ups).
#[derive(Debug, Default)]
struct Waker {
    signal: Mutex<bool>,
    cond: Condvar,
}

impl Waker {
    fn notify(&self) {
        let mut signal = self
            .signal
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *signal = true;
        drop(signal);
        self.cond.notify_one();
    }

    fn wait_timeout(&self, timeout: Duration) {
        let mut signal = self
            .signal
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if !*signal {
            let (guard, _) = self
                .cond
                .wait_timeout(signal, timeout)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            signal = guard;
        }
        *signal = false;
    }
}

/// Single-producer/single-consumer handoff of one response from a worker
/// back to the event loop.
#[derive(Debug, Default)]
struct ResponseSlot {
    ready: AtomicBool,
    response: Mutex<Option<Response>>,
}

impl ResponseSlot {
    fn fulfill(&self, response: Response) {
        *self
            .response
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(response);
        self.ready.store(true, Ordering::Release);
    }

    fn take(&self) -> Option<Response> {
        if !self.ready.load(Ordering::Acquire) {
            return None;
        }
        self.response
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take()
    }
}

/// One parsed request travelling through the work queue.
struct Job {
    request: Request,
    accepted: Instant,
    deadline: Instant,
    slot: Arc<ResponseSlot>,
}

/// Per-connection incremental state.
enum ConnState {
    /// Accumulating bytes until the blank line terminating the head.
    ReadHead { buf: Vec<u8> },
    /// Head parsed; accumulating `content-length` body bytes.
    ReadBody {
        method: String,
        path: String,
        headers: Vec<(String, String)>,
        content_length: usize,
        body: Vec<u8>,
    },
    /// Request handed to the worker pool; polling its response slot.
    Waiting { slot: Arc<ResponseSlot> },
    /// Writing the rendered response.
    WriteOut { bytes: Vec<u8>, written: usize },
}

enum ConnStatus {
    /// State advanced this poll.
    Progress,
    /// Nothing to do yet (would block).
    Idle,
    /// Finished or failed; remove the connection.
    Done,
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            state: ConnState::ReadHead { buf: Vec::new() },
            last_activity: Instant::now(),
        }
    }

    /// `true` while the peer has not sent a single byte (e.g. the shutdown
    /// poke connection).
    fn is_pristine(&self) -> bool {
        matches!(&self.state, ConnState::ReadHead { buf } if buf.is_empty())
    }

    fn respond(&mut self, response: Response) {
        self.state = ConnState::WriteOut {
            bytes: response.render(),
            written: 0,
        };
    }

    fn drive(
        &mut self,
        queue: &WorkQueue<Job>,
        metrics: &Arc<ServerMetrics>,
        deadline: Duration,
    ) -> ConnStatus {
        let status = self.step(queue, metrics, deadline);
        if matches!(status, ConnStatus::Progress) {
            self.last_activity = Instant::now();
        }
        status
    }

    fn step(
        &mut self,
        queue: &WorkQueue<Job>,
        metrics: &Arc<ServerMetrics>,
        deadline: Duration,
    ) -> ConnStatus {
        match &mut self.state {
            ConnState::ReadHead { buf } => {
                let mut chunk = [0u8; 4096];
                let mut advanced = false;
                loop {
                    match self.stream.read(&mut chunk) {
                        // Peer closed; nothing useful can be answered.
                        Ok(0) => return ConnStatus::Done,
                        Ok(n) => {
                            buf.extend_from_slice(&chunk[..n]);
                            advanced = true;
                            if find_head_end(buf).is_some() {
                                break;
                            }
                            if buf.len() > MAX_HEAD_BYTES {
                                self.respond(Response::text(413, "request too large"));
                                return ConnStatus::Progress;
                            }
                        }
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                            if find_head_end(buf).is_none() {
                                return if advanced {
                                    ConnStatus::Progress
                                } else {
                                    ConnStatus::Idle
                                };
                            }
                            break;
                        }
                        Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => return ConnStatus::Done,
                    }
                }
                let head_end = match find_head_end(buf) {
                    Some(pos) => pos,
                    None => {
                        return if advanced {
                            ConnStatus::Progress
                        } else {
                            ConnStatus::Idle
                        }
                    }
                };
                let head = match std::str::from_utf8(&buf[..head_end]) {
                    Ok(text) => text,
                    Err(_) => {
                        self.respond(Response::text(400, "bad request: non-UTF-8 head"));
                        return ConnStatus::Progress;
                    }
                };
                let (method, path, headers) = match parse_head(head) {
                    Ok(parsed) => parsed,
                    Err(err) => {
                        self.respond(err.into_response());
                        return ConnStatus::Progress;
                    }
                };
                let content_length = match body_length(&headers) {
                    Ok(len) => len,
                    Err(err) => {
                        self.respond(err.into_response());
                        return ConnStatus::Progress;
                    }
                };
                let mut body = Vec::with_capacity(content_length.min(64 * 1024));
                body.extend_from_slice(&buf[head_end + 4..]);
                body.truncate(content_length);
                self.state = ConnState::ReadBody {
                    method,
                    path,
                    headers,
                    content_length,
                    body,
                };
                ConnStatus::Progress
            }
            ConnState::ReadBody {
                method,
                path,
                headers,
                content_length,
                body,
            } => {
                let mut advanced = false;
                while body.len() < *content_length {
                    let mut chunk = [0u8; 16 * 1024];
                    let want = (*content_length - body.len()).min(chunk.len());
                    match self.stream.read(&mut chunk[..want]) {
                        Ok(0) => return ConnStatus::Done,
                        Ok(n) => {
                            body.extend_from_slice(&chunk[..n]);
                            advanced = true;
                        }
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                            return if advanced {
                                ConnStatus::Progress
                            } else {
                                ConnStatus::Idle
                            };
                        }
                        Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => return ConnStatus::Done,
                    }
                }
                let request = Request {
                    method: std::mem::take(method),
                    path: std::mem::take(path),
                    headers: std::mem::take(headers),
                    body: std::mem::take(body),
                };
                let accepted = Instant::now();
                let slot = Arc::new(ResponseSlot::default());
                let job = Job {
                    request,
                    accepted,
                    deadline: accepted + deadline,
                    slot: Arc::clone(&slot),
                };
                match queue.try_push(job) {
                    Ok(()) => {
                        let depth = queue.len() as u64;
                        metrics.queue_depth.store(depth, Ordering::Relaxed);
                        SERVE_QUEUE_DEPTH.set(depth);
                        self.state = ConnState::Waiting { slot };
                    }
                    Err((PushError::Full, _)) => {
                        metrics.shed.fetch_add(1, Ordering::Relaxed);
                        metrics.served.fetch_add(1, Ordering::Relaxed);
                        SERVE_SHED_TOTAL.inc();
                        SERVE_REQUESTS_TOTAL.inc();
                        self.respond(
                            Response::text(503, "server busy").with_header("retry-after", "1"),
                        );
                    }
                    Err((PushError::Closed, _)) => {
                        metrics.served.fetch_add(1, Ordering::Relaxed);
                        SERVE_REQUESTS_TOTAL.inc();
                        self.respond(
                            Response::text(503, "server draining").with_header("retry-after", "1"),
                        );
                    }
                }
                ConnStatus::Progress
            }
            ConnState::Waiting { slot } => match slot.take() {
                Some(response) => {
                    self.respond(response);
                    ConnStatus::Progress
                }
                None => ConnStatus::Idle,
            },
            ConnState::WriteOut { bytes, written } => {
                let mut advanced = false;
                while *written < bytes.len() {
                    match self.stream.write(&bytes[*written..]) {
                        Ok(0) => return ConnStatus::Done,
                        Ok(n) => {
                            *written += n;
                            advanced = true;
                        }
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                            return if advanced {
                                ConnStatus::Progress
                            } else {
                                ConnStatus::Idle
                            };
                        }
                        Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => return ConnStatus::Done,
                    }
                }
                let _ = self.stream.flush();
                ConnStatus::Done
            }
        }
    }
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A parse failure with its HTTP mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ParseError {
    /// Malformed request → 400.
    Bad(String),
    /// Oversized head/body → 413.
    TooLarge(&'static str),
}

impl ParseError {
    fn into_response(self) -> Response {
        match self {
            ParseError::Bad(msg) => Response::text(400, &format!("bad request: {msg}")),
            ParseError::TooLarge(msg) => Response::text(413, msg),
        }
    }

    fn into_io(self) -> io::Error {
        match self {
            ParseError::Bad(msg) => io::Error::new(io::ErrorKind::InvalidData, msg),
            ParseError::TooLarge(msg) => io::Error::new(io::ErrorKind::FileTooLarge, msg),
        }
    }
}

/// A parsed request head: method, path, and lower-cased header pairs.
type ParsedHead = (String, String, Vec<(String, String)>);

/// Parses the request head (request line + headers, no trailing blank line).
fn parse_head(head: &str) -> Result<ParsedHead, ParseError> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ParseError::Bad("empty request line".into()))?
        .to_owned();
    let path = parts
        .next()
        .ok_or_else(|| ParseError::Bad("request line has no path".into()))?
        .to_owned();
    let version = parts
        .next()
        .ok_or_else(|| ParseError::Bad("missing version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Bad("unsupported HTTP version".into()));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Bad("bad header".into()))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    Ok((method, path, headers))
}

/// Resolves the request body length from the headers, hardened against
/// smuggling-style ambiguity: every `content-length` header must be a pure
/// unsigned decimal and all occurrences must agree; negative, non-numeric or
/// conflicting values are a 400, values above [`MAX_BODY_BYTES`] a 413.
pub(crate) fn body_length(headers: &[(String, String)]) -> Result<usize, ParseError> {
    let mut resolved: Option<u64> = None;
    for (_, value) in headers.iter().filter(|(k, _)| k == "content-length") {
        let value = value.trim();
        if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseError::Bad("bad content-length".into()));
        }
        // All-digit but beyond u64 is necessarily beyond the body cap.
        let parsed: u64 = value
            .parse()
            .map_err(|_| ParseError::TooLarge("body too large"))?;
        match resolved {
            Some(previous) if previous != parsed => {
                return Err(ParseError::Bad("conflicting content-length".into()));
            }
            _ => resolved = Some(parsed),
        }
    }
    let length = resolved.unwrap_or(0);
    if length > MAX_BODY_BYTES as u64 {
        return Err(ParseError::TooLarge("body too large"));
    }
    Ok(length as usize)
}

/// Caps a blocking read at both the per-call [`IO_TIMEOUT`] and an absolute
/// connection deadline: each `read` re-arms the socket timeout with the
/// remaining budget, so a peer trickling bytes cannot extend its welcome
/// past the deadline.
struct DeadlineReader<'a> {
    stream: &'a TcpStream,
    deadline: Instant,
}

impl Read for DeadlineReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "connection budget exhausted",
            ));
        }
        self.stream
            .set_read_timeout(Some(remaining.min(IO_TIMEOUT)))?;
        match (&*self.stream).read(buf) {
            // A socket timeout surfaces as `WouldBlock` on Unix; normalize so
            // callers see one kind for "the peer stalled past its budget".
            Err(err)
                if matches!(
                    err.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "socket read timed out",
                ))
            }
            other => other,
        }
    }
}

fn serve_connection<H>(stream: TcpStream, handler: &H) -> io::Result<()>
where
    H: Fn(&Request) -> Response,
{
    serve_connection_with_budget(stream, handler, CONNECTION_BUDGET)
}

fn serve_connection_with_budget<H>(
    mut stream: TcpStream,
    handler: &H,
    budget: Duration,
) -> io::Result<()>
where
    H: Fn(&Request) -> Response,
{
    let deadline = Instant::now() + budget;
    let reader = DeadlineReader {
        stream: &stream,
        deadline,
    };
    let response = match read_request_from(reader) {
        // A handler panic (e.g. an assert deep in the simulators) must not
        // take the accept loop down with it; the client gets a 500.
        Ok(request) => {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(&request))) {
                Ok(response) => response,
                Err(_) => Response::text(500, "internal error"),
            }
        }
        Err(err) if err.kind() == io::ErrorKind::InvalidData => {
            Response::text(400, &format!("bad request: {err}"))
        }
        Err(err) if err.kind() == io::ErrorKind::FileTooLarge => {
            Response::text(413, "request too large")
        }
        // A closed or timed-out socket cannot carry a response.
        Err(err) => return Err(err),
    };
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "connection budget exhausted",
        ));
    }
    stream.set_write_timeout(Some(remaining.min(IO_TIMEOUT)))?;
    response.write_to(&mut stream)
}

/// Overload path: drains the request (head parsed line-wise, body copied to
/// a sink, never buffered) and answers 503 — so the shedding response
/// actually reaches the client instead of being discarded by a TCP reset,
/// at O(1) memory per rejected connection.
fn drain_and_reject(mut stream: TcpStream) -> io::Result<()> {
    // The shed path gets a short budget of its own: it exists to protect
    // capacity, so a slow-trickling client must not hold its drain thread
    // for the full connection budget.
    let deadline = Instant::now() + CONNECTION_BUDGET.min(Duration::from_secs(10));
    let mut reader = BufReader::new(DeadlineReader {
        stream: &stream,
        deadline,
    });
    let mut content_length: u64 = 0;
    let mut head_bytes = 0usize;
    loop {
        let mut line = String::new();
        if read_line_bounded(&mut reader, &mut line).is_err() {
            break;
        }
        head_bytes += line.len();
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() || head_bytes > MAX_HEAD_BYTES {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let _ = io::copy(
        &mut reader.take(content_length.min(MAX_BODY_BYTES as u64)),
        &mut io::sink(),
    );
    // Every 503 this server emits carries `retry-after` — the connection-cap
    // shed here used to be the one exception, leaving well-behaved clients
    // with no backoff hint on exactly the path where backoff matters.
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "connection budget exhausted",
        ));
    }
    stream.set_write_timeout(Some(remaining.min(IO_TIMEOUT)))?;
    Response::text(503, "server busy")
        .with_header("retry-after", "1")
        .write_to(&mut stream)
}

fn invalid(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Reads and parses one HTTP/1.1 request from a stream (blocking path).
///
/// # Errors
///
/// `InvalidData` for malformed requests, `FileTooLarge` for oversized heads
/// or bodies, or any underlying socket error.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    read_request_from(&mut *stream)
}

/// [`read_request`] over any byte source — the blocking path wraps the
/// socket in a [`DeadlineReader`] so the whole head+body read respects the
/// connection budget; tests drive it with stalling readers directly.
fn read_request_from<R: Read>(source: R) -> io::Result<Request> {
    let mut reader = BufReader::new(source);

    let mut request_line = String::new();
    read_line_bounded(&mut reader, &mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| invalid("empty request line"))?
        .to_owned();
    let path = parts
        .next()
        .ok_or_else(|| invalid("request line has no path"))?
        .to_owned();
    let version = parts.next().ok_or_else(|| invalid("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    let mut head_bytes = request_line.len();
    loop {
        let mut line = String::new();
        read_line_bounded(&mut reader, &mut line)?;
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::FileTooLarge,
                "head too large",
            ));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| invalid("bad header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = body_length(&headers).map_err(ParseError::into_io)?;
    // Read incrementally instead of allocating content_length up front, so a
    // client claiming a huge body without sending one cannot pin memory for
    // the whole socket timeout.
    let mut body = Vec::with_capacity(content_length.min(64 * 1024));
    reader.take(content_length as u64).read_to_end(&mut body)?;
    if body.len() != content_length {
        return Err(invalid("connection closed mid-body"));
    }

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn read_line_bounded<R: BufRead>(reader: &mut R, out: &mut String) -> io::Result<()> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let n = reader.read(&mut byte)?;
        if n == 0 {
            return Err(invalid("connection closed mid-request"));
        }
        buf.push(byte[0]);
        if byte[0] == b'\n' {
            break;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(io::Error::new(io::ErrorKind::FileTooLarge, "line too long"));
        }
    }
    out.push_str(std::str::from_utf8(&buf).map_err(|_| invalid("non-UTF-8 head"))?);
    Ok(())
}

/// Issues one HTTP request over a fresh connection and returns
/// `(status, body)`. Shared by tests, the client example and smoke checks —
/// the server always closes the connection after responding, so a plain
/// read-to-end sees the full body.
///
/// # Errors
///
/// Returns connection errors or `InvalidData` on a malformed response head.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    http_request_with_timeout(addr, method, path, body, CONNECTION_BUDGET)
}

/// [`http_request`] with an explicit wall-clock budget covering connect,
/// write and the full response read. The job supervisor uses this with the
/// shard lease as the budget — the RPC timeout *is* the lease — and every
/// read re-arms the socket timeout with the remaining budget so a stalled
/// worker cannot pin the driver thread.
///
/// # Errors
///
/// `TimedOut` when the budget expires, connection errors, or `InvalidData`
/// on a malformed response head.
pub fn http_request_with_timeout(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    budget: Duration,
) -> io::Result<(u16, String)> {
    let deadline = Instant::now() + budget;
    let mut stream = TcpStream::connect_timeout(&addr, budget.min(Duration::from_secs(10)))?;
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "request budget exhausted",
        ));
    }
    stream.set_write_timeout(Some(remaining.min(IO_TIMEOUT)))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    let mut reader = DeadlineReader {
        stream: &stream,
        deadline,
    };
    reader.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw).map_err(|_| invalid("non-UTF-8 response"))?;
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| invalid("malformed response"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| invalid("malformed status line"))?;
    Ok((status, payload.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_handler(request: &Request) -> Response {
        Response::json(
            200,
            format!(
                "{{\"method\":\"{}\",\"path\":\"{}\",\"body_len\":{}}}",
                request.method,
                request.path,
                request.body.len()
            ),
        )
    }

    fn echo_server() -> (ShutdownHandle, SocketAddr, std::thread::JoinHandle<()>) {
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || server.serve(echo_handler));
        (handle, addr, join)
    }

    fn echo_event_server(
        config: ServeConfig,
    ) -> (
        ShutdownHandle,
        SocketAddr,
        Arc<ServerMetrics>,
        std::thread::JoinHandle<()>,
    ) {
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = server.shutdown_handle();
        let metrics = Arc::new(ServerMetrics::new());
        let thread_metrics = Arc::clone(&metrics);
        let join =
            std::thread::spawn(move || server.serve_event(&config, &thread_metrics, echo_handler));
        (handle, addr, metrics, join)
    }

    #[test]
    fn roundtrip_get_and_post() {
        let (handle, addr, join) = echo_server();
        let (status, body) = http_request(addr, "GET", "/healthz", None).expect("GET");
        assert_eq!(status, 200);
        assert!(body.contains("\"method\":\"GET\""), "{body}");
        assert!(body.contains("\"path\":\"/healthz\""), "{body}");

        let (status, body) =
            http_request(addr, "POST", "/v1/echo", Some("hello world")).expect("POST");
        assert_eq!(status, 200);
        assert!(body.contains("\"body_len\":11"), "{body}");

        handle.shutdown();
        join.join().expect("server thread");
        assert!(handle.is_shutdown());
    }

    #[test]
    fn concurrent_requests_are_all_served() {
        let (handle, addr, join) = echo_server();
        let responses: Vec<_> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..8)
                .map(|i| {
                    scope.spawn(move || {
                        http_request(addr, "POST", &format!("/r{i}"), Some("x")).expect("request")
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("join"))
                .collect()
        });
        for (i, (status, body)) in responses.iter().enumerate() {
            assert_eq!(*status, 200);
            assert!(body.contains(&format!("/r{i}")));
        }
        handle.shutdown();
        join.join().expect("server thread");
    }

    #[test]
    fn malformed_request_gets_400() {
        let (handle, addr, join) = echo_server();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"NONSENSE\r\n\r\n")
            .expect("write garbage");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        handle.shutdown();
        join.join().expect("server thread");
    }

    #[test]
    fn oversized_content_length_gets_413() {
        let (handle, addr, join) = echo_server();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"POST / HTTP/1.1\r\ncontent-length: 999999999999\r\n\r\n")
            .expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 413"), "{response}");
        handle.shutdown();
        join.join().expect("server thread");
    }

    #[test]
    fn content_length_hardening_table() {
        // (headers after the request line, expected status) — malformed or
        // ambiguous framing must die with 400, oversized with 413, and
        // agreeing duplicates stay serveable. Exercised against BOTH
        // execution models so the shared parser is actually shared.
        let table: &[(&str, u16)] = &[
            ("content-length: 3\r\n\r\nabc", 200),
            // Duplicates that agree are redundant but unambiguous.
            ("content-length: 3\r\ncontent-length: 3\r\n\r\nabc", 200),
            // Conflicting duplicates are a smuggling vector.
            ("content-length: 3\r\ncontent-length: 4\r\n\r\nabcd", 400),
            ("content-length: -5\r\n\r\n", 400),
            ("content-length: abc\r\n\r\n", 400),
            ("content-length: 4abc\r\n\r\n", 400),
            ("content-length: +3\r\n\r\nabc", 400),
            ("content-length: 3.0\r\n\r\n", 400),
            ("content-length:\r\n\r\n", 400),
            // Fits in u64 but beyond the 64 MiB body cap.
            ("content-length: 999999999999\r\n\r\n", 413),
            // Beyond u64 entirely.
            ("content-length: 99999999999999999999999999\r\n\r\n", 413),
        ];
        let drive = |addr: SocketAddr| {
            for (headers, expected) in table {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .write_all(format!("POST /v1/echo HTTP/1.1\r\n{headers}").as_bytes())
                    .expect("write");
                let mut response = String::new();
                stream.read_to_string(&mut response).expect("read");
                let status = response
                    .split_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse::<u16>().ok())
                    .expect("status line");
                assert_eq!(status, *expected, "headers {headers:?} → {response}");
            }
        };

        let (handle, addr, join) = echo_server();
        drive(addr);
        handle.shutdown();
        join.join().expect("server thread");

        let (handle, addr, _metrics, join) = echo_event_server(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        drive(addr);
        handle.shutdown();
        join.join().expect("event server thread");
    }

    #[test]
    fn event_loop_roundtrip_matches_threaded_bytes() {
        let (t_handle, t_addr, t_join) = echo_server();
        let (e_handle, e_addr, metrics, e_join) = echo_event_server(ServeConfig {
            workers: 2,
            queue_depth: 8,
            ..ServeConfig::default()
        });
        for (method, path, body) in [
            ("GET", "/healthz", None),
            ("POST", "/v1/echo", Some("hello world")),
            ("POST", "/v1/other", Some("{\"k\":1}")),
        ] {
            let threaded = http_request(t_addr, method, path, body).expect("threaded");
            let event = http_request(e_addr, method, path, body).expect("event");
            assert_eq!(threaded, event, "{method} {path}");
        }
        assert!(metrics.served.load(Ordering::Relaxed) >= 3);
        assert_eq!(metrics.latency.count(), 3);
        t_handle.shutdown();
        t_join.join().expect("threaded server");
        e_handle.shutdown();
        e_join.join().expect("event server");
    }

    #[test]
    fn event_loop_serves_many_concurrent_clients() {
        let (handle, addr, metrics, join) = echo_event_server(ServeConfig {
            workers: 3,
            queue_depth: 64,
            ..ServeConfig::default()
        });
        let responses: Vec<_> = std::thread::scope(|scope| {
            let clients: Vec<_> = (0..16)
                .map(|i| {
                    scope.spawn(move || {
                        http_request(addr, "POST", &format!("/c{i}"), Some("payload"))
                            .expect("request")
                    })
                })
                .collect();
            clients.into_iter().map(|c| c.join().unwrap()).collect()
        });
        for (i, (status, body)) in responses.iter().enumerate() {
            assert_eq!(*status, 200);
            assert!(body.contains(&format!("/c{i}")), "{body}");
        }
        assert_eq!(metrics.served.load(Ordering::Relaxed), 16);
        handle.shutdown();
        join.join().expect("event server");
    }

    #[test]
    fn full_queue_sheds_with_retry_after() {
        // One worker stuck on a slow request + capacity-1 queue: a burst of
        // clients must see 503 + retry-after for the overflow, while every
        // accepted request completes normally.
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = server.shutdown_handle();
        let metrics = Arc::new(ServerMetrics::new());
        let thread_metrics = Arc::clone(&metrics);
        let join = std::thread::spawn(move || {
            let config = ServeConfig {
                workers: 1,
                queue_depth: 1,
                ..ServeConfig::default()
            };
            server.serve_event(&config, &thread_metrics, |request| {
                std::thread::sleep(Duration::from_millis(150));
                echo_handler(request)
            })
        });

        let raw_request = |addr: SocketAddr| -> (u16, String) {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .write_all(b"POST /slow HTTP/1.1\r\ncontent-length: 1\r\n\r\nx")
                .expect("write");
            let mut response = String::new();
            stream.read_to_string(&mut response).expect("read");
            let status = response
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse::<u16>().ok())
                .expect("status");
            (status, response)
        };

        let results: Vec<_> = std::thread::scope(|scope| {
            let clients: Vec<_> = (0..8)
                .map(|_| scope.spawn(move || raw_request(addr)))
                .collect();
            clients.into_iter().map(|c| c.join().unwrap()).collect()
        });
        let shed: Vec<_> = results.iter().filter(|(s, _)| *s == 503).collect();
        let ok = results.iter().filter(|(s, _)| *s == 200).count();
        assert!(ok >= 1, "at least the in-flight request completes");
        assert!(!shed.is_empty(), "burst over a 1-deep queue must shed");
        for (_, response) in &shed {
            assert!(
                response.to_ascii_lowercase().contains("retry-after: 1"),
                "{response}"
            );
        }
        assert_eq!(metrics.shed.load(Ordering::Relaxed), shed.len() as u64);
        handle.shutdown();
        join.join().expect("event server");
    }

    #[test]
    fn shutdown_drains_in_flight_requests() {
        // A request inside the handler when shutdown arrives must still get
        // its 200 — the drain completes queued + in-flight work.
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = server.shutdown_handle();
        let metrics = Arc::new(ServerMetrics::new());
        let thread_metrics = Arc::clone(&metrics);
        let started = Arc::new(AtomicBool::new(false));
        let handler_started = Arc::clone(&started);
        let join = std::thread::spawn(move || {
            let config = ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            };
            server.serve_event(&config, &thread_metrics, move |request| {
                handler_started.store(true, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(200));
                echo_handler(request)
            })
        });

        let client = std::thread::spawn(move || {
            http_request(addr, "POST", "/inflight", Some("x")).expect("in-flight request")
        });
        while !started.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        handle.shutdown();
        join.join().expect("event server drains before exiting");
        let (status, body) = client.join().expect("client");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("/inflight"), "{body}");
    }

    #[test]
    fn expired_deadline_is_a_503_without_running() {
        // Deadline shorter than the time the request sits behind a slow one:
        // the queued request must be answered 503 and counted as a miss.
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = server.shutdown_handle();
        let metrics = Arc::new(ServerMetrics::new());
        let thread_metrics = Arc::clone(&metrics);
        let join = std::thread::spawn(move || {
            let config = ServeConfig {
                workers: 1,
                queue_depth: 4,
                deadline: Duration::from_millis(50),
                ..ServeConfig::default()
            };
            server.serve_event(&config, &thread_metrics, |request| {
                if request.path == "/slow" {
                    std::thread::sleep(Duration::from_millis(250));
                }
                echo_handler(request)
            })
        });
        let slow = std::thread::spawn(move || http_request(addr, "POST", "/slow", Some("x")));
        // Give the slow request time to occupy the single worker.
        std::thread::sleep(Duration::from_millis(50));
        // Raw request so the response head is visible: the deadline 503 must
        // carry the same retry-after hint as every other shed path.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"POST /fast HTTP/1.1\r\nhost: t\r\ncontent-length: 1\r\nconnection: close\r\n\r\ny")
            .expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status");
        assert_eq!(status, 503, "{response}");
        assert!(response.contains("deadline"), "{response}");
        assert!(
            response.to_ascii_lowercase().contains("retry-after: 1"),
            "{response}"
        );
        let (slow_status, _) = slow.join().unwrap().expect("slow");
        assert_eq!(slow_status, 200);
        assert!(metrics.deadline_misses.load(Ordering::Relaxed) >= 1);
        handle.shutdown();
        join.join().expect("event server");
    }

    #[test]
    fn drain_and_reject_sheds_with_retry_after() {
        // The connection-cap shed path: the request is drained and the 503
        // must match the queue-full shed — including the retry-after hint
        // (historically missing on exactly this path).
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            drain_and_reject(stream).expect("drain");
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"POST /v1/simulate HTTP/1.1\r\nhost: t\r\ncontent-length: 4\r\n\r\nbody")
            .expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        server.join().expect("server thread");
        assert!(response.starts_with("HTTP/1.1 503"), "{response}");
        assert!(
            response.to_ascii_lowercase().contains("retry-after: 1"),
            "{response}"
        );
        assert!(response.contains("server busy"), "{response}");
    }

    #[test]
    fn serve_config_from_env_defaults_are_sane() {
        let config = ServeConfig::default().sanitized();
        assert!(config.workers >= 1);
        assert!(config.queue_depth >= 1);
        assert!(config.deadline >= Duration::from_millis(1));
    }

    #[test]
    fn body_length_hardening_unit_table() {
        let hdr = |v: &str| vec![("content-length".to_owned(), v.to_owned())];
        assert_eq!(body_length(&[]), Ok(0));
        assert_eq!(body_length(&hdr("0")), Ok(0));
        assert_eq!(body_length(&hdr("42")), Ok(42));
        assert!(matches!(body_length(&hdr("-1")), Err(ParseError::Bad(_))));
        assert!(matches!(body_length(&hdr("+1")), Err(ParseError::Bad(_))));
        assert!(matches!(body_length(&hdr("")), Err(ParseError::Bad(_))));
        assert!(matches!(
            body_length(&hdr("18446744073709551616")),
            Err(ParseError::TooLarge(_))
        ));
        let twice = vec![
            ("content-length".to_owned(), "7".to_owned()),
            ("content-length".to_owned(), "7".to_owned()),
        ];
        assert_eq!(body_length(&twice), Ok(7));
        let conflict = vec![
            ("content-length".to_owned(), "7".to_owned()),
            ("content-length".to_owned(), "8".to_owned()),
        ];
        assert!(matches!(body_length(&conflict), Err(ParseError::Bad(_))));
    }

    #[test]
    fn connection_budget_unseats_a_stalling_peer() {
        // A peer that sends a partial head and then goes silent must be cut
        // off at the connection budget, not held for a fresh IO_TIMEOUT per
        // byte. Drive the budgeted path directly with a tiny budget.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .write_all(b"POST /v1/simulate HTTP/1.1\r\ncontent-le")
                .expect("partial head");
            // Stall: keep the socket open well past the server's budget.
            std::thread::sleep(Duration::from_millis(600));
            drop(stream);
        });
        let (stream, _) = listener.accept().expect("accept");
        let started = Instant::now();
        let result = serve_connection_with_budget(
            stream,
            &|_request: &Request| Response::text(200, "ok"),
            Duration::from_millis(150),
        );
        let elapsed = started.elapsed();
        let err = result.expect_err("stalling connection must time out");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut, "{err}");
        assert!(
            elapsed < Duration::from_millis(500),
            "budget must fire promptly, took {elapsed:?}"
        );
        client.join().expect("client thread");
    }

    #[test]
    fn deadline_reader_times_out_mid_body_too() {
        // The budget covers the body as well as the head: a complete head
        // followed by a stalled body read must error at the deadline.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .write_all(b"POST / HTTP/1.1\r\ncontent-length: 100\r\n\r\npartial")
                .expect("head + partial body");
            std::thread::sleep(Duration::from_millis(600));
            drop(stream);
        });
        let (stream, _) = listener.accept().expect("accept");
        let reader = DeadlineReader {
            stream: &stream,
            deadline: Instant::now() + Duration::from_millis(150),
        };
        let err = read_request_from(reader).expect_err("stalled body must time out");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut, "{err}");
        client.join().expect("client thread");
    }

    #[test]
    fn http_request_with_timeout_bounds_a_stalled_server() {
        // Supervisor side of the lease: a worker that accepts the request
        // and never responds loses the shard at the budget boundary.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            std::thread::sleep(Duration::from_millis(700));
            drop(stream);
        });
        let started = Instant::now();
        let result =
            http_request_with_timeout(addr, "GET", "/healthz", None, Duration::from_millis(150));
        let elapsed = started.elapsed();
        assert!(result.is_err(), "stalled server must not yield a response");
        assert!(
            elapsed < Duration::from_millis(500),
            "lease must fire promptly, took {elapsed:?}"
        );
        server.join().expect("server thread");
    }
}
