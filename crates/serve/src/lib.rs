//! Full-chip lithography serving: guard-band tiling + a std-only HTTP
//! inference service.
//!
//! The paper's economic argument is that regressed optical kernels make
//! *full-chip* simulation cheap; this crate is the deployment path that
//! cashes that in. It has two layers:
//!
//! * **Chip pipeline** — [`tiling`] decomposes an arbitrarily large mask
//!   into overlapping guard-band tiles sized to the model's training
//!   resolution; [`chip`] fans the tiles out over `litho_parallel` workers
//!   through the [`TileSimulator`] trait (implemented by both
//!   [`nitho::NithoModel`] and [`litho_optics::HopkinsSimulator`]) and
//!   stitches the tile cores into a seamless aerial/resist image. Stitched
//!   output is bit-identical for any `NITHO_THREADS` value.
//! * **Service** — [`http`] is a hand-rolled HTTP/1.1 server on
//!   [`std::net::TcpListener`] (crates.io is unreachable, so [`json`]
//!   provides the wire encoding in-crate); [`service`] exposes `/healthz`,
//!   `/metrics`, `/v1/models` and `/v1/simulate` over a [`registry`] of
//!   named models restored from versioned checkpoints at startup. The
//!   `nitho-serve` binary wires the two together.
//!
//! See DESIGN.md §5 for the tiling math, halo sizing rule and wire protocol.

#![forbid(unsafe_code)]

pub mod chip;
pub mod http;
pub mod jobs;
pub mod json;
pub mod loadgen;
pub mod pw;
pub mod queue;
pub mod registry;
pub mod service;
pub mod tiling;

pub use chip::{
    aerial_sweep, aerial_sweep_with, ChipPipeline, ChipResult, ChipSweep, TileSimulator,
};
pub use http::{
    http_request, http_request_with_timeout, HttpServer, Request, Response, ServeConfig,
    ShutdownHandle,
};
pub use jobs::{
    compute_shard, shard_count, FailurePlan, JobConfig, JobManager, JobPhase, JobReceipt,
    JobRequest, JobStatus, ShardInjection, ShardRequest, ShardResponse, SubmitError,
    WorkerLauncher,
};
pub use json::Json;
pub use loadgen::{drive, LoadReport, RequestSpec};
pub use pw::{
    ConditionReport, MaskSpec, ProcessWindowRequest, ProcessWindowResponse, PvbReport,
    MAX_AXIS_POINTS, MAX_CONDITIONS,
};
pub use queue::{ConditionBatcher, LatencyHistogram, ServerMetrics, SharedEngine, WorkQueue};
pub use registry::{ModelInfo, ModelRegistry};
pub use service::{register_all_metrics, Service};
pub use tiling::{Tile, TileGrid, TilingConfig};
