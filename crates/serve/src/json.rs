//! Minimal in-crate JSON encode/decode for the wire protocol.
//!
//! crates.io (and therefore `serde`) is unreachable in the build
//! environment, so the service speaks JSON through this small value type.
//! It supports exactly what the protocol needs: objects, arrays, finite
//! numbers, strings (with `\uXXXX` escapes), booleans and null. Objects
//! preserve insertion order so responses serialize deterministically.
//!
//! Serialization is **fallible**: JSON has no NaN/Infinity, and silently
//! rewriting a non-finite number as `null` (the old behavior) corrupts a
//! numeric payload in a way the client cannot distinguish from a genuine
//! null. [`Json::serialize`] instead reports the offending value so the
//! service can answer 500 rather than ship a wrong body.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// A homogeneous numeric array stored flat, avoiding one boxed [`Json`]
    /// per element. Serializes exactly like `Array` of `Number`s; the parser
    /// produces it for every non-empty all-numeric array (image payloads),
    /// falling back to `Array` on mixed content.
    NumberArray(Vec<f64>),
    /// An object; insertion-ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

/// Error produced by [`Json::parse`], with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the error in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Error produced by [`Json::serialize`]: the document contains a number
/// with no JSON representation (NaN or ±Infinity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonFiniteNumber {
    /// The offending value.
    pub value: f64,
}

impl fmt::Display for NonFiniteNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "non-finite number {} has no JSON representation",
            self.value
        )
    }
}

impl std::error::Error for NonFiniteNumber {}

impl Json {
    /// Convenience constructor for an object.
    pub fn object(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Convenience constructor for a string value.
    pub fn string(s: &str) -> Json {
        Json::String(s.to_owned())
    }

    /// Member lookup on an object; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional numbers).
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u32::MAX as f64 {
            Some(n as usize)
        } else {
            None
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice (boxed arrays only; see
    /// [`Json::to_numbers`] for numeric arrays).
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a flat numeric slice (`NumberArray` only — what the
    /// parser yields for non-empty all-numeric arrays).
    pub fn as_number_slice(&self) -> Option<&[f64]> {
        match self {
            Json::NumberArray(values) => Some(values),
            _ => None,
        }
    }

    /// Numeric view of either array variant: borrows nothing, returns the
    /// values as an owned vector (`None` if any element is not a number).
    pub fn to_numbers(&self) -> Option<Vec<f64>> {
        match self {
            Json::NumberArray(values) => Some(values.clone()),
            Json::Array(items) => items.iter().map(Json::as_f64).collect(),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) -> Result<(), NonFiniteNumber> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(*n, out)?,
            Json::String(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out)?;
                }
                out.push(']');
            }
            Json::NumberArray(values) => {
                out.push('[');
                for (i, &value) in values.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_number(value, out)?;
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }

    /// Compact wire serialization.
    ///
    /// # Errors
    ///
    /// Returns [`NonFiniteNumber`] if the document contains a NaN or
    /// infinite number anywhere — there is deliberately no lossy fallback.
    pub fn serialize(&self) -> Result<String, NonFiniteNumber> {
        let mut out = String::new();
        self.write(&mut out)?;
        Ok(out)
    }

    /// Parses a JSON document (one value followed only by whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with a byte offset on malformed input.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value(0)?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn write_number(n: f64, out: &mut String) -> Result<(), NonFiniteNumber> {
    if !n.is_finite() {
        // JSON has no NaN/Inf. Emitting `null` here (the old behavior)
        // would be valid JSON but silent data corruption — the caller must
        // surface the failure instead.
        return Err(NonFiniteNumber { value: n });
    }
    if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum nesting depth accepted by the parser (stack-overflow guard).
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(Vec::new()));
        }
        // Accumulate plain numbers flat; a pixels array of millions of
        // values must not cost one boxed Json per element. The first
        // non-numeric element demotes the accumulator to boxed items.
        let mut numbers = Some(Vec::new());
        let mut items: Vec<Json> = Vec::new();
        loop {
            self.skip_ws();
            let value = self.value(depth + 1)?;
            match (&mut numbers, &value) {
                (Some(flat), Json::Number(n)) => flat.push(*n),
                (Some(flat), _) => {
                    items = flat.drain(..).map(Json::Number).collect();
                    items.push(value);
                    numbers = None;
                }
                (None, _) => items.push(value),
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(match numbers {
                        Some(flat) => Json::NumberArray(flat),
                        None => Json::Array(items),
                    });
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        self.pos += 1; // consume 'u'
        let code = self.hex4()?;
        // Surrogate pair handling for completeness.
        if (0xd800..0xdc00).contains(&code) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xdc00..0xe000).contains(&low) {
                    let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                    return char::from_u32(combined).ok_or_else(|| self.error("invalid surrogate"));
                }
            }
            return Err(self.error("unpaired surrogate"));
        }
        char::from_u32(code).ok_or_else(|| self.error("invalid code point"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.error("invalid \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Number(n)),
            _ => Err(self.error("invalid number")),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple_document() {
        let doc = Json::object(vec![
            ("status", Json::string("ok")),
            ("count", Json::Number(3.0)),
            ("ratio", Json::Number(0.5)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            ("items", Json::NumberArray(vec![1.0, 2.0])),
            (
                "mixed",
                Json::Array(vec![Json::Number(1.0), Json::string("two")]),
            ),
        ]);
        let text = doc.serialize().expect("finite document");
        assert_eq!(
            text,
            r#"{"status":"ok","count":3,"ratio":0.5,"flag":true,"nothing":null,"items":[1,2],"mixed":[1,"two"]}"#
        );
        assert_eq!(Json::parse(&text).expect("parse"), doc);
    }

    #[test]
    fn accessors_extract_fields() {
        let doc = Json::parse(r#"{"model":"nitho","rows":96,"mask":[0,1,1]}"#).expect("parse");
        assert_eq!(doc.get("model").and_then(Json::as_str), Some("nitho"));
        assert_eq!(doc.get("rows").and_then(Json::as_usize), Some(96));
        // All-numeric arrays parse to the flat representation.
        assert_eq!(
            doc.get("mask").and_then(Json::as_number_slice),
            Some([0.0, 1.0, 1.0].as_slice())
        );
        assert_eq!(
            doc.get("mask").and_then(Json::to_numbers).map(|v| v.len()),
            Some(3)
        );
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Number(1.5).as_usize(), None);
        assert_eq!(Json::Number(-1.0).as_usize(), None);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = Json::string("line\nbreak \"quoted\" back\\slash \u{1}");
        let text = original.serialize().expect("string document");
        assert_eq!(Json::parse(&text).expect("parse"), original);
        let unicode = Json::parse(r#""\u00e9\u20ac\ud83d\ude00""#).expect("parse");
        assert_eq!(unicode.as_str(), Some("é€😀"));
    }

    #[test]
    fn whitespace_and_nesting_parse() {
        let doc = Json::parse(" { \"a\" : [ 1 , { \"b\" : [ ] } ] } ").expect("parse");
        assert!(doc.get("a").is_some());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1.2.3",
            "[1] trailing",
            "{\"a\":1,}",
            "\"\\q\"",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn number_array_serializes_like_array_of_numbers() {
        let flat = Json::NumberArray(vec![0.0, 1.0, 0.5]);
        let flat_text = flat.serialize().expect("finite");
        assert_eq!(flat_text, "[0,1,0.5]");
        let boxed = Json::Array(vec![
            Json::Number(0.0),
            Json::Number(1.0),
            Json::Number(0.5),
        ]);
        assert_eq!(flat_text, boxed.serialize().expect("finite"));
        // The wire form round-trips through the parser back to the flat form.
        assert_eq!(Json::parse(&flat_text).expect("parse"), flat);
        assert_eq!(flat.to_numbers(), boxed.to_numbers());
    }

    #[test]
    fn numbers_serialize_compactly() {
        let text = |j: Json| j.serialize().expect("finite");
        assert_eq!(text(Json::Number(42.0)), "42");
        assert_eq!(text(Json::Number(-7.0)), "-7");
        assert_eq!(text(Json::Number(0.125)), "0.125");
        let parsed = Json::parse("1e3").expect("parse");
        assert_eq!(parsed.as_f64(), Some(1000.0));
    }

    #[test]
    fn non_finite_numbers_fail_serialization_everywhere() {
        // A NaN/Inf anywhere in the document — bare, in either array
        // representation, or nested inside objects — must be a hard error,
        // never a silent `null`.
        let nested = |v: f64| {
            Json::object(vec![(
                "outer",
                Json::Array(vec![Json::object(vec![("inner", Json::Number(v))])]),
            )])
        };
        let cases: Vec<(Json, f64)> = vec![
            (Json::Number(f64::NAN), f64::NAN),
            (Json::Number(f64::INFINITY), f64::INFINITY),
            (Json::Number(f64::NEG_INFINITY), f64::NEG_INFINITY),
            (Json::NumberArray(vec![1.0, f64::NAN, 3.0]), f64::NAN),
            (
                Json::Array(vec![Json::Number(1.0), Json::Number(f64::INFINITY)]),
                f64::INFINITY,
            ),
            (nested(f64::NEG_INFINITY), f64::NEG_INFINITY),
        ];
        for (doc, value) in cases {
            let err = doc.serialize().expect_err("non-finite must not serialize");
            assert_eq!(err.value.is_nan(), value.is_nan());
            if !value.is_nan() {
                assert_eq!(err.value, value);
            }
            assert!(err.to_string().contains("no JSON representation"));
        }
        // …while finite documents of the same shapes still serialize.
        assert!(nested(0.5).serialize().is_ok());
    }
}
