//! Guard-band tiling of an arbitrarily large chip onto fixed-size tiles.
//!
//! Optical kernels are regressed on a fixed training-tile geometry, so a
//! full-chip mask must be decomposed into tiles of exactly that size before
//! simulation. Naively abutting tiles produces seams: the aerial intensity at
//! a pixel depends on mask geometry within the optical ambit (a few
//! resolution elements `R = 0.5·λ/NA`), and a tile boundary cuts that
//! neighbourhood off. The classical fix — used by every production OPC/litho
//! engine — is a **guard band**: tiles overlap by a halo of `h` pixels, each
//! tile is simulated in full, and only the interior `(T - 2h)²` core of each
//! simulated tile is written to the stitched result.
//!
//! [`TileGrid`] owns the index arithmetic: it partitions the chip into
//! disjoint *owned* regions (one per tile, covering the chip exactly) and
//! assigns every tile a `T × T` *window* centred on its owned region. Windows
//! may extend past the chip edge; the out-of-chip region is dark (mask = 0),
//! which matches the physical situation of an isolated layout on an opaque
//! reticle.

use litho_math::RealMatrix;

/// Geometry of a guard-band tiling: tile edge and halo width in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilingConfig {
    /// Tile edge length in pixels (the simulator's training-tile size).
    pub tile_px: usize,
    /// Guard-band width in pixels discarded on every tile side.
    pub halo_px: usize,
}

impl TilingConfig {
    /// Creates a tiling configuration.
    ///
    /// # Panics
    ///
    /// Panics if the tile is empty or the halo leaves no tile core
    /// (`2·halo >= tile`).
    pub fn new(tile_px: usize, halo_px: usize) -> Self {
        assert!(tile_px > 0, "tile size must be positive");
        assert!(
            2 * halo_px < tile_px,
            "halo {halo_px} px leaves no core in a {tile_px} px tile"
        );
        Self { tile_px, halo_px }
    }

    /// Tile core edge length: the pixels of each tile that survive stitching.
    pub fn core_px(&self) -> usize {
        self.tile_px - 2 * self.halo_px
    }
}

/// One tile of a [`TileGrid`]: its window on the chip and the owned region it
/// contributes to the stitched output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Flat tile index in row-major grid order.
    pub index: usize,
    /// Grid position `(tile_row, tile_col)`.
    pub grid: (usize, usize),
    /// Top-left corner of the tile window in chip coordinates (may be
    /// negative: windows of boundary tiles extend into the dark field).
    pub window_origin: (i64, i64),
    /// Owned region in chip coordinates: `[row0, row1) × [col0, col1)`.
    /// Owned regions of all tiles partition the chip exactly.
    pub owned_rows: (usize, usize),
    /// Owned column range `[col0, col1)`.
    pub owned_cols: (usize, usize),
}

impl Tile {
    /// Owned-region height in pixels.
    pub fn owned_height(&self) -> usize {
        self.owned_rows.1 - self.owned_rows.0
    }

    /// Owned-region width in pixels.
    pub fn owned_width(&self) -> usize {
        self.owned_cols.1 - self.owned_cols.0
    }
}

/// A guard-band decomposition of a `rows × cols` chip.
#[derive(Debug, Clone)]
pub struct TileGrid {
    config: TilingConfig,
    chip_rows: usize,
    chip_cols: usize,
    tiles_y: usize,
    tiles_x: usize,
}

impl TileGrid {
    /// Plans the tiling of a `chip_rows × chip_cols` mask.
    ///
    /// # Panics
    ///
    /// Panics if either chip dimension is zero.
    pub fn new(config: TilingConfig, chip_rows: usize, chip_cols: usize) -> Self {
        assert!(
            chip_rows > 0 && chip_cols > 0,
            "chip dimensions must be non-zero"
        );
        let core = config.core_px();
        Self {
            config,
            chip_rows,
            chip_cols,
            tiles_y: chip_rows.div_ceil(core),
            tiles_x: chip_cols.div_ceil(core),
        }
    }

    /// The tiling configuration.
    pub fn config(&self) -> TilingConfig {
        self.config
    }

    /// Chip dimensions `(rows, cols)` in pixels.
    pub fn chip_shape(&self) -> (usize, usize) {
        (self.chip_rows, self.chip_cols)
    }

    /// Grid dimensions `(tiles_y, tiles_x)`.
    pub fn grid_shape(&self) -> (usize, usize) {
        (self.tiles_y, self.tiles_x)
    }

    /// Total number of tiles.
    pub fn len(&self) -> usize {
        self.tiles_y * self.tiles_x
    }

    /// `true` when the grid holds no tiles (never: chips are non-empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The tile at flat index `index` (row-major grid order).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn tile(&self, index: usize) -> Tile {
        assert!(index < self.len(), "tile index out of range");
        let ty = index / self.tiles_x;
        let tx = index % self.tiles_x;
        let core = self.config.core_px() as i64;
        let halo = self.config.halo_px as i64;
        let row0 = ty as i64 * core;
        let col0 = tx as i64 * core;
        Tile {
            index,
            grid: (ty, tx),
            window_origin: (row0 - halo, col0 - halo),
            owned_rows: (row0 as usize, ((row0 + core) as usize).min(self.chip_rows)),
            owned_cols: (col0 as usize, ((col0 + core) as usize).min(self.chip_cols)),
        }
    }

    /// Iterates over all tiles in row-major grid order.
    pub fn tiles(&self) -> impl Iterator<Item = Tile> + '_ {
        (0..self.len()).map(|i| self.tile(i))
    }

    /// Extracts the `tile_px × tile_px` mask window of a tile from the chip,
    /// zero-padding where the window extends past the chip (dark field).
    pub fn extract_window(&self, chip: &RealMatrix, tile: &Tile) -> RealMatrix {
        debug_assert_eq!(chip.shape(), (self.chip_rows, self.chip_cols));
        let t = self.config.tile_px;
        let (or, oc) = tile.window_origin;
        RealMatrix::from_fn(t, t, |i, j| {
            let r = or + i as i64;
            let c = oc + j as i64;
            if r < 0 || c < 0 || r >= self.chip_rows as i64 || c >= self.chip_cols as i64 {
                0.0
            } else {
                chip[(r as usize, c as usize)]
            }
        })
    }

    /// Copies the owned region of a simulated tile image into the stitched
    /// chip-sized output. `tile_image` must be `tile_px × tile_px`.
    ///
    /// # Panics
    ///
    /// Panics if the tile image has the wrong shape.
    pub fn stitch_owned(&self, out: &mut RealMatrix, tile: &Tile, tile_image: &RealMatrix) {
        assert_eq!(
            tile_image.shape(),
            (self.config.tile_px, self.config.tile_px),
            "tile image does not match the tile size"
        );
        let (or, oc) = tile.window_origin;
        for r in tile.owned_rows.0..tile.owned_rows.1 {
            for c in tile.owned_cols.0..tile.owned_cols.1 {
                let ti = (r as i64 - or) as usize;
                let tj = (c as i64 - oc) as usize;
                out[(r, c)] = tile_image[(ti, tj)];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_reports_core() {
        let c = TilingConfig::new(64, 16);
        assert_eq!(c.core_px(), 32);
        assert_eq!(TilingConfig::new(64, 0).core_px(), 64);
    }

    #[test]
    #[should_panic(expected = "leaves no core")]
    fn oversized_halo_panics() {
        let _ = TilingConfig::new(64, 32);
    }

    #[test]
    fn owned_regions_partition_the_chip() {
        for (rows, cols, halo) in [(96, 96, 16), (100, 70, 10), (64, 64, 16), (30, 200, 8)] {
            let grid = TileGrid::new(TilingConfig::new(64, halo), rows, cols);
            let mut covered = RealMatrix::zeros(rows, cols);
            for tile in grid.tiles() {
                for r in tile.owned_rows.0..tile.owned_rows.1 {
                    for c in tile.owned_cols.0..tile.owned_cols.1 {
                        covered[(r, c)] += 1.0;
                    }
                }
            }
            assert!(
                covered.iter().all(|&v| v == 1.0),
                "{rows}x{cols} halo {halo}: owned regions must tile the chip exactly"
            );
        }
    }

    #[test]
    fn grid_shape_matches_core_stride() {
        let grid = TileGrid::new(TilingConfig::new(64, 16), 96, 96);
        assert_eq!(grid.grid_shape(), (3, 3));
        assert_eq!(grid.len(), 9);
        assert!(!grid.is_empty());
        // 4x the tile area stitches from a 2x2 core grid at halo 0.
        let grid = TileGrid::new(TilingConfig::new(64, 0), 128, 128);
        assert_eq!(grid.grid_shape(), (2, 2));
    }

    #[test]
    fn chip_smaller_than_tile_uses_one_padded_tile() {
        let grid = TileGrid::new(TilingConfig::new(64, 16), 20, 20);
        assert_eq!(grid.len(), 1);
        let tile = grid.tile(0);
        assert_eq!(tile.window_origin, (-16, -16));
        assert_eq!(tile.owned_rows, (0, 20));
        let chip = RealMatrix::filled(20, 20, 1.0);
        let window = grid.extract_window(&chip, &tile);
        assert_eq!(window.shape(), (64, 64));
        // Pixels inside the chip are copied, the dark field is zero.
        assert_eq!(window[(16, 16)], 1.0);
        assert_eq!(window[(0, 0)], 0.0);
        assert_eq!(window[(63, 63)], 0.0);
        assert_eq!(window.sum() as usize, 400);
    }

    #[test]
    fn extract_and_stitch_roundtrip_identity() {
        // Simulating with the identity map must reproduce the chip exactly:
        // every owned pixel comes from inside its tile's window.
        let rows = 90;
        let cols = 130;
        let chip = RealMatrix::from_fn(rows, cols, |i, j| (i * 1000 + j) as f64);
        let grid = TileGrid::new(TilingConfig::new(64, 12), rows, cols);
        let mut out = RealMatrix::zeros(rows, cols);
        for tile in grid.tiles() {
            let window = grid.extract_window(&chip, &tile);
            grid.stitch_owned(&mut out, &tile, &window);
        }
        assert_eq!(out, chip);
    }

    #[test]
    fn tile_indexing_is_row_major() {
        let grid = TileGrid::new(TilingConfig::new(64, 16), 96, 96);
        let tile = grid.tile(5);
        assert_eq!(tile.grid, (1, 2));
        assert_eq!(tile.index, 5);
        assert_eq!(tile.owned_rows, (32, 64));
        assert_eq!(tile.owned_cols, (64, 96));
        assert_eq!(tile.owned_height(), 32);
        assert_eq!(tile.owned_width(), 32);
    }
}
