//! Shared load-generation client: N closed-loop clients firing a request
//! mix at a server, reporting throughput and latency percentiles.
//!
//! One implementation serves three consumers — `benches/serve.rs` (the
//! batched-vs-threaded comparison in `BENCH_serve.json`), the
//! `serve_load` example the CI `serve-load-smoke` job drives against a live
//! `nitho-serve`, and the concurrency integration tests — so they all agree
//! on what "throughput at concurrency N" means.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::http::http_request;
use crate::queue::LatencyHistogram;

/// One request shape in the load mix.
#[derive(Debug, Clone)]
pub struct RequestSpec {
    /// HTTP method (`GET`, `POST`, …).
    pub method: String,
    /// Request path.
    pub path: String,
    /// Optional request body.
    pub body: Option<String>,
}

impl RequestSpec {
    /// A `POST` spec with a JSON body.
    pub fn post(path: &str, body: &str) -> Self {
        Self {
            method: "POST".to_owned(),
            path: path.to_owned(),
            body: Some(body.to_owned()),
        }
    }

    /// A bodyless `GET` spec.
    pub fn get(path: &str) -> Self {
        Self {
            method: "GET".to_owned(),
            path: path.to_owned(),
            body: None,
        }
    }
}

/// Outcome of one [`drive`] run.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests attempted.
    pub total: usize,
    /// `2xx` responses.
    pub ok: usize,
    /// `503` responses (load shed / deadline — the intentional failures).
    pub shed: usize,
    /// Transport errors and any other status (the *unintentional* failures).
    pub failed: usize,
    /// Wall-clock time for the whole run.
    pub elapsed: Duration,
    /// Per-request latency distribution (successful requests only).
    pub latency: LatencyHistogram,
}

impl LoadReport {
    /// Completed-request throughput in requests/second.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.ok as f64 / secs
    }

    /// Median latency (bucketed upper bound, ms).
    pub fn p50_ms(&self) -> u64 {
        self.latency.quantile_ms(0.50)
    }

    /// 95th-percentile latency (bucketed upper bound, ms).
    pub fn p95_ms(&self) -> u64 {
        self.latency.quantile_ms(0.95)
    }

    /// 99th-percentile latency (bucketed upper bound, ms).
    pub fn p99_ms(&self) -> u64 {
        self.latency.quantile_ms(0.99)
    }
}

/// Fires `total` requests at `addr` from `concurrency` closed-loop clients.
///
/// Clients claim request indices from a shared counter and send
/// `specs[index % specs.len()]`, so a mixed spec list interleaves endpoint
/// types across clients deterministically by index (arrival *order* at the
/// server still races — that is the point of the byte-identity tests built
/// on top of this).
///
/// # Panics
///
/// Panics if `specs` is empty or `concurrency` is zero.
pub fn drive(
    addr: SocketAddr,
    concurrency: usize,
    total: usize,
    specs: &[RequestSpec],
) -> LoadReport {
    assert!(!specs.is_empty(), "need at least one request spec");
    assert!(concurrency > 0, "need at least one client");
    let next = AtomicUsize::new(0);
    let latency = LatencyHistogram::new();
    let ok = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..concurrency {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= total {
                    break;
                }
                let spec = &specs[index % specs.len()];
                let sent = Instant::now();
                match http_request(addr, &spec.method, &spec.path, spec.body.as_deref()) {
                    Ok((status, _)) if (200..300).contains(&status) => {
                        latency.record(sent.elapsed().as_millis() as u64);
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok((503, _)) => {
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(_) | Err(_) => {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    LoadReport {
        total,
        ok: ok.into_inner(),
        shed: shed.into_inner(),
        failed: failed.into_inner(),
        elapsed: started.elapsed(),
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{HttpServer, Response};

    #[test]
    fn drive_counts_statuses_and_latency() {
        let server = HttpServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || {
            server.serve(|request| match request.path.as_str() {
                "/ok" => Response::text(200, "fine"),
                "/shed" => Response::text(503, "busy"),
                _ => Response::text(404, "nope"),
            })
        });
        let specs = [
            RequestSpec::get("/ok"),
            RequestSpec::post("/shed", "{}"),
            RequestSpec::get("/missing"),
        ];
        let report = drive(addr, 3, 9, &specs);
        assert_eq!(report.total, 9);
        assert_eq!(report.ok, 3);
        assert_eq!(report.shed, 3);
        assert_eq!(report.failed, 3);
        assert_eq!(report.latency.count(), 3);
        assert!(report.throughput_rps() > 0.0);
        assert!(report.p50_ms() <= report.p95_ms());
        assert!(report.p95_ms() <= report.p99_ms());
        handle.shutdown();
        join.join().expect("server");
    }
}
