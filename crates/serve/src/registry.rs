//! Named model registry backing the inference service.
//!
//! A [`ModelRegistry`] maps model names to ready-to-serve
//! [`TileSimulator`]s. Nitho entries can be restored from versioned
//! `NITHOCKPT` checkpoints at startup (see `nitho::NithoModel`'s checkpoint
//! format): [`ModelRegistry::register_nitho_checkpointed`] loads a matching
//! checkpoint when one exists, otherwise trains the model and saves a fresh
//! checkpoint so the next startup is instant.

use std::io;
use std::path::{Path, PathBuf};

use litho_optics::HopkinsSimulator;
use nitho::{checkpoint_info, NithoConfig, NithoModel};

use crate::chip::TileSimulator;

/// Serving metadata for one registered model.
#[derive(Debug, Clone)]
pub struct ModelInfo {
    /// Registry name (the `model` field of a simulate request).
    pub name: String,
    /// Engine kind: `"nitho"` (regressed kernels) or `"hopkins"` (rigorous).
    pub kind: String,
    /// Tile edge length in pixels.
    pub tile_px: usize,
    /// Default guard-band width in pixels.
    pub halo_px: usize,
    /// Resist development threshold.
    pub resist_threshold: f64,
    /// Checkpoint file backing this model, when one exists.
    pub checkpoint: Option<PathBuf>,
    /// Checkpoint format version (0 = not checkpoint-backed or legacy file).
    pub checkpoint_version: u32,
}

/// A name → simulator map with serving metadata.
#[derive(Default)]
pub struct ModelRegistry {
    entries: Vec<(ModelInfo, Box<dyn TileSimulator>)>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no models are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registers a simulator under a name, deriving the serving metadata.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn register(&mut self, name: &str, kind: &str, simulator: Box<dyn TileSimulator>) {
        self.register_with_checkpoint(name, kind, simulator, None, 0);
    }

    fn register_with_checkpoint(
        &mut self,
        name: &str,
        kind: &str,
        simulator: Box<dyn TileSimulator>,
        checkpoint: Option<PathBuf>,
        checkpoint_version: u32,
    ) {
        assert!(
            self.get(name).is_none(),
            "model name {name:?} is already registered"
        );
        let info = ModelInfo {
            name: name.to_owned(),
            kind: kind.to_owned(),
            tile_px: simulator.tile_px(),
            halo_px: simulator.default_halo_px(),
            resist_threshold: simulator.resist_threshold(),
            checkpoint,
            checkpoint_version,
        };
        self.entries.push((info, simulator));
    }

    /// Registers a rigorous Hopkins reference engine.
    pub fn register_hopkins(&mut self, name: &str, simulator: HopkinsSimulator) {
        self.register(name, "hopkins", Box::new(simulator));
    }

    /// Registers a trained Nitho model.
    pub fn register_nitho(&mut self, name: &str, model: NithoModel) {
        self.register(name, "nitho", Box::new(model));
    }

    /// Registers a Nitho model backed by `<dir>/<name>.ckpt`.
    ///
    /// When a checkpoint with a matching config fingerprint exists it is
    /// loaded (no training); otherwise `train` is invoked on the fresh model
    /// and the result is saved for the next startup. The checkpoint version
    /// served is recorded in the model metadata.
    ///
    /// # Errors
    ///
    /// Returns checkpoint I/O errors; a fingerprint mismatch falls back to
    /// retraining (the stale checkpoint is overwritten), so version upgrades
    /// are self-healing.
    pub fn register_nitho_checkpointed(
        &mut self,
        name: &str,
        config: NithoConfig,
        optics: &litho_optics::OpticalConfig,
        dir: &Path,
        train: impl FnOnce(&mut NithoModel),
    ) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.ckpt"));
        let mut model = NithoModel::new(config.clone(), optics);
        let mut loaded = false;
        if path.exists() {
            match model.load_parameters(&path) {
                Ok(()) => loaded = true,
                // A mismatched fingerprint (InvalidData) or a file truncated
                // mid-write (UnexpectedEof) both mean "this checkpoint is
                // unusable": retrain and overwrite rather than refusing to
                // start until an operator deletes the file.
                Err(err)
                    if matches!(
                        err.kind(),
                        io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                    ) =>
                {
                    eprintln!(
                        "nitho-serve: checkpoint {} is unusable for the configured model \
                         ({err}); retraining",
                        path.display()
                    );
                    // The failed load may have touched the weights; start over
                    // from a deterministic fresh initialization.
                    model = NithoModel::new(config.clone(), optics);
                }
                Err(err) => return Err(err),
            }
        }
        if !loaded {
            train(&mut model);
            model.save_parameters(&path)?;
        }
        let version = checkpoint_info(&path)?.version;
        self.register_with_checkpoint(name, "nitho", Box::new(model), Some(path), version);
        Ok(())
    }

    /// Looks a model up by name.
    pub fn get(&self, name: &str) -> Option<(&ModelInfo, &dyn TileSimulator)> {
        self.entries
            .iter()
            .find(|(info, _)| info.name == name)
            .map(|(info, sim)| (info, sim.as_ref()))
    }

    /// The default model: the first registered entry.
    pub fn default_model(&self) -> Option<(&ModelInfo, &dyn TileSimulator)> {
        self.entries.first().map(|(info, sim)| (info, sim.as_ref()))
    }

    /// Iterates over the registered model metadata in registration order.
    pub fn models(&self) -> impl Iterator<Item = &ModelInfo> {
        self.entries.iter().map(|(info, _)| info)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_optics::OpticalConfig;

    fn fast_optics() -> OpticalConfig {
        OpticalConfig::builder()
            .tile_px(64)
            .pixel_nm(8.0)
            .kernel_count(6)
            .build()
    }

    fn fast_config() -> NithoConfig {
        NithoConfig {
            kernel_side: Some(9),
            ..NithoConfig::fast()
        }
    }

    #[test]
    fn register_and_lookup() {
        let optics = fast_optics();
        let mut registry = ModelRegistry::new();
        assert!(registry.is_empty());
        registry.register_hopkins("hopkins", HopkinsSimulator::new(&optics));
        let mut model = NithoModel::new(fast_config(), &optics);
        model.refresh_kernels();
        registry.register_nitho("nitho", model);

        assert_eq!(registry.len(), 2);
        let (info, sim) = registry.get("hopkins").expect("hopkins registered");
        assert_eq!(info.kind, "hopkins");
        assert_eq!(info.tile_px, 64);
        assert_eq!(sim.tile_px(), 64);
        assert!(info.checkpoint.is_none());
        assert_eq!(registry.default_model().expect("default").0.name, "hopkins");
        assert!(registry.get("missing").is_none());
        let names: Vec<&str> = registry.models().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["hopkins", "nitho"]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_name_panics() {
        let optics = fast_optics();
        let mut registry = ModelRegistry::new();
        registry.register_hopkins("m", HopkinsSimulator::new(&optics));
        registry.register_hopkins("m", HopkinsSimulator::new(&optics));
    }

    #[test]
    fn checkpointed_registration_trains_once_then_loads() {
        let optics = fast_optics();
        let dir = std::env::temp_dir().join("nitho_registry_ckpt_test");
        std::fs::remove_dir_all(&dir).ok();

        let mut trained = 0usize;
        let mut registry = ModelRegistry::new();
        registry
            .register_nitho_checkpointed("served", fast_config(), &optics, &dir, |model| {
                trained += 1;
                model.refresh_kernels();
            })
            .expect("first registration");
        assert_eq!(trained, 1);
        let version = registry.get("served").expect("entry").0.checkpoint_version;
        assert!(version >= 1);

        // Second startup: the checkpoint exists and matches, so the train
        // closure must not run.
        let mut registry = ModelRegistry::new();
        registry
            .register_nitho_checkpointed("served", fast_config(), &optics, &dir, |_| {
                panic!("checkpoint should satisfy the second startup")
            })
            .expect("second registration");
        let (info, sim) = registry.get("served").expect("entry");
        assert_eq!(info.checkpoint_version, version);
        assert!(info.checkpoint.as_ref().expect("path").exists());
        // The restored model serves predictions.
        let aerial = sim.simulate_tile(&litho_math::RealMatrix::zeros(64, 64));
        assert_eq!(aerial.shape(), (64, 64));

        // A config change invalidates the checkpoint; registration retrains
        // instead of serving mismatched weights.
        let other_optics = OpticalConfig {
            pixel_nm: 4.0,
            ..fast_optics()
        };
        let mut retrained = false;
        let mut registry = ModelRegistry::new();
        registry
            .register_nitho_checkpointed("served", fast_config(), &other_optics, &dir, |model| {
                retrained = true;
                model.refresh_kernels();
            })
            .expect("mismatch registration");
        assert!(retrained, "stale checkpoint must trigger retraining");

        std::fs::remove_dir_all(&dir).ok();
    }
}
