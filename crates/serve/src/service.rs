//! The inference service: JSON wire protocol over the HTTP layer.
//!
//! Routes (see DESIGN.md §5 for the full protocol):
//!
//! * `GET /healthz` — liveness, model count.
//! * `GET /v1/models` — registered models with serving metadata.
//! * `POST /v1/simulate` — full-chip simulation: mask in (rectangles or raw
//!   pixels), stitched aerial/resist out.
//!
//! The service itself is transport-free (`handle` maps requests to
//! responses); `nitho-serve` wires it to an [`HttpServer`](crate::http) and
//! adds the admin `POST /v1/shutdown` route.

use std::time::Instant;

use litho_masks::ChipLayout;
use litho_masks::Rect;
use litho_math::RealMatrix;

use crate::chip::ChipPipeline;
use crate::http::{Request, Response};
use crate::json::Json;
use crate::registry::ModelRegistry;

/// Largest accepted chip, in pixels (a 4096 × 4096 layout).
const MAX_CHIP_PIXELS: usize = 4096 * 4096;

/// The HTTP-facing inference service over a [`ModelRegistry`].
pub struct Service {
    registry: ModelRegistry,
}

/// A protocol error: HTTP status plus a message for the error body.
struct ServiceError {
    status: u16,
    message: String,
}

impl ServiceError {
    fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    fn not_found(message: impl Into<String>) -> Self {
        Self {
            status: 404,
            message: message.into(),
        }
    }
}

impl Service {
    /// Wraps a registry (which should not be empty — an empty registry can
    /// only serve `/healthz` and an empty model list).
    pub fn new(registry: ModelRegistry) -> Self {
        Self { registry }
    }

    /// The wrapped registry.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Dispatches one request to its route.
    pub fn handle(&self, request: &Request) -> Response {
        let result = match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => Ok(self.healthz()),
            ("GET", "/v1/models") => Ok(self.models()),
            ("POST", "/v1/simulate") => self.simulate(request),
            (_, "/healthz" | "/v1/models" | "/v1/simulate") => Err(ServiceError {
                status: 405,
                message: "method not allowed".to_owned(),
            }),
            _ => Err(ServiceError::not_found("no such route")),
        };
        match result {
            Ok(response) => response,
            Err(err) => Response::json(
                err.status,
                Json::object(vec![("error", Json::String(err.message))]).to_string(),
            ),
        }
    }

    fn healthz(&self) -> Response {
        Response::json(
            200,
            Json::object(vec![
                ("status", Json::string("ok")),
                ("models", Json::Number(self.registry.len() as f64)),
            ])
            .to_string(),
        )
    }

    fn models(&self) -> Response {
        let models: Vec<Json> = self
            .registry
            .models()
            .map(|info| {
                Json::object(vec![
                    ("name", Json::string(&info.name)),
                    ("kind", Json::string(&info.kind)),
                    ("tile_px", Json::Number(info.tile_px as f64)),
                    ("halo_px", Json::Number(info.halo_px as f64)),
                    ("resist_threshold", Json::Number(info.resist_threshold)),
                    (
                        "checkpoint",
                        match &info.checkpoint {
                            Some(path) => Json::string(&path.display().to_string()),
                            None => Json::Null,
                        },
                    ),
                    (
                        "checkpoint_version",
                        Json::Number(info.checkpoint_version as f64),
                    ),
                ])
            })
            .collect();
        Response::json(
            200,
            Json::object(vec![("models", Json::Array(models))]).to_string(),
        )
    }

    fn simulate(&self, request: &Request) -> Result<Response, ServiceError> {
        let started = Instant::now();
        let text = request
            .body_text()
            .ok_or_else(|| ServiceError::bad_request("body is not UTF-8"))?;
        let doc = Json::parse(text)
            .map_err(|err| ServiceError::bad_request(format!("invalid JSON: {err}")))?;

        let (info, simulator) = match doc.get("model") {
            Some(value) => {
                let name = value
                    .as_str()
                    .ok_or_else(|| ServiceError::bad_request("\"model\" must be a string"))?;
                self.registry
                    .get(name)
                    .ok_or_else(|| ServiceError::not_found(format!("unknown model {name:?}")))?
            }
            None => self
                .registry
                .default_model()
                .ok_or_else(|| ServiceError::not_found("no models registered"))?,
        };

        let mask = parse_mask(&doc)?;
        let pipeline = match doc.get("halo_px") {
            Some(value) => {
                let halo = value
                    .as_usize()
                    .ok_or_else(|| ServiceError::bad_request("\"halo_px\" must be an integer"))?;
                if 2 * halo >= info.tile_px {
                    return Err(ServiceError::bad_request(format!(
                        "halo_px {halo} leaves no core in a {} px tile",
                        info.tile_px
                    )));
                }
                ChipPipeline::with_halo(simulator, halo)
            }
            None => ChipPipeline::new(simulator),
        };

        let (want_aerial, want_resist) = parse_outputs(&doc)?;
        let result = pipeline.simulate(&mask);
        let crate::chip::ChipResult {
            aerial,
            resist,
            tiles,
            grid,
            halo_px,
        } = result;

        let mut fields = vec![
            ("model", Json::string(&info.name)),
            ("rows", Json::Number(mask.rows() as f64)),
            ("cols", Json::Number(mask.cols() as f64)),
            ("tiles", Json::Number(tiles as f64)),
            (
                "grid",
                Json::NumberArray(vec![grid.0 as f64, grid.1 as f64]),
            ),
            ("halo_px", Json::Number(halo_px as f64)),
            (
                "elapsed_ms",
                Json::Number(started.elapsed().as_secs_f64() * 1e3),
            ),
        ];
        // The images are moved, not cloned, into the response value — a
        // full-chip aerial is tens of megabytes.
        if want_aerial {
            fields.push(("aerial", Json::NumberArray(aerial.into_vec())));
        }
        if want_resist {
            fields.push(("resist", Json::NumberArray(resist.into_vec())));
        }
        Ok(Response::json(200, Json::object(fields).to_string()))
    }
}

fn parse_outputs(doc: &Json) -> Result<(bool, bool), ServiceError> {
    match doc.get("outputs") {
        None => Ok((true, true)),
        Some(value) => {
            let items = value
                .as_array()
                .ok_or_else(|| ServiceError::bad_request("\"outputs\" must be an array"))?;
            let mut aerial = false;
            let mut resist = false;
            for item in items {
                match item.as_str() {
                    Some("aerial") => aerial = true,
                    Some("resist") => resist = true,
                    _ => {
                        return Err(ServiceError::bad_request(
                            "\"outputs\" entries must be \"aerial\" or \"resist\"",
                        ))
                    }
                }
            }
            if !aerial && !resist {
                return Err(ServiceError::bad_request("\"outputs\" selects nothing"));
            }
            Ok((aerial, resist))
        }
    }
}

/// Decodes the `mask` member: `rows`/`cols` plus either `rects`
/// (`[x0, y0, x1, y1]` corner quadruples, half-open, clipped to the chip) or
/// `pixels` (row-major values in `[0, 1]`).
fn parse_mask(doc: &Json) -> Result<RealMatrix, ServiceError> {
    let mask = doc
        .get("mask")
        .ok_or_else(|| ServiceError::bad_request("missing \"mask\""))?;
    let rows = mask
        .get("rows")
        .and_then(Json::as_usize)
        .ok_or_else(|| ServiceError::bad_request("\"mask.rows\" must be a positive integer"))?;
    let cols = mask
        .get("cols")
        .and_then(Json::as_usize)
        .ok_or_else(|| ServiceError::bad_request("\"mask.cols\" must be a positive integer"))?;
    if rows == 0 || cols == 0 {
        return Err(ServiceError::bad_request(
            "mask dimensions must be non-zero",
        ));
    }
    if rows.saturating_mul(cols) > MAX_CHIP_PIXELS {
        return Err(ServiceError::bad_request(format!(
            "mask {rows}x{cols} exceeds the {MAX_CHIP_PIXELS}-pixel limit"
        )));
    }

    match (mask.get("rects"), mask.get("pixels")) {
        (Some(rects), None) => {
            let rects = rects
                .as_array()
                .ok_or_else(|| ServiceError::bad_request("\"mask.rects\" must be an array"))?;
            let mut layout = ChipLayout::new(rows, cols);
            for (idx, rect) in rects.iter().enumerate() {
                let quad = rect.to_numbers().filter(|q| q.len() == 4).ok_or_else(|| {
                    ServiceError::bad_request(format!(
                        "rect {idx} must be a [x0, y0, x1, y1] quadruple"
                    ))
                })?;
                let mut corner = [0i64; 4];
                for (slot, &n) in corner.iter_mut().zip(&quad) {
                    if n.fract() != 0.0 || n.abs() > 1e9 {
                        return Err(ServiceError::bad_request(format!(
                            "rect {idx} corners must be integers"
                        )));
                    }
                    *slot = n as i64;
                }
                let [x0, y0, x1, y1] = corner;
                if x1 <= x0 || y1 <= y0 {
                    return Err(ServiceError::bad_request(format!(
                        "rect {idx} must have positive extent"
                    )));
                }
                layout.push(Rect::new(x0, y0, x1, y1));
            }
            Ok(layout.rasterize())
        }
        (None, Some(pixels)) => {
            // The parser stores all-numeric arrays flat, so a chip-sized
            // pixel payload is validated in place with no per-pixel boxing.
            let values: &[f64] = match pixels {
                Json::NumberArray(values) => values,
                Json::Array(items) if items.is_empty() => &[],
                _ => {
                    return Err(ServiceError::bad_request(
                        "\"mask.pixels\" must be a flat numeric array",
                    ))
                }
            };
            if values.len() != rows * cols {
                return Err(ServiceError::bad_request(format!(
                    "\"mask.pixels\" has {} values, expected {}",
                    values.len(),
                    rows * cols
                )));
            }
            if !values.iter().all(|v| (0.0..=1.0).contains(v)) {
                return Err(ServiceError::bad_request(
                    "\"mask.pixels\" values must lie in [0, 1]",
                ));
            }
            Ok(RealMatrix::from_vec(rows, cols, values.to_vec()))
        }
        _ => Err(ServiceError::bad_request(
            "\"mask\" needs exactly one of \"rects\" or \"pixels\"",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_optics::{HopkinsSimulator, OpticalConfig};

    fn service() -> Service {
        let optics = OpticalConfig::builder()
            .tile_px(64)
            .pixel_nm(8.0)
            .kernel_count(6)
            .build();
        let mut registry = ModelRegistry::new();
        registry.register_hopkins("hopkins", HopkinsSimulator::new(&optics));
        Service::new(registry)
    }

    fn request(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.to_owned(),
            path: path.to_owned(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn parse_body(response: &Response) -> Json {
        Json::parse(std::str::from_utf8(&response.body).expect("UTF-8 body")).expect("JSON body")
    }

    #[test]
    fn healthz_reports_models() {
        let service = service();
        let response = service.handle(&request("GET", "/healthz", ""));
        assert_eq!(response.status, 200);
        let doc = parse_body(&response);
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(doc.get("models").and_then(Json::as_usize), Some(1));
    }

    #[test]
    fn models_lists_metadata() {
        let service = service();
        let response = service.handle(&request("GET", "/v1/models", ""));
        assert_eq!(response.status, 200);
        let doc = parse_body(&response);
        let models = doc.get("models").and_then(Json::as_array).expect("array");
        assert_eq!(models.len(), 1);
        assert_eq!(
            models[0].get("name").and_then(Json::as_str),
            Some("hopkins")
        );
        assert_eq!(models[0].get("tile_px").and_then(Json::as_usize), Some(64));
        assert_eq!(models[0].get("checkpoint"), Some(&Json::Null));
    }

    #[test]
    fn simulate_rect_mask_roundtrip() {
        let service = service();
        let body = r#"{
            "model": "hopkins",
            "mask": {"rows": 96, "cols": 96, "rects": [[16, 16, 80, 40], [40, 56, 56, 88]]},
            "halo_px": 16
        }"#;
        let response = service.handle(&request("POST", "/v1/simulate", body));
        assert_eq!(
            response.status,
            200,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
        let doc = parse_body(&response);
        assert_eq!(doc.get("rows").and_then(Json::as_usize), Some(96));
        assert_eq!(doc.get("tiles").and_then(Json::as_usize), Some(9));
        assert_eq!(doc.get("halo_px").and_then(Json::as_usize), Some(16));
        let aerial = doc
            .get("aerial")
            .and_then(Json::as_number_slice)
            .expect("aerial");
        assert_eq!(aerial.len(), 96 * 96);
        assert!(aerial.iter().all(|v| v.is_finite()));
        let resist = doc
            .get("resist")
            .and_then(Json::as_number_slice)
            .expect("resist");
        assert!(resist.iter().all(|&v| v == 0.0 || v == 1.0));
        // Geometry prints: the resist is neither empty nor full.
        let printed: f64 = resist.iter().sum();
        assert!(printed > 0.0 && printed < (96 * 96) as f64);
    }

    #[test]
    fn simulate_pixels_mask_and_output_selection() {
        let service = service();
        let mut pixels = vec!["0"; 48 * 48];
        for r in 16..32 {
            for c in 8..40 {
                pixels[r * 48 + c] = "1";
            }
        }
        let body = format!(
            r#"{{"mask": {{"rows": 48, "cols": 48, "pixels": [{}]}}, "outputs": ["resist"]}}"#,
            pixels.join(",")
        );
        let response = service.handle(&request("POST", "/v1/simulate", &body));
        assert_eq!(response.status, 200);
        let doc = parse_body(&response);
        assert!(doc.get("aerial").is_none(), "aerial was not requested");
        assert_eq!(
            doc.get("resist")
                .and_then(Json::as_number_slice)
                .map(|a| a.len()),
            Some(48 * 48)
        );
    }

    #[test]
    fn protocol_errors_are_4xx() {
        let service = service();
        let cases = [
            ("POST", "/v1/simulate", "not json", 400),
            ("POST", "/v1/simulate", "{}", 400),
            (
                "POST",
                "/v1/simulate",
                r#"{"model":"missing","mask":{"rows":64,"cols":64,"rects":[[0,0,8,8]]}}"#,
                404,
            ),
            (
                "POST",
                "/v1/simulate",
                r#"{"mask":{"rows":64,"cols":64,"rects":[[0,0,8,8]],"pixels":[0]}}"#,
                400,
            ),
            (
                "POST",
                "/v1/simulate",
                r#"{"mask":{"rows":64,"cols":64,"rects":[[8,8,0,0]]}}"#,
                400,
            ),
            (
                "POST",
                "/v1/simulate",
                r#"{"halo_px":32,"mask":{"rows":64,"cols":64,"rects":[[0,0,8,8]]}}"#,
                400,
            ),
            (
                "POST",
                "/v1/simulate",
                r#"{"mask":{"rows":99999,"cols":99999,"rects":[[0,0,8,8]]}}"#,
                400,
            ),
            ("GET", "/v1/nothing", "", 404),
            ("DELETE", "/healthz", "", 405),
        ];
        for (method, path, body, expected) in cases {
            let response = service.handle(&request(method, path, body));
            assert_eq!(
                response.status,
                expected,
                "{method} {path} {body}: {}",
                String::from_utf8_lossy(&response.body)
            );
            assert!(parse_body(&response).get("error").is_some());
        }
    }
}
