//! The inference service: JSON wire protocol over the HTTP layer.
//!
//! Routes (see DESIGN.md §5–§6 for the full protocol):
//!
//! * `GET /healthz` — liveness, model count, serving metrics, engine totals.
//! * `GET /metrics` — every registered `litho_obs` metric in Prometheus text
//!   exposition format (observability only, never part of the `/v1/*`
//!   byte-identity contract; see DESIGN.md §11).
//! * `GET /v1/models` — registered models with serving metadata.
//! * `POST /v1/simulate` — full-chip simulation: mask in (rectangles or raw
//!   pixels), stitched aerial/resist out.
//! * `POST /v1/process_window` — a focus × dose matrix of full-chip
//!   simulations with per-condition CD/EPE metrology and the PVB summary.
//! * `POST /v1/jobs`, `GET /v1/jobs/<id>[/result]` — the async sharded job
//!   layer: submit a reticle-scale layout, poll status, fetch the stitched
//!   result (see [`crate::jobs`] and DESIGN.md §13).
//! * `POST /v1/shard` — the internal worker protocol (one contiguous run of
//!   tiles in, owned-region aerial values out).
//!
//! The service itself is transport-free (`handle` maps requests to
//! responses); `nitho-serve` wires it to an [`HttpServer`](crate::http) and
//! adds the admin `POST /v1/shutdown` route.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use litho_math::RealMatrix;
use litho_metrics::metrology::{self, Cutline, StreamingPvb};
use litho_optics::ProcessCondition;

use crate::chip::{ChipPipeline, ChipSweep};
use crate::http::{Request, Response};
use crate::jobs::{
    compute_shard, JobConfig, JobManager, JobPhase, JobRequest, ShardInjection, ShardRequest,
    ShardResponse, SubmitError,
};
use crate::json::Json;
use crate::pw::{
    ConditionReport, MaskSpec, ProcessWindowRequest, ProcessWindowResponse, PvbReport,
};
use crate::queue::{ConditionBatcher, ServerMetrics, SharedEngine};
use crate::registry::ModelRegistry;
use crate::tiling::{TileGrid, TilingConfig};

/// Largest accepted chip, in pixels (a 4096 × 4096 layout).
const MAX_CHIP_PIXELS: usize = 4096 * 4096;

/// The HTTP-facing inference service over a [`ModelRegistry`].
pub struct Service {
    registry: Arc<ModelRegistry>,
    /// Serving-tier counters surfaced on `/healthz`; shared with the event
    /// loop via [`Service::with_metrics`] (a private zeroed block otherwise).
    metrics: Arc<ServerMetrics>,
    /// Merges condition specializations from concurrent requests into shared
    /// batched CMLP dispatches (engines that gain from it only).
    batcher: ConditionBatcher,
    /// Cross-request merging switch. On by default; the serving bench turns
    /// it off to measure the pre-batching baseline.
    cross_request_batching: bool,
    /// Sharded-job supervisor behind `/v1/jobs` (see [`crate::jobs`]).
    jobs: Arc<JobManager>,
    /// `true` in `nitho-serve --worker` children only: the `/v1/shard` route
    /// honors failure injections (stall/kill) solely in worker mode, so a
    /// public client can never ask the supervisor process to exit.
    worker_mode: bool,
}

/// A protocol error: HTTP status plus a message for the error body.
struct ServiceError {
    status: u16,
    message: String,
}

impl ServiceError {
    fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    fn not_found(message: impl Into<String>) -> Self {
        Self {
            status: 404,
            message: message.into(),
        }
    }
}

impl Service {
    /// Wraps a registry (which should not be empty — an empty registry can
    /// only serve `/healthz` and an empty model list).
    pub fn new(registry: ModelRegistry) -> Self {
        Self::with_metrics(registry, Arc::new(ServerMetrics::new()))
    }

    /// Wraps a registry and shares the serving-tier metrics block with the
    /// transport (the event loop updates it; `/healthz` reports it).
    pub fn with_metrics(registry: ModelRegistry, metrics: Arc<ServerMetrics>) -> Self {
        register_all_metrics();
        let registry = Arc::new(registry);
        let jobs = JobManager::new(Arc::clone(&registry), JobConfig::from_env());
        Self {
            registry,
            metrics,
            batcher: ConditionBatcher::new(),
            cross_request_batching: true,
            jobs,
            worker_mode: false,
        }
    }

    /// Replaces the job-layer configuration (the binary attaches the worker
    /// launcher here; tests inject failure plans and checkpoint dirs).
    #[must_use]
    pub fn with_job_config(mut self, config: JobConfig) -> Self {
        self.jobs = JobManager::new(Arc::clone(&self.registry), config);
        self
    }

    /// Marks this service as a `--worker` child, enabling `/v1/shard`
    /// failure injections. Never set on a public-facing supervisor.
    #[must_use]
    pub fn with_worker_mode(mut self, enabled: bool) -> Self {
        self.worker_mode = enabled;
        self
    }

    /// The job supervisor (tests use it to wait on job completion).
    pub fn jobs(&self) -> &Arc<JobManager> {
        &self.jobs
    }

    /// Enables or disables cross-request condition batching (on by default).
    /// Disabling never changes response bytes — per-slot specializations are
    /// bit-identical either way — only how much work concurrent
    /// process-window requests share.
    #[must_use]
    pub fn with_cross_request_batching(mut self, enabled: bool) -> Self {
        self.cross_request_batching = enabled;
        self
    }

    /// The wrapped registry.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The metrics block `/healthz` reports.
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// Dispatches one request to its route.
    pub fn handle(&self, request: &Request) -> Response {
        let result = match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => Ok(self.healthz()),
            ("GET", "/metrics") => Ok(metrics_exposition()),
            ("GET", "/v1/models") => Ok(self.models()),
            ("POST", "/v1/simulate") => self.simulate(request),
            ("POST", "/v1/process_window") => self.process_window(request),
            ("POST", "/v1/jobs") => self.submit_job(request),
            ("POST", "/v1/shard") => self.shard(request),
            ("GET", path) if path.starts_with("/v1/jobs/") => self.job_get(path),
            (
                _,
                "/healthz" | "/metrics" | "/v1/models" | "/v1/simulate" | "/v1/process_window"
                | "/v1/jobs" | "/v1/shard",
            ) => Err(ServiceError {
                status: 405,
                message: "method not allowed".to_owned(),
            }),
            (_, path) if path.starts_with("/v1/jobs/") => Err(ServiceError {
                status: 405,
                message: "method not allowed".to_owned(),
            }),
            _ => Err(ServiceError::not_found("no such route")),
        };
        match result {
            Ok(response) => response,
            Err(err) => json_response(
                err.status,
                &Json::object(vec![("error", Json::String(err.message))]),
            ),
        }
    }

    fn healthz(&self) -> Response {
        let metrics = &self.metrics;
        let gauge =
            |v: &std::sync::atomic::AtomicU64| Json::Number(v.load(Ordering::Relaxed) as f64);
        let count = |v: u64| Json::Number(v as f64);
        json_response(
            200,
            &Json::object(vec![
                ("status", Json::string("ok")),
                ("models", Json::Number(self.registry.len() as f64)),
                ("queue_depth", gauge(&metrics.queue_depth)),
                ("queue_capacity", gauge(&metrics.queue_capacity)),
                ("in_flight", gauge(&metrics.in_flight)),
                ("workers", gauge(&metrics.workers)),
                ("served", gauge(&metrics.served)),
                ("shed", gauge(&metrics.shed)),
                ("deadline_misses", gauge(&metrics.deadline_misses)),
                (
                    "latency_ms",
                    Json::object(vec![
                        ("count", Json::Number(metrics.latency.count() as f64)),
                        (
                            "p50",
                            Json::Number(metrics.latency.quantile_ms(0.50) as f64),
                        ),
                        (
                            "p95",
                            Json::Number(metrics.latency.quantile_ms(0.95) as f64),
                        ),
                        (
                            "p99",
                            Json::Number(metrics.latency.quantile_ms(0.99) as f64),
                        ),
                    ]),
                ),
                // Additive observability summary: the registry's state and a
                // few cross-layer engine totals (full detail on `/metrics`).
                (
                    "obs",
                    Json::object(vec![
                        ("metrics_enabled", Json::Bool(litho_obs::enabled())),
                        ("metrics", count(litho_obs::metric_count() as u64)),
                        ("tracing", Json::Bool(litho_obs::trace::tracing_active())),
                    ]),
                ),
                (
                    "engine",
                    Json::object(vec![
                        // Resolved kernel knobs (NITHO_SIMD / NITHO_PRECISION)
                        // and the reduced-precision dispatch totals, so an
                        // operator can confirm from one probe which code path
                        // this process actually runs.
                        (
                            "simd_backend",
                            Json::string(litho_math::simd::simd_backend().label()),
                        ),
                        (
                            "precision",
                            Json::string(litho_math::simd::precision().label()),
                        ),
                        (
                            "cmlp_f32_dispatches",
                            count(nitho::cmlp::total_infer_f32_dispatches()),
                        ),
                        (
                            "socs_f32_dispatches",
                            count(litho_fft::soa::total_socs_f32_dispatches()),
                        ),
                        (
                            "fft_1d_transforms",
                            count(litho_fft::cache::total_fft_1d_transforms()),
                        ),
                        (
                            "fft_plan_cache_hits",
                            count(litho_fft::cache::plan_cache_hits()),
                        ),
                        (
                            "fft_plan_cache_misses",
                            count(litho_fft::cache::plan_cache_misses()),
                        ),
                        (
                            "socs_aerials",
                            count(litho_optics::socs::total_socs_aerials()),
                        ),
                        (
                            "cmlp_dispatches",
                            count(nitho::cmlp::total_infer_dispatches()),
                        ),
                        (
                            "batcher_dispatches",
                            count(crate::queue::total_batcher_dispatches()),
                        ),
                        (
                            "batcher_conditions_deduped",
                            count(crate::queue::total_batcher_conditions_deduped()),
                        ),
                        (
                            "parallel_regions",
                            count(litho_parallel::total_parallel_regions()),
                        ),
                    ]),
                ),
            ]),
        )
    }

    fn models(&self) -> Response {
        let models: Vec<Json> = self
            .registry
            .models()
            .map(|info| {
                Json::object(vec![
                    ("name", Json::string(&info.name)),
                    ("kind", Json::string(&info.kind)),
                    ("tile_px", Json::Number(info.tile_px as f64)),
                    ("halo_px", Json::Number(info.halo_px as f64)),
                    ("resist_threshold", Json::Number(info.resist_threshold)),
                    (
                        "checkpoint",
                        match &info.checkpoint {
                            Some(path) => Json::string(&path.display().to_string()),
                            None => Json::Null,
                        },
                    ),
                    (
                        "checkpoint_version",
                        Json::Number(info.checkpoint_version as f64),
                    ),
                ])
            })
            .collect();
        json_response(200, &Json::object(vec![("models", Json::Array(models))]))
    }

    fn simulate(&self, request: &Request) -> Result<Response, ServiceError> {
        let _span = litho_obs::span("service.simulate");
        let text = request
            .body_text()
            .ok_or_else(|| ServiceError::bad_request("body is not UTF-8"))?;
        let doc = Json::parse(text)
            .map_err(|err| ServiceError::bad_request(format!("invalid JSON: {err}")))?;

        let (info, simulator) = match doc.get("model") {
            Some(value) => {
                let name = value
                    .as_str()
                    .ok_or_else(|| ServiceError::bad_request("\"model\" must be a string"))?;
                self.registry
                    .get(name)
                    .ok_or_else(|| ServiceError::not_found(format!("unknown model {name:?}")))?
            }
            None => self
                .registry
                .default_model()
                .ok_or_else(|| ServiceError::not_found("no models registered"))?,
        };

        let mask = parse_mask(&doc)?;
        let pipeline = match doc.get("halo_px") {
            Some(value) => {
                let halo = value
                    .as_usize()
                    .ok_or_else(|| ServiceError::bad_request("\"halo_px\" must be an integer"))?;
                if 2 * halo >= info.tile_px {
                    return Err(ServiceError::bad_request(format!(
                        "halo_px {halo} leaves no core in a {} px tile",
                        info.tile_px
                    )));
                }
                ChipPipeline::with_halo(simulator, halo)
            }
            None => ChipPipeline::new(simulator),
        };

        let (want_aerial, want_resist) = parse_outputs(&doc)?;
        let result = pipeline.simulate(&mask);
        let crate::chip::ChipResult {
            aerial,
            resist,
            tiles,
            grid,
            halo_px,
        } = result;

        let mut fields = vec![
            ("model", Json::string(&info.name)),
            ("rows", Json::Number(mask.rows() as f64)),
            ("cols", Json::Number(mask.cols() as f64)),
            ("tiles", Json::Number(tiles as f64)),
            (
                "grid",
                Json::NumberArray(vec![grid.0 as f64, grid.1 as f64]),
            ),
            ("halo_px", Json::Number(halo_px as f64)),
        ];
        // Deliberately no timing field: response bytes must be a pure
        // function of the request so the serving tier's byte-identity pins
        // (serial vs event-loop, any batching composition) hold. Latency
        // lives in the `/healthz` histogram instead.
        // The images are moved, not cloned, into the response value — a
        // full-chip aerial is tens of megabytes.
        if want_aerial {
            fields.push(("aerial", Json::NumberArray(aerial.into_vec())));
        }
        if want_resist {
            fields.push(("resist", Json::NumberArray(resist.into_vec())));
        }
        Ok(json_response(200, &Json::object(fields)))
    }

    /// `POST /v1/process_window`: fans a focus × dose matrix of full-chip
    /// simulations through the guard-band tiling pipeline and returns
    /// per-condition metrology plus the process-variation-band summary.
    ///
    /// The chip is simulated once per *focus* value (dose is exactly an
    /// effective-threshold change under the constant-threshold resist and
    /// reuses the aerial); focus values run serially in grid order while
    /// each chip's tiles fan out over `litho_parallel`, so the response body
    /// is bit-identical for any `NITHO_THREADS` value — which is also why it
    /// deliberately carries no timing field.
    ///
    /// The reduction is **streamed**: each focus aerial is rendered into one
    /// recycled scratch plane, every condition's resist cut is folded
    /// straight into a bit-packed [`StreamingPvb`] accumulator and its
    /// CD/EPE report emitted inline, and the plane is overwritten by the
    /// next focus value. A dense grid therefore holds two chip planes
    /// (nominal EPE reference + current aerial) plus the accumulator
    /// resident — independent of the number of conditions (pinned by
    /// `tests/pw_streaming.rs`).
    fn process_window(&self, request: &Request) -> Result<Response, ServiceError> {
        let _span = litho_obs::span("service.process_window");
        let text = request
            .body_text()
            .ok_or_else(|| ServiceError::bad_request("body is not UTF-8"))?;
        let doc = Json::parse(text)
            .map_err(|err| ServiceError::bad_request(format!("invalid JSON: {err}")))?;
        let pw = ProcessWindowRequest::from_json(&doc).map_err(ServiceError::bad_request)?;

        let (info, simulator) = match &pw.model {
            Some(name) => self
                .registry
                .get(name)
                .ok_or_else(|| ServiceError::not_found(format!("unknown model {name:?}")))?,
            None => self
                .registry
                .default_model()
                .ok_or_else(|| ServiceError::not_found("no models registered"))?,
        };

        let (rows, cols) = pw.mask.shape();
        if rows.saturating_mul(cols) > MAX_CHIP_PIXELS {
            return Err(ServiceError::bad_request(format!(
                "mask {rows}x{cols} exceeds the {MAX_CHIP_PIXELS}-pixel limit"
            )));
        }
        let halo = pw.halo_px.unwrap_or_else(|| simulator.default_halo_px());
        if 2 * halo >= info.tile_px {
            return Err(ServiceError::bad_request(format!(
                "halo_px {halo} leaves no core in a {} px tile",
                info.tile_px
            )));
        }

        // Dose scales the exposure, which under the constant-threshold
        // resist is *exactly* a development-threshold change (t/d — see
        // litho_optics::resist); it never changes a clear-field-normalized
        // aerial image. So the engine is specialized — and the chip
        // simulated — once per unique focus value at unit dose, and the dose
        // axis reuses that aerial with a scaled threshold. An 8×8 grid costs
        // 8 simulations, not 64. Engines are specialized up front so an
        // unservable focus fails fast (400), before any simulation runs.
        let focus_conditions: Vec<ProcessCondition> = pw
            .focus_nm
            .iter()
            .map(|&defocus_nm| ProcessCondition {
                defocus_nm,
                dose: 1.0,
            })
            .collect();
        // Engines whose specialization is a network dispatch go through the
        // batcher, which may merge this request's conditions with those of
        // other in-flight requests into one deduplicated `Cmlp::infer_batch`
        // call and share the resulting engines. The per-slot results are
        // bit-identical to private `for_condition` calls, so the response
        // cannot observe the merge.
        let specialized: Vec<Option<SharedEngine>> =
            if self.cross_request_batching && simulator.batches_conditions() {
                self.batcher
                    .specialize(&info.name, &focus_conditions, |name, stacked| {
                        match self.registry.get(name) {
                            Some((_, engine)) => engine.for_conditions(stacked),
                            None => stacked.iter().map(|_| None).collect(),
                        }
                    })
            } else {
                simulator
                    .for_conditions(&focus_conditions)
                    .into_iter()
                    .map(|slot| slot.map(SharedEngine::from))
                    .collect()
            };
        let focus_engines: Vec<SharedEngine> = specialized
            .into_iter()
            .zip(&focus_conditions)
            .map(|(engine, at_focus)| {
                engine.ok_or_else(|| {
                    ServiceError::bad_request(format!(
                        "model {:?} cannot serve condition {at_focus} \
                         (nominal-only model; train a conditioned model)",
                        info.name
                    ))
                })
            })
            .collect::<Result<_, _>>()?;

        let mask = pw.mask.rasterize();
        let cutlines = Cutline::center(rows, cols);

        // One full-chip simulation per focus value, serial over focus values
        // (tiles parallelize inside the sweep). Each tile window's cropped
        // mask spectrum is computed once and shared by every focus engine —
        // the mask does not change with the condition.
        let sweep = ChipSweep::plan(&focus_engines, &mask, halo);
        let tiles_per_condition = sweep.tiles();

        // EPE reference: the nominal-condition contour. Render the grid's
        // own best-focus engine when present; otherwise specialize one.
        let nominal_index = pw.focus_nm.iter().position(|&f| f == 0.0);
        let mut nominal_aerial = RealMatrix::zeros(rows, cols);
        let nominal_threshold = match nominal_index {
            Some(idx) => {
                sweep.synthesize_into(focus_engines[idx].as_ref(), &mut nominal_aerial);
                focus_engines[idx].resist_threshold()
            }
            None => {
                let engine = simulator
                    .for_condition(&ProcessCondition::nominal())
                    .ok_or_else(|| {
                        ServiceError::bad_request("model cannot serve the nominal condition")
                    })?;
                sweep.synthesize_into(engine.as_ref(), &mut nominal_aerial);
                engine.resist_threshold()
            }
        };

        // Streamed reduction over the row-major grid (focus outer, dose
        // inner): one scratch plane is recycled across focus values, each
        // condition's resist cut is folded straight into the bit-packed PVB
        // accumulator (never materialized) and its CD/EPE report emitted
        // inline. Capacity comes from the condition count.
        let condition_count = pw.focus_nm.len() * pw.dose.len();
        let mut reports = Vec::with_capacity(condition_count);
        let mut pvb = StreamingPvb::new();
        let mut scratch = RealMatrix::zeros(rows, cols);
        for (idx, (&defocus_nm, engine)) in pw.focus_nm.iter().zip(&focus_engines).enumerate() {
            let aerial: &RealMatrix = if nominal_index == Some(idx) {
                &nominal_aerial
            } else {
                sweep.synthesize_into(engine.as_ref(), &mut scratch);
                &scratch
            };
            let unit_threshold = engine.resist_threshold();
            for &dose in &pw.dose {
                let threshold = unit_threshold / dose;
                let printed_px = pvb.push_thresholded(aerial, threshold);
                let stats = metrology::epe_with_thresholds(
                    &nominal_aerial,
                    nominal_threshold,
                    aerial,
                    threshold,
                    &cutlines,
                );
                reports.push(ConditionReport {
                    defocus_nm,
                    dose,
                    printed_px,
                    cd_h_px: metrology::cd_px(aerial, cutlines[0], threshold),
                    cd_v_px: metrology::cd_px(aerial, cutlines[1], threshold),
                    epe_mean_px: stats.mean_abs_px,
                    epe_max_px: stats.max_abs_px,
                    epe_matched: stats.matched_edges,
                    epe_unmatched: stats.unmatched_edges,
                });
            }
        }

        let (summary, band) = pvb.finish(pw.include_pvb_band);
        let response = ProcessWindowResponse {
            model: info.name.clone(),
            rows,
            cols,
            grid: (pw.focus_nm.len(), pw.dose.len()),
            tiles_per_condition,
            halo_px: halo,
            conditions: reports,
            pvb: PvbReport {
                union_px: summary.union_px,
                intersection_px: summary.intersection_px,
                area_px: summary.area_px,
                area_fraction: summary.area_fraction,
            },
            pvb_band: band.map(RealMatrix::into_vec),
        };
        Ok(json_response(200, &response.to_json()))
    }

    /// `POST /v1/jobs`: accepts a sharded full-chip job and returns a 202
    /// receipt. Identical specs dedupe onto the running (or finished) job —
    /// which is also how a restarted supervisor reattaches to a checkpointed
    /// job: resubmit the same body, poll the same id.
    fn submit_job(&self, request: &Request) -> Result<Response, ServiceError> {
        let _span = litho_obs::span("service.jobs.submit");
        let text = request
            .body_text()
            .ok_or_else(|| ServiceError::bad_request("body is not UTF-8"))?;
        let doc = Json::parse(text)
            .map_err(|err| ServiceError::bad_request(format!("invalid JSON: {err}")))?;
        let job = JobRequest::from_json(&doc).map_err(ServiceError::bad_request)?;
        let (rows, cols) = job.mask.shape();
        if rows.saturating_mul(cols) > MAX_CHIP_PIXELS {
            return Err(ServiceError::bad_request(format!(
                "mask {rows}x{cols} exceeds the {MAX_CHIP_PIXELS}-pixel limit"
            )));
        }
        let receipt = self.jobs.submit(job).map_err(|err| match err {
            SubmitError::UnknownModel(name) => {
                ServiceError::not_found(format!("unknown model {name:?}"))
            }
            SubmitError::Invalid(message) => ServiceError::bad_request(message),
        })?;
        Ok(json_response(
            202,
            &Json::object(vec![
                ("job_id", Json::string(&receipt.job_id)),
                ("shards", Json::Number(receipt.shards as f64)),
                ("tiles", Json::Number(receipt.tiles as f64)),
                ("existing", Json::Bool(receipt.existing)),
                (
                    "status_url",
                    Json::string(&format!("/v1/jobs/{}", receipt.job_id)),
                ),
            ]),
        ))
    }

    /// `GET /v1/jobs/<id>` (status) and `GET /v1/jobs/<id>/result` (the
    /// stitched body once done; 409 while running, 500 once failed).
    fn job_get(&self, path: &str) -> Result<Response, ServiceError> {
        let rest = &path["/v1/jobs/".len()..];
        let (id, want_result) = match rest.strip_suffix("/result") {
            Some(id) => (id, true),
            None => (rest, false),
        };
        if id.is_empty() || id.contains('/') {
            return Err(ServiceError::not_found("no such route"));
        }
        if !want_result {
            let status = self
                .jobs
                .status(id)
                .ok_or_else(|| ServiceError::not_found(format!("no such job {id:?}")))?;
            return Ok(json_response(200, &status.to_json()));
        }
        let (status, body) = self
            .jobs
            .result(id)
            .ok_or_else(|| ServiceError::not_found(format!("no such job {id:?}")))?;
        match (status.phase, body) {
            (JobPhase::Done, Some(body)) => Ok(Response::json(200, String::clone(&body))),
            (JobPhase::Failed, _) => Err(ServiceError {
                status: 500,
                message: status.error.unwrap_or_else(|| "job failed".to_owned()),
            }),
            _ => Err(ServiceError {
                status: 409,
                message: format!(
                    "job {id} still running ({}/{} shards done)",
                    status.shards_done, status.shards
                ),
            }),
        }
    }

    /// `POST /v1/shard`: the internal worker protocol — one contiguous run
    /// of tiles of one job in, the owned-region aerial values out. Failure
    /// injections in the request are honored in worker mode only.
    fn shard(&self, request: &Request) -> Result<Response, ServiceError> {
        let _span = litho_obs::span("service.shard");
        let text = request
            .body_text()
            .ok_or_else(|| ServiceError::bad_request("body is not UTF-8"))?;
        let doc = Json::parse(text)
            .map_err(|err| ServiceError::bad_request(format!("invalid JSON: {err}")))?;
        let shard = ShardRequest::from_json(&doc).map_err(ServiceError::bad_request)?;
        let (info, simulator) = self
            .registry
            .get(&shard.model)
            .ok_or_else(|| ServiceError::not_found(format!("unknown model {:?}", shard.model)))?;
        let (rows, cols) = shard.mask.shape();
        if rows.saturating_mul(cols) > MAX_CHIP_PIXELS {
            return Err(ServiceError::bad_request(format!(
                "mask {rows}x{cols} exceeds the {MAX_CHIP_PIXELS}-pixel limit"
            )));
        }
        if 2 * shard.halo_px >= info.tile_px {
            return Err(ServiceError::bad_request(format!(
                "halo_px {} leaves no core in a {} px tile",
                shard.halo_px, info.tile_px
            )));
        }
        let grid = TileGrid::new(TilingConfig::new(info.tile_px, shard.halo_px), rows, cols);
        let in_bounds = shard
            .start_tile
            .checked_add(shard.tile_count)
            .is_some_and(|end| end <= grid.len());
        if !in_bounds {
            return Err(ServiceError::bad_request(format!(
                "shard tiles {}..{} exceed the {}-tile grid",
                shard.start_tile,
                shard.start_tile.saturating_add(shard.tile_count),
                grid.len()
            )));
        }
        if let Some(inject) = shard.inject {
            if self.worker_mode {
                match inject {
                    ShardInjection::Kill => {
                        eprintln!(
                            "nitho-serve: injected worker kill (shard {})",
                            shard.start_tile
                        );
                        std::process::exit(17);
                    }
                    ShardInjection::StallMs(ms) => {
                        eprintln!(
                            "nitho-serve: injected worker stall {ms} ms (shard {})",
                            shard.start_tile
                        );
                        std::thread::sleep(std::time::Duration::from_millis(ms.min(120_000)));
                    }
                }
            } else {
                eprintln!("nitho-serve: ignoring shard injection outside worker mode");
            }
        }
        let chip = shard.mask.rasterize();
        let values = compute_shard(simulator, &chip, &grid, shard.start_tile, shard.tile_count);
        let response = ShardResponse {
            fingerprint: shard.fingerprint,
            start_tile: shard.start_tile,
            tile_count: shard.tile_count,
            values,
        };
        Ok(json_response(200, &response.to_json()))
    }
}

/// Serializes `value` into a JSON response with `status`, degrading to a 500
/// if the document contains a non-finite number — a wrong-but-valid body
/// (the old `null` substitution) must never leave the process.
fn json_response(status: u16, value: &Json) -> Response {
    match value.serialize() {
        Ok(body) => Response::json(status, body),
        Err(err) => Response::json(
            500,
            // Hand-assembled fallback body: all-static except the error text,
            // which contains no characters needing JSON escapes.
            format!("{{\"error\":\"response serialization failed: {err}\"}}"),
        ),
    }
}

/// `litho_simd_backend_info{backend="…"} 1` — the resolved `NITHO_SIMD`
/// kernel backend, as a joinable identity label.
static SIMD_BACKEND_INFO: litho_obs::Info = litho_obs::Info::new(
    "litho_simd_backend_info",
    "resolved NITHO_SIMD kernel backend",
);
/// `litho_precision_info{precision="…"} 1` — the resolved `NITHO_PRECISION`
/// inference precision.
static PRECISION_INFO: litho_obs::Info = litho_obs::Info::new(
    "litho_precision_info",
    "resolved NITHO_PRECISION inference precision",
);

/// Registers every instrumented layer's metrics with the `litho_obs`
/// registry — fft plan cache, SOCS synthesis, CMLP inference, the parallel
/// engine, the condition batcher, and the serve event loop — plus the
/// process-identity info metrics for the resolved kernel knobs. Runs once
/// per process (every call after the first is a no-op), so any number of
/// [`Service`] instances can share the registry.
pub fn register_all_metrics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        litho_fft::cache::register_metrics();
        litho_optics::socs::register_metrics();
        nitho::cmlp::register_metrics();
        litho_parallel::register_metrics();
        crate::queue::register_batcher_metrics();
        crate::http::register_serve_metrics();
        crate::jobs::register_job_metrics();
        SIMD_BACKEND_INFO.set_label(match litho_math::simd::simd_backend() {
            litho_math::simd::SimdBackend::Scalar => "backend=\"scalar\"",
            litho_math::simd::SimdBackend::Avx2 => "backend=\"avx2\"",
        });
        PRECISION_INFO.set_label(match litho_math::simd::precision() {
            litho_math::simd::Precision::F64 => "precision=\"f64\"",
            litho_math::simd::Precision::F32 => "precision=\"f32\"",
        });
        litho_obs::register(&SIMD_BACKEND_INFO);
        litho_obs::register(&PRECISION_INFO);
    });
}

/// `GET /metrics`: the Prometheus text exposition of every registered
/// metric. Strictly out-of-band — like `/healthz`, this endpoint is excluded
/// from the `/v1/*` byte-identity contract because its body changes as the
/// process serves traffic.
fn metrics_exposition() -> Response {
    let mut response = Response::text(200, &litho_obs::render_prometheus());
    response.content_type = "text/plain; version=0.0.4".to_owned();
    response
}

fn parse_outputs(doc: &Json) -> Result<(bool, bool), ServiceError> {
    match doc.get("outputs") {
        None => Ok((true, true)),
        Some(value) => {
            let items = value
                .as_array()
                .ok_or_else(|| ServiceError::bad_request("\"outputs\" must be an array"))?;
            let mut aerial = false;
            let mut resist = false;
            for item in items {
                match item.as_str() {
                    Some("aerial") => aerial = true,
                    Some("resist") => resist = true,
                    _ => {
                        return Err(ServiceError::bad_request(
                            "\"outputs\" entries must be \"aerial\" or \"resist\"",
                        ))
                    }
                }
            }
            if !aerial && !resist {
                return Err(ServiceError::bad_request("\"outputs\" selects nothing"));
            }
            Ok((aerial, resist))
        }
    }
}

/// Decodes the `mask` member through the shared [`MaskSpec`] wire type (one
/// grammar for `/v1/simulate` and `/v1/process_window`) and enforces the
/// chip-size cap.
fn parse_mask(doc: &Json) -> Result<RealMatrix, ServiceError> {
    let mask = doc
        .get("mask")
        .ok_or_else(|| ServiceError::bad_request("missing \"mask\""))?;
    let spec = MaskSpec::from_json(mask).map_err(ServiceError::bad_request)?;
    let (rows, cols) = spec.shape();
    if rows.saturating_mul(cols) > MAX_CHIP_PIXELS {
        return Err(ServiceError::bad_request(format!(
            "mask {rows}x{cols} exceeds the {MAX_CHIP_PIXELS}-pixel limit"
        )));
    }
    Ok(spec.rasterize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_optics::{HopkinsSimulator, OpticalConfig};

    fn service() -> Service {
        let optics = OpticalConfig::builder()
            .tile_px(64)
            .pixel_nm(8.0)
            .kernel_count(6)
            .build();
        let mut registry = ModelRegistry::new();
        registry.register_hopkins("hopkins", HopkinsSimulator::new(&optics));
        Service::new(registry)
    }

    fn request(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.to_owned(),
            path: path.to_owned(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn parse_body(response: &Response) -> Json {
        Json::parse(std::str::from_utf8(&response.body).expect("UTF-8 body")).expect("JSON body")
    }

    #[test]
    fn healthz_reports_models_and_serving_metrics() {
        let service = service();
        service.metrics().record_completion(12);
        service
            .metrics()
            .shed
            .fetch_add(2, std::sync::atomic::Ordering::Relaxed);
        let response = service.handle(&request("GET", "/healthz", ""));
        assert_eq!(response.status, 200);
        let doc = parse_body(&response);
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(doc.get("models").and_then(Json::as_usize), Some(1));
        assert_eq!(doc.get("queue_depth").and_then(Json::as_usize), Some(0));
        assert_eq!(doc.get("in_flight").and_then(Json::as_usize), Some(0));
        assert_eq!(doc.get("served").and_then(Json::as_usize), Some(1));
        assert_eq!(doc.get("shed").and_then(Json::as_usize), Some(2));
        assert_eq!(doc.get("deadline_misses").and_then(Json::as_usize), Some(0));
        let latency = doc.get("latency_ms").expect("latency object");
        assert_eq!(latency.get("count").and_then(Json::as_usize), Some(1));
        assert_eq!(latency.get("p50").and_then(Json::as_usize), Some(20));
        assert_eq!(latency.get("p99").and_then(Json::as_usize), Some(20));
        // The engine summary names the resolved kernel knobs so an operator
        // can confirm the running configuration from one probe.
        let engine = doc.get("engine").expect("engine object");
        let backend = engine
            .get("simd_backend")
            .and_then(Json::as_str)
            .expect("simd_backend");
        assert!(matches!(backend, "scalar" | "avx2"), "{backend}");
        let precision = engine
            .get("precision")
            .and_then(Json::as_str)
            .expect("precision");
        assert!(matches!(precision, "f64" | "f32"), "{precision}");
        assert!(engine.get("cmlp_f32_dispatches").is_some());
        assert!(engine.get("socs_f32_dispatches").is_some());
    }

    #[test]
    fn non_finite_response_degrades_to_500_not_corrupt_json() {
        // If a handler ever produces a NaN/Inf (a metrology edge case, say),
        // the client must see an explicit 500, never a silently nulled
        // number in a 200 body.
        let poisoned = Json::object(vec![("cd_px", Json::NumberArray(vec![1.0, f64::NAN]))]);
        let response = json_response(200, &poisoned);
        assert_eq!(response.status, 500);
        let doc = parse_body(&response);
        let message = doc.get("error").and_then(Json::as_str).expect("error");
        assert!(message.contains("serialization failed"), "{message}");
        // The guard passes finite documents through untouched.
        let fine = Json::object(vec![("cd_px", Json::NumberArray(vec![1.0, 2.0]))]);
        let response = json_response(200, &fine);
        assert_eq!(response.status, 200);
        assert_eq!(response.body, b"{\"cd_px\":[1,2]}");
    }

    #[test]
    fn simulate_response_is_a_pure_function_of_the_request() {
        // No timing fields, no counters — byte-identical on repeat, which is
        // what lets the serving tier pin event-loop bytes against the serial
        // reference.
        let service = service();
        let body = r#"{"mask":{"rows":48,"cols":48,"rects":[[8,8,40,24]]},"outputs":["resist"]}"#;
        let first = service.handle(&request("POST", "/v1/simulate", body));
        let second = service.handle(&request("POST", "/v1/simulate", body));
        assert_eq!(first.status, 200);
        assert_eq!(first.body, second.body);
        assert!(parse_body(&first).get("elapsed_ms").is_none());
    }

    #[test]
    fn models_lists_metadata() {
        let service = service();
        let response = service.handle(&request("GET", "/v1/models", ""));
        assert_eq!(response.status, 200);
        let doc = parse_body(&response);
        let models = doc.get("models").and_then(Json::as_array).expect("array");
        assert_eq!(models.len(), 1);
        assert_eq!(
            models[0].get("name").and_then(Json::as_str),
            Some("hopkins")
        );
        assert_eq!(models[0].get("tile_px").and_then(Json::as_usize), Some(64));
        assert_eq!(models[0].get("checkpoint"), Some(&Json::Null));
    }

    #[test]
    fn simulate_rect_mask_roundtrip() {
        let service = service();
        let body = r#"{
            "model": "hopkins",
            "mask": {"rows": 96, "cols": 96, "rects": [[16, 16, 80, 40], [40, 56, 56, 88]]},
            "halo_px": 16
        }"#;
        let response = service.handle(&request("POST", "/v1/simulate", body));
        assert_eq!(
            response.status,
            200,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
        let doc = parse_body(&response);
        assert_eq!(doc.get("rows").and_then(Json::as_usize), Some(96));
        assert_eq!(doc.get("tiles").and_then(Json::as_usize), Some(9));
        assert_eq!(doc.get("halo_px").and_then(Json::as_usize), Some(16));
        let aerial = doc
            .get("aerial")
            .and_then(Json::as_number_slice)
            .expect("aerial");
        assert_eq!(aerial.len(), 96 * 96);
        assert!(aerial.iter().all(|v| v.is_finite()));
        let resist = doc
            .get("resist")
            .and_then(Json::as_number_slice)
            .expect("resist");
        assert!(resist.iter().all(|&v| v == 0.0 || v == 1.0));
        // Geometry prints: the resist is neither empty nor full.
        let printed: f64 = resist.iter().sum();
        assert!(printed > 0.0 && printed < (96 * 96) as f64);
    }

    #[test]
    fn simulate_pixels_mask_and_output_selection() {
        let service = service();
        let mut pixels = vec!["0"; 48 * 48];
        for r in 16..32 {
            for c in 8..40 {
                pixels[r * 48 + c] = "1";
            }
        }
        let body = format!(
            r#"{{"mask": {{"rows": 48, "cols": 48, "pixels": [{}]}}, "outputs": ["resist"]}}"#,
            pixels.join(",")
        );
        let response = service.handle(&request("POST", "/v1/simulate", &body));
        assert_eq!(response.status, 200);
        let doc = parse_body(&response);
        assert!(doc.get("aerial").is_none(), "aerial was not requested");
        assert_eq!(
            doc.get("resist")
                .and_then(Json::as_number_slice)
                .map(|a| a.len()),
            Some(48 * 48)
        );
    }

    #[test]
    fn process_window_rigorous_engine_full_grid() {
        let service = service();
        let body = r#"{
            "model": "hopkins",
            "mask": {"rows": 64, "cols": 64, "rects": [[8, 24, 56, 40]]},
            "focus_nm": [0, 150],
            "dose": [0.9, 1.0, 1.1],
            "halo_px": 16
        }"#;
        let response = service.handle(&request("POST", "/v1/process_window", body));
        assert_eq!(
            response.status,
            200,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
        let doc = parse_body(&response);
        let parsed = crate::pw::ProcessWindowResponse::from_json(&doc).expect("typed response");
        assert_eq!(parsed.model, "hopkins");
        assert_eq!(parsed.grid, (2, 3));
        assert_eq!(parsed.conditions.len(), 6);
        assert_eq!(parsed.rows, 64);
        assert_eq!(parsed.halo_px, 16);
        assert!(parsed.tiles_per_condition >= 1);
        assert!(parsed.pvb_band.is_none(), "band was not requested");
        // Row-major order: focus outer, dose inner.
        assert_eq!(parsed.conditions[0].defocus_nm, 0.0);
        assert!((parsed.conditions[0].dose - 0.9).abs() < 1e-12);
        assert_eq!(parsed.conditions[3].defocus_nm, 150.0);
        // The grid contains the nominal point; its EPE against itself is 0.
        let nominal = &parsed.conditions[1];
        assert!(nominal.dose == 1.0 && nominal.defocus_nm == 0.0);
        assert_eq!(nominal.epe_mean_px, 0.0);
        assert_eq!(nominal.epe_max_px, 0.0);
        assert!(nominal.epe_matched > 0);
        // A horizontal bar crosses the vertical center cutline: CD measured.
        assert!(nominal.cd_v_px.is_some());
        // Dose is monotone in printed area at fixed focus.
        assert!(parsed.conditions[0].printed_px <= parsed.conditions[1].printed_px);
        assert!(parsed.conditions[1].printed_px <= parsed.conditions[2].printed_px);
        // The process window varies, so the band is non-empty but small.
        assert!(parsed.pvb.area_px > 0.0);
        assert!(parsed.pvb.area_fraction < 0.5);
        assert!(parsed.pvb.intersection_px <= parsed.pvb.union_px);
    }

    fn conditioned_service() -> Service {
        let optics = OpticalConfig::builder()
            .tile_px(64)
            .pixel_nm(8.0)
            .kernel_count(6)
            .build();
        let mut model = nitho::NithoModel::new(
            nitho::NithoConfig {
                kernel_side: Some(9),
                condition: Some(nitho::ConditionEncoding::default()),
                ..nitho::NithoConfig::fast()
            },
            &optics,
        );
        model.refresh_kernels();
        let mut registry = ModelRegistry::new();
        registry.register_nitho("nitho", model);
        Service::new(registry)
    }

    #[test]
    fn process_window_conditioned_nitho_with_band() {
        let service = conditioned_service();
        let body = r#"{
            "mask": {"rows": 48, "cols": 48, "rects": [[8, 8, 40, 24]]},
            "focus_nm": [-50, 0, 50],
            "dose": [1.0],
            "include_pvb_band": true
        }"#;
        let response = service.handle(&request("POST", "/v1/process_window", body));
        assert_eq!(
            response.status,
            200,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
        // The conditioned engine specializes through the batcher; repeating
        // the request must reproduce the response byte for byte.
        let again = service.handle(&request("POST", "/v1/process_window", body));
        assert_eq!(response.body, again.body);
        let parsed =
            crate::pw::ProcessWindowResponse::from_json(&parse_body(&response)).expect("typed");
        assert_eq!(parsed.model, "nitho");
        assert_eq!(parsed.grid, (3, 1));
        let band = parsed.pvb_band.expect("band requested");
        assert_eq!(band.len(), 48 * 48);
        assert!(band.iter().all(|&v| v == 0.0 || v == 1.0));
        assert_eq!(band.iter().sum::<f64>(), parsed.pvb.area_px);
    }

    #[test]
    fn process_window_rejects_off_nominal_on_nominal_only_models() {
        // The default service registers an unconditioned engine set... the
        // hopkins engine serves everything, so register a nominal-only nitho.
        let optics = OpticalConfig::builder()
            .tile_px(64)
            .pixel_nm(8.0)
            .kernel_count(6)
            .build();
        let mut model = nitho::NithoModel::new(
            nitho::NithoConfig {
                kernel_side: Some(9),
                ..nitho::NithoConfig::fast()
            },
            &optics,
        );
        model.refresh_kernels();
        let mut registry = ModelRegistry::new();
        registry.register_nitho("nitho", model);
        let service = Service::new(registry);

        let off_nominal = r#"{
            "model": "nitho",
            "mask": {"rows": 48, "cols": 48, "rects": [[8, 8, 40, 24]]},
            "focus_nm": [0, 50]
        }"#;
        let response = service.handle(&request("POST", "/v1/process_window", off_nominal));
        assert_eq!(response.status, 400);
        let body = parse_body(&response);
        let message = body.get("error").and_then(Json::as_str).expect("error");
        assert!(message.contains("nominal-only"), "{message}");

        // The nominal-only grid still works.
        let nominal = r#"{
            "model": "nitho",
            "mask": {"rows": 48, "cols": 48, "rects": [[8, 8, 40, 24]]}
        }"#;
        let response = service.handle(&request("POST", "/v1/process_window", nominal));
        assert_eq!(response.status, 200);
    }

    #[test]
    fn process_window_malformed_bodies_are_4xx_never_panics() {
        let service = service();
        let cases = [
            ("not json", 400),
            ("{}", 400),
            (r#"{"mask":{"rows":64,"cols":64}}"#, 400),
            (
                r#"{"model":"missing","mask":{"rows":64,"cols":64,"rects":[[0,0,8,8]]}}"#,
                404,
            ),
            (
                r#"{"mask":{"rows":64,"cols":64,"rects":[[0,0,8,8]]},"focus_nm":[]}"#,
                400,
            ),
            (
                r#"{"mask":{"rows":64,"cols":64,"rects":[[0,0,8,8]]},"dose":[-1]}"#,
                400,
            ),
            (
                r#"{"mask":{"rows":64,"cols":64,"rects":[[0,0,8,8]]},"dose":[0]}"#,
                400,
            ),
            (
                r#"{"mask":{"rows":64,"cols":64,"rects":[[0,0,8,8]]},"focus_nm":"all"}"#,
                400,
            ),
            (
                r#"{"mask":{"rows":64,"cols":64,"rects":[[0,0,8,8]]},"halo_px":32}"#,
                400,
            ),
            (
                r#"{"mask":{"rows":99999,"cols":99999,"rects":[[0,0,8,8]]}}"#,
                400,
            ),
            (r#"{"mask":{"rows":64,"cols":64,"pixels":[1,2,3]}}"#, 400),
            (
                r#"{"mask":{"rows":64,"cols":64,"rects":[[0,0,8,8]]},"include_pvb_band":"yes"}"#,
                400,
            ),
        ];
        // Over-limit grids (too many axis points / too many conditions) are
        // rejected at parse time, before any engine is specialized.
        let axis = |n: usize| -> String {
            (0..n)
                .map(|i| format!("{}", 1.0 + i as f64 / 1000.0))
                .collect::<Vec<_>>()
                .join(",")
        };
        let over_axis = format!(
            r#"{{"mask":{{"rows":64,"cols":64,"rects":[[0,0,8,8]]}},"focus_nm":[{}]}}"#,
            axis(crate::pw::MAX_AXIS_POINTS + 1)
        );
        let over_grid = format!(
            r#"{{"mask":{{"rows":64,"cols":64,"rects":[[0,0,8,8]]}},"focus_nm":[{}],"dose":[{}]}}"#,
            axis(17),
            axis(16)
        );
        let constructed = [(over_axis.as_str(), 400), (over_grid.as_str(), 400)];
        for (body, expected) in cases.iter().copied().chain(constructed) {
            let response = service.handle(&request("POST", "/v1/process_window", body));
            assert_eq!(
                response.status,
                expected,
                "{body}: {}",
                String::from_utf8_lossy(&response.body)
            );
            assert!(parse_body(&response).get("error").is_some());
        }
        // Wrong method on the route.
        let response = service.handle(&request("GET", "/v1/process_window", ""));
        assert_eq!(response.status, 405);
    }

    #[test]
    fn jobs_routes_submit_poll_and_fetch() {
        let service = service();
        let body = r#"{"model":"hopkins","mask":{"rows":96,"cols":96,"rects":[[16,16,80,40]]},"halo_px":8,"shard_tiles":1}"#;
        let response = service.handle(&request("POST", "/v1/jobs", body));
        assert_eq!(
            response.status,
            202,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
        let doc = parse_body(&response);
        let job_id = doc
            .get("job_id")
            .and_then(Json::as_str)
            .expect("job_id")
            .to_owned();
        assert_eq!(doc.get("existing"), Some(&Json::Bool(false)));
        assert_eq!(doc.get("shards").and_then(Json::as_usize), Some(4));
        let status_url = format!("/v1/jobs/{job_id}");
        assert_eq!(
            doc.get("status_url").and_then(Json::as_str),
            Some(status_url.as_str())
        );

        let status = service
            .jobs()
            .wait_until_done(&job_id, std::time::Duration::from_secs(120))
            .expect("job exists");
        assert_eq!(status.phase, JobPhase::Done, "{:?}", status.error);

        let poll = service.handle(&request("GET", &status_url, ""));
        assert_eq!(poll.status, 200);
        let poll_doc = parse_body(&poll);
        assert_eq!(poll_doc.get("state").and_then(Json::as_str), Some("done"));
        assert_eq!(
            poll_doc.get("shards_done").and_then(Json::as_usize),
            Some(4)
        );

        let result = service.handle(&request("GET", &format!("{status_url}/result"), ""));
        assert_eq!(result.status, 200);
        let result_doc = parse_body(&result);
        let job_aerial = result_doc
            .get("aerial")
            .and_then(Json::as_number_slice)
            .expect("aerial")
            .to_vec();

        // The async job route reproduces the synchronous route bit for bit.
        let sim_body = r#"{"model":"hopkins","mask":{"rows":96,"cols":96,"rects":[[16,16,80,40]]},"halo_px":8}"#;
        let sim = service.handle(&request("POST", "/v1/simulate", sim_body));
        assert_eq!(sim.status, 200);
        let sim_doc = parse_body(&sim);
        let sim_aerial = sim_doc
            .get("aerial")
            .and_then(Json::as_number_slice)
            .expect("aerial");
        assert_eq!(job_aerial.len(), sim_aerial.len());
        for (index, (job, sim)) in job_aerial.iter().zip(sim_aerial).enumerate() {
            assert_eq!(job.to_bits(), sim.to_bits(), "aerial pixel {index}");
        }

        // Idempotent resubmit dedupes onto the finished job.
        let again = service.handle(&request("POST", "/v1/jobs", body));
        assert_eq!(again.status, 202);
        assert_eq!(parse_body(&again).get("existing"), Some(&Json::Bool(true)));

        // Unknowns and wrong methods.
        let cases = [
            ("GET", "/v1/jobs/job-ffff", "", 404),
            ("GET", "/v1/jobs/", "", 404),
            ("PUT", "/v1/jobs", "", 405),
            ("POST", "/v1/jobs", "{}", 400),
            ("POST", "/v1/jobs", "not json", 400),
            (
                "POST",
                "/v1/jobs",
                r#"{"model":"nope","mask":{"rows":8,"cols":8,"rects":[[0,0,4,4]]}}"#,
                404,
            ),
        ];
        for (method, path, body, expected) in cases {
            let response = service.handle(&request(method, path, body));
            assert_eq!(
                response.status,
                expected,
                "{method} {path}: {}",
                String::from_utf8_lossy(&response.body)
            );
        }
        let wrong_method = service.handle(&request("DELETE", &status_url, ""));
        assert_eq!(wrong_method.status, 405);
    }

    #[test]
    fn shard_route_computes_owned_values_and_ignores_injection() {
        let service = service();
        // `inject: "kill"` outside worker mode must be ignored — this test
        // surviving is the assertion that a public client cannot kill the
        // supervisor through the worker protocol.
        let shard = r#"{"model":"hopkins","mask":{"rows":96,"cols":96,"rects":[[16,16,80,40]]},"halo_px":8,"start_tile":1,"tile_count":2,"fingerprint":"00000000deadbeef","inject":"kill"}"#;
        let response = service.handle(&request("POST", "/v1/shard", shard));
        assert_eq!(
            response.status,
            200,
            "{}",
            String::from_utf8_lossy(&response.body)
        );
        let doc = parse_body(&response);
        assert_eq!(
            doc.get("fingerprint").and_then(Json::as_str),
            Some("00000000deadbeef")
        );
        assert_eq!(doc.get("start_tile").and_then(Json::as_usize), Some(1));
        let values = doc
            .get("values")
            .and_then(Json::as_number_slice)
            .expect("values");
        // Two tiles of a 2×2 grid with 48-px cores.
        assert_eq!(values.len(), 2 * 48 * 48);
        assert!(values.iter().all(|v| v.is_finite()));

        let cases = [
            // Out-of-bounds tiles are a 400, never a panic.
            (
                r#"{"model":"hopkins","mask":{"rows":96,"cols":96,"rects":[[16,16,80,40]]},"halo_px":8,"start_tile":3,"tile_count":2,"fingerprint":"00"}"#,
                400,
            ),
            // A halo that leaves no core.
            (
                r#"{"model":"hopkins","mask":{"rows":96,"cols":96,"rects":[[16,16,80,40]]},"halo_px":32,"start_tile":0,"tile_count":1,"fingerprint":"00"}"#,
                400,
            ),
            (
                r#"{"model":"nope","mask":{"rows":96,"cols":96,"rects":[[16,16,80,40]]},"halo_px":8,"start_tile":0,"tile_count":1,"fingerprint":"00"}"#,
                404,
            ),
            ("{}", 400),
        ];
        for (body, expected) in cases {
            let response = service.handle(&request("POST", "/v1/shard", body));
            assert_eq!(
                response.status,
                expected,
                "{body}: {}",
                String::from_utf8_lossy(&response.body)
            );
        }
        assert_eq!(service.handle(&request("GET", "/v1/shard", "")).status, 405);
    }

    #[test]
    fn protocol_errors_are_4xx() {
        let service = service();
        let cases = [
            ("POST", "/v1/simulate", "not json", 400),
            ("POST", "/v1/simulate", "{}", 400),
            (
                "POST",
                "/v1/simulate",
                r#"{"model":"missing","mask":{"rows":64,"cols":64,"rects":[[0,0,8,8]]}}"#,
                404,
            ),
            (
                "POST",
                "/v1/simulate",
                r#"{"mask":{"rows":64,"cols":64,"rects":[[0,0,8,8]],"pixels":[0]}}"#,
                400,
            ),
            (
                "POST",
                "/v1/simulate",
                r#"{"mask":{"rows":64,"cols":64,"rects":[[8,8,0,0]]}}"#,
                400,
            ),
            (
                "POST",
                "/v1/simulate",
                r#"{"halo_px":32,"mask":{"rows":64,"cols":64,"rects":[[0,0,8,8]]}}"#,
                400,
            ),
            (
                "POST",
                "/v1/simulate",
                r#"{"mask":{"rows":99999,"cols":99999,"rects":[[0,0,8,8]]}}"#,
                400,
            ),
            ("GET", "/v1/nothing", "", 404),
            ("DELETE", "/healthz", "", 405),
        ];
        for (method, path, body, expected) in cases {
            let response = service.handle(&request(method, path, body));
            assert_eq!(
                response.status,
                expected,
                "{method} {path} {body}: {}",
                String::from_utf8_lossy(&response.body)
            );
            assert!(parse_body(&response).get("error").is_some());
        }
    }
}
