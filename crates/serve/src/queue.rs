//! Compute-side primitives of the event-loop serving tier: a bounded MPMC
//! work queue, lock-free serving metrics with a fixed-bucket latency
//! histogram, and the cross-request condition batcher.
//!
//! # Determinism
//!
//! Nothing in this module may influence response *bytes* — only *when* work
//! runs and what `/healthz` reports. The queue hands each request to exactly
//! one worker; the batcher merges concurrent `for_conditions` dispatches but
//! the batched entry points underneath (`Cmlp::infer_batch` →
//! `NithoModel::at_conditions`) are bit-identical per slot for any batch
//! composition; the histogram buckets wall-clock time without ever writing a
//! timestamp into a response body.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use litho_obs::Counter;
use litho_optics::ProcessCondition;

use crate::chip::TileSimulator;

/// Specialization asks entering the condition batcher (one per caller).
static BATCHER_ASKS_TOTAL: Counter = Counter::new(
    "litho_serve_batcher_asks_total",
    "condition-specialization asks entering the cross-request batcher",
);
/// Batched `for_conditions` dispatches actually issued (one per model group
/// per combining round). asks / dispatches ≈ the merge factor.
static BATCHER_DISPATCHES_TOTAL: Counter = Counter::new(
    "litho_serve_batcher_dispatches_total",
    "batched for_conditions dispatches issued by the combiner",
);
/// Condition slots requested across all asks (before dedup).
static BATCHER_CONDITIONS_TOTAL: Counter = Counter::new(
    "litho_serve_batcher_conditions_total",
    "condition slots requested across all batcher asks, before dedup",
);
/// Condition slots answered from another slot's specialization (bit-exact
/// dedup wins: slots asked minus unique conditions dispatched).
static BATCHER_CONDITIONS_DEDUPED_TOTAL: Counter = Counter::new(
    "litho_serve_batcher_conditions_deduped_total",
    "condition slots served by sharing another slot's specialization",
);

/// Registers the batcher's metrics with the `litho_obs` registry. Idempotent.
pub(crate) fn register_batcher_metrics() {
    litho_obs::register(&BATCHER_ASKS_TOTAL);
    litho_obs::register(&BATCHER_DISPATCHES_TOTAL);
    litho_obs::register(&BATCHER_CONDITIONS_TOTAL);
    litho_obs::register(&BATCHER_CONDITIONS_DEDUPED_TOTAL);
}

/// Process-wide count of batched dispatches issued by the combiner.
pub fn total_batcher_dispatches() -> u64 {
    BATCHER_DISPATCHES_TOTAL.get()
}

/// Process-wide count of condition slots saved by bit-exact dedup.
pub fn total_batcher_conditions_deduped() -> u64 {
    BATCHER_CONDITIONS_DEDUPED_TOTAL.get()
}

/// Locks a mutex, recovering the data if a previous holder panicked (the
/// serving tier must keep answering after a poisoned request).
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A bounded multi-producer multi-consumer FIFO connecting the connection
/// event loop to the worker pool.
///
/// Producers never block: [`WorkQueue::try_push`] fails fast when the queue
/// is full so the event loop can shed load with a `503` instead of stalling
/// reads. Consumers block on a condvar until work arrives or the queue is
/// [closed](WorkQueue::close) and drained.
#[derive(Debug)]
pub struct WorkQueue<T> {
    inner: Mutex<QueueInner<T>>,
    ready: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Why a [`WorkQueue::try_push`] was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — shed the request.
    Full,
    /// The queue was closed (server draining) — no new work is accepted.
    Closed,
}

impl<T> WorkQueue<T> {
    /// Creates a queue holding at most `capacity` pending items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "work queue capacity must be positive");
        Self {
            inner: Mutex::new(QueueInner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Maximum number of pending items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of pending items.
    pub fn len(&self) -> usize {
        lock_recover(&self.inner).items.len()
    }

    /// `true` when no items are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item` without blocking, refusing when full or closed.
    ///
    /// # Errors
    ///
    /// Returns the item back inside [`PushError`]-tagged `Err` so the caller
    /// can turn it into a load-shed response.
    pub fn try_push(&self, item: T) -> Result<(), (PushError, T)> {
        let mut inner = lock_recover(&self.inner);
        if inner.closed {
            return Err((PushError::Closed, item));
        }
        if inner.items.len() >= self.capacity {
            return Err((PushError::Full, item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking until one arrives. Returns `None`
    /// once the queue is [closed](WorkQueue::close) *and* drained — the
    /// worker-pool exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut inner = lock_recover(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Closes the queue: future pushes fail, and once the backlog drains
    /// every blocked [`WorkQueue::pop`] returns `None`. Queued items are kept
    /// — graceful drain completes them before the workers exit.
    pub fn close(&self) {
        lock_recover(&self.inner).closed = true;
        self.ready.notify_all();
    }

    /// `true` once [`WorkQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        lock_recover(&self.inner).closed
    }
}

/// Upper bucket bounds of the latency histogram, in milliseconds. The last
/// bucket is open-ended.
pub const LATENCY_BUCKETS_MS: [u64; 16] = [
    1,
    2,
    5,
    10,
    20,
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    30_000,
    60_000,
    u64::MAX,
];

/// A fixed-bucket latency histogram over [`LATENCY_BUCKETS_MS`].
///
/// Percentiles are reported as the upper bound of the bucket containing the
/// requested rank — coarse but allocation-free, safely shareable across
/// worker threads, and crucially *outside* every response body, so the
/// byte-identity pins on `/v1/*` responses survive timing jitter.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    counts: [AtomicU64; 16],
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `elapsed_ms`.
    pub fn record(&self, elapsed_ms: u64) {
        let bucket = LATENCY_BUCKETS_MS
            .iter()
            .position(|&upper| elapsed_ms <= upper)
            .unwrap_or(LATENCY_BUCKETS_MS.len() - 1);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) as the upper bound of its bucket,
    /// in milliseconds; `0` when nothing has been recorded. The open-ended
    /// last bucket reports its lower neighbour's bound rather than `u64::MAX`.
    pub fn quantile_ms(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0;
        for (bucket, &count) in counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                return if bucket + 1 == LATENCY_BUCKETS_MS.len() {
                    LATENCY_BUCKETS_MS[bucket - 1]
                } else {
                    LATENCY_BUCKETS_MS[bucket]
                };
            }
        }
        LATENCY_BUCKETS_MS[LATENCY_BUCKETS_MS.len() - 2]
    }
}

/// Shared serving-tier counters surfaced on `/healthz`.
///
/// All fields are monotone counters or gauges updated with relaxed atomics —
/// approximate snapshots are fine for observability, and nothing here feeds
/// back into response bytes.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Requests answered (any status, including shed 503s).
    pub served: AtomicU64,
    /// Requests refused with `503` because the work queue was full.
    pub shed: AtomicU64,
    /// Requests whose deadline expired before a worker picked them up.
    pub deadline_misses: AtomicU64,
    /// Requests currently executing in workers.
    pub in_flight: AtomicU64,
    /// Pending requests in the work queue (gauge, event-loop maintained).
    pub queue_depth: AtomicU64,
    /// Worker-pool size (set once at startup; 0 = thread-per-connection).
    pub workers: AtomicU64,
    /// Work-queue capacity (set once at startup).
    pub queue_capacity: AtomicU64,
    /// End-to-end request latency (parse-complete → response ready).
    pub latency: LatencyHistogram,
}

impl ServerMetrics {
    /// Creates a zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the completion of one request.
    pub fn record_completion(&self, elapsed_ms: u64) {
        self.served.fetch_add(1, Ordering::Relaxed);
        self.latency.record(elapsed_ms);
    }
}

/// Merges condition specializations from concurrent requests into shared
/// [`TileSimulator::for_conditions`] dispatches.
///
/// Every caller enqueues its `(model, conditions)` ask; whichever thread wins
/// the combiner lock drains the whole queue, groups asks by model,
/// deduplicates the stacked conditions bit-exactly, issues **one** batched
/// dispatch per model over the *unique* conditions, and hands each caller
/// `Arc`-shared engines for its slots. A specialized engine is a pure
/// function of `(model, condition)` and the per-slot results are
/// bit-identical to private dispatches (pinned at `Cmlp::infer_batch`), so
/// neither the batch composition nor the sharing can leak into response
/// bytes. The dedup is where cross-request batching pays: N concurrent
/// requests sweeping the same focus ladder over different masks specialize
/// each condition once instead of N times.
#[derive(Default)]
pub struct ConditionBatcher {
    pending: Mutex<Vec<PendingSpec>>,
    combiner: Mutex<()>,
}

/// A specialization result shared between every waiter that asked for the
/// same `(model, condition)` in one combined dispatch.
pub type SharedEngine = Arc<dyn TileSimulator>;

struct PendingSpec {
    model: String,
    conditions: Vec<ProcessCondition>,
    reply: mpsc::SyncSender<Vec<Option<SharedEngine>>>,
}

/// Bit-exact identity of a condition (`f64` payloads compared by bits, so
/// dedup can never conflate conditions a solo dispatch would distinguish).
fn condition_key(condition: &ProcessCondition) -> (u64, u64) {
    (condition.defocus_nm.to_bits(), condition.dose.to_bits())
}

impl std::fmt::Debug for ConditionBatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConditionBatcher")
            .field("pending", &lock_recover(&self.pending).len())
            .finish()
    }
}

impl ConditionBatcher {
    /// Creates an empty batcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Specializes `model` to `conditions`, possibly sharing one dispatch
    /// with other threads currently specializing the same model.
    ///
    /// `dispatch` resolves a model name to its batched specialization (one
    /// `for_conditions` call on the registry entry); the combining leader
    /// runs it on behalf of every waiter, so it must answer any model name a
    /// concurrent request may ask for and return one slot per condition.
    pub fn specialize<F>(
        &self,
        model: &str,
        conditions: &[ProcessCondition],
        dispatch: F,
    ) -> Vec<Option<SharedEngine>>
    where
        F: Fn(&str, &[ProcessCondition]) -> Vec<Option<Box<dyn TileSimulator>>>,
    {
        let (tx, rx) = mpsc::sync_channel(1);
        lock_recover(&self.pending).push(PendingSpec {
            model: model.to_string(),
            conditions: conditions.to_vec(),
            reply: tx,
        });

        loop {
            match self.combiner.try_lock() {
                Ok(_leading) => {
                    // Leader: serve every queued ask (including our own) in
                    // one batched dispatch per model.
                    let drained = std::mem::take(&mut *lock_recover(&self.pending));
                    Self::serve(drained, &dispatch);
                }
                Err(std::sync::TryLockError::WouldBlock) => {}
                Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                    // A previous leader panicked mid-drain; recover the lock
                    // and keep combining.
                    let _leading = poisoned.into_inner();
                    let drained = std::mem::take(&mut *lock_recover(&self.pending));
                    Self::serve(drained, &dispatch);
                }
            }
            match rx.recv_timeout(Duration::from_millis(1)) {
                Ok(result) => return result,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // The current leader drained before we enqueued, or is
                    // still computing; retry (we may become leader ourselves).
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // The leader panicked after draining our ask but before
                    // answering it — fall back to a private dispatch.
                    return dispatch(model, conditions)
                        .into_iter()
                        .map(|slot| slot.map(SharedEngine::from))
                        .collect();
                }
            }
        }
    }

    fn serve<F>(drained: Vec<PendingSpec>, dispatch: &F)
    where
        F: Fn(&str, &[ProcessCondition]) -> Vec<Option<Box<dyn TileSimulator>>>,
    {
        // Group asks by model, preserving arrival order within each group.
        let mut groups: Vec<(String, Vec<PendingSpec>)> = Vec::new();
        for spec in drained {
            match groups.iter_mut().find(|(name, _)| *name == spec.model) {
                Some((_, specs)) => specs.push(spec),
                None => groups.push((spec.model.clone(), vec![spec])),
            }
        }
        for (model, specs) in groups {
            BATCHER_ASKS_TOTAL.add(specs.len() as u64);
            BATCHER_DISPATCHES_TOTAL.inc();
            // Deduplicate the stacked conditions (first-arrival order): each
            // unique condition is specialized once and shared by every slot
            // that asked for it.
            let mut unique: Vec<(u64, u64)> = Vec::new();
            let mut stacked: Vec<ProcessCondition> = Vec::new();
            let mut asked_slots = 0u64;
            for spec in &specs {
                asked_slots += spec.conditions.len() as u64;
                for condition in &spec.conditions {
                    let key = condition_key(condition);
                    if !unique.contains(&key) {
                        unique.push(key);
                        stacked.push(*condition);
                    }
                }
            }
            BATCHER_CONDITIONS_TOTAL.add(asked_slots);
            BATCHER_CONDITIONS_DEDUPED_TOTAL.add(asked_slots - stacked.len() as u64);
            let results: Vec<Option<SharedEngine>> = dispatch(&model, &stacked)
                .into_iter()
                .map(|slot| slot.map(SharedEngine::from))
                .collect();
            for spec in specs {
                let share: Vec<Option<SharedEngine>> = spec
                    .conditions
                    .iter()
                    .map(|condition| {
                        let key = condition_key(condition);
                        let index = unique
                            .iter()
                            .position(|&k| k == key)
                            .expect("every asked condition was stacked");
                        results[index].clone()
                    })
                    .collect();
                // A waiter that gave up (fallback dispatch) dropped its
                // receiver; delivery failure is fine.
                let _ = spec.reply.send(share);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn queue_is_fifo_and_bounded() {
        let queue = WorkQueue::new(2);
        assert_eq!(queue.capacity(), 2);
        assert!(queue.is_empty());
        queue.try_push(1).unwrap();
        queue.try_push(2).unwrap();
        assert_eq!(queue.len(), 2);
        let (err, rejected) = queue.try_push(3).unwrap_err();
        assert_eq!(err, PushError::Full);
        assert_eq!(rejected, 3);
        assert_eq!(queue.pop(), Some(1));
        queue.try_push(3).unwrap();
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), Some(3));
    }

    #[test]
    fn closed_queue_drains_then_releases_workers() {
        let queue = Arc::new(WorkQueue::new(4));
        queue.try_push(10).unwrap();
        queue.try_push(11).unwrap();
        queue.close();
        assert!(queue.is_closed());
        let (err, _) = queue.try_push(12).unwrap_err();
        assert_eq!(err, PushError::Closed);
        // Queued work survives the close (graceful drain)…
        assert_eq!(queue.pop(), Some(10));
        assert_eq!(queue.pop(), Some(11));
        // …then consumers get the exit signal, including blocked ones.
        assert_eq!(queue.pop(), None);
        let waiter = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        assert_eq!(waiter.join().unwrap(), None::<i32>);
    }

    #[test]
    fn queue_delivers_each_item_exactly_once_across_consumers() {
        let queue = Arc::new(WorkQueue::new(64));
        let total = 200;
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = queue.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        let mut next = 0;
        while next < total {
            if queue.try_push(next).is_ok() {
                next += 1;
            }
        }
        // Give consumers time to drain before closing.
        while !queue.is_empty() {
            std::thread::yield_now();
        }
        queue.close();
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..total).collect::<Vec<_>>());
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let hist = LatencyHistogram::new();
        assert_eq!(hist.quantile_ms(0.5), 0);
        for ms in [0, 1, 3, 7, 15, 40, 90, 90, 90, 450] {
            hist.record(ms);
        }
        assert_eq!(hist.count(), 10);
        // Ranked: buckets ≤1(×2), ≤5, ≤10, ≤20, ≤50, ≤100(×3), ≤500;
        // rank 5 of 10 lands in the ≤20 bucket.
        assert_eq!(hist.quantile_ms(0.5), 20);
        assert_eq!(hist.quantile_ms(0.95), 500);
        assert_eq!(hist.quantile_ms(1.0), 500);
        // The open-ended bucket reports the last finite bound.
        let top = LatencyHistogram::new();
        top.record(u64::MAX / 2);
        assert_eq!(top.quantile_ms(0.99), 60_000);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
        let hist = LatencyHistogram::new();
        // A value exactly at a bound lands in that bucket; one past it lands
        // in the next.
        for (bucket, &upper) in LATENCY_BUCKETS_MS.iter().enumerate() {
            if upper == u64::MAX {
                break;
            }
            hist.record(upper);
            assert_eq!(hist.counts[bucket].load(Ordering::Relaxed), 1, "at {upper}");
            hist.record(upper + 1);
            assert_eq!(
                hist.counts[bucket + 1].load(Ordering::Relaxed),
                1,
                "past {upper}"
            );
            // Reset for the next boundary: drain both buckets.
            hist.counts[bucket].store(0, Ordering::Relaxed);
            hist.counts[bucket + 1].store(0, Ordering::Relaxed);
        }
        // Zero belongs to the first bucket.
        hist.record(0);
        assert_eq!(hist.counts[0].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn histogram_saturates_into_the_open_ended_top_bucket() {
        let hist = LatencyHistogram::new();
        let top = LATENCY_BUCKETS_MS.len() - 1;
        for value in [60_001, u64::MAX - 1, u64::MAX] {
            hist.record(value);
        }
        assert_eq!(hist.counts[top].load(Ordering::Relaxed), 3);
        assert_eq!(hist.count(), 3);
        // The open-ended bucket never reports u64::MAX as a quantile.
        assert_eq!(hist.quantile_ms(1.0), 60_000);
    }

    #[test]
    fn histogram_concurrent_records_lose_nothing() {
        let hist = Arc::new(LatencyHistogram::new());
        let threads = 8;
        let per_thread = 5_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let hist = Arc::clone(&hist);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        // Spread records across many buckets.
                        hist.record((i * 7 + t) % 1_200);
                    }
                });
            }
        });
        assert_eq!(hist.count(), threads * per_thread);
        let bucket_sum: u64 = (0..LATENCY_BUCKETS_MS.len())
            .map(|b| hist.counts[b].load(Ordering::Relaxed))
            .sum();
        assert_eq!(bucket_sum, threads * per_thread);
    }

    #[test]
    fn metrics_record_completion() {
        let metrics = ServerMetrics::new();
        metrics.record_completion(3);
        metrics.record_completion(700);
        assert_eq!(metrics.served.load(Ordering::Relaxed), 2);
        assert_eq!(metrics.latency.count(), 2);
        assert_eq!(metrics.latency.quantile_ms(1.0), 1_000);
    }

    #[test]
    fn batcher_combines_concurrent_asks_into_shared_dispatches() {
        let batcher = Arc::new(ConditionBatcher::new());
        let dispatches = Arc::new(AtomicUsize::new(0));
        let threads = 8;
        let results: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let batcher = Arc::clone(&batcher);
                    let dispatches = Arc::clone(&dispatches);
                    scope.spawn(move || {
                        let conditions = [
                            ProcessCondition::new(t as f64, 1.0),
                            ProcessCondition::new(-(t as f64), 1.0),
                        ];
                        let out = batcher.specialize("m", &conditions, |_, stacked| {
                            dispatches.fetch_add(1, Ordering::Relaxed);
                            // Stand-in dispatch: one `None` per slot (the
                            // real one is pinned bit-identical in
                            // `crates/core`); slot count is the contract.
                            stacked.iter().map(|_| None).collect()
                        });
                        out.len()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|&len| len == 2));
        // Combining must not *increase* dispatch count; under contention it
        // usually shrinks well below one per thread, but even serial
        // execution keeps it at exactly `threads`.
        assert!(dispatches.load(Ordering::Relaxed) <= threads);
    }

    #[test]
    fn batcher_deduplicates_identical_conditions_within_a_dispatch() {
        let batcher = ConditionBatcher::new();
        let dispatched = Mutex::new(Vec::new());
        // One caller asking for a ladder with repeats: the dispatch must see
        // each unique condition once, and every slot must still be answered
        // in ask order.
        let ladder = [
            ProcessCondition::new(-50.0, 1.0),
            ProcessCondition::new(0.0, 1.0),
            ProcessCondition::new(-50.0, 1.0),
            ProcessCondition::new(0.0, 1.0),
            ProcessCondition::new(50.0, 1.0),
        ];
        let out = batcher.specialize("m", &ladder, |_, stacked| {
            dispatched.lock().unwrap().push(stacked.to_vec());
            stacked.iter().map(|_| None).collect()
        });
        assert_eq!(out.len(), ladder.len());
        let dispatched = dispatched.into_inner().unwrap();
        assert_eq!(dispatched.len(), 1);
        assert_eq!(
            dispatched[0],
            [
                ProcessCondition::new(-50.0, 1.0),
                ProcessCondition::new(0.0, 1.0),
                ProcessCondition::new(50.0, 1.0),
            ]
        );
    }

    #[test]
    fn condition_key_is_bit_exact() {
        let a = ProcessCondition::new(0.0, 1.0);
        let b = ProcessCondition::new(-0.0, 1.0);
        // -0.0 == 0.0 numerically, but the encoder may distinguish them;
        // bit-exact keys never conflate what a solo dispatch would not.
        assert_ne!(condition_key(&a), condition_key(&b));
        assert_eq!(condition_key(&a), condition_key(&a.clone()));
    }
}
