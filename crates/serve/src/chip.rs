//! Full-chip simulation: guard-band tiling fan-out over a [`TileSimulator`].
//!
//! A [`ChipPipeline`] decomposes a chip-sized mask with [`TileGrid`], runs
//! every tile window through the wrapped simulator on `litho_parallel`
//! workers, and stitches the tile cores back into a seamless aerial/resist
//! image.
//!
//! # Determinism
//!
//! Tiles are independent work items: each tile's aerial image is computed by
//! exactly one closure call, simulator internals degrade to serial inside
//! workers (`litho_parallel` nested-region rule), and the planned FFT stack
//! is itself bit-identical for any thread count. Stitching copies disjoint
//! owned regions sequentially in tile order on the calling thread, so the
//! stitched output is bit-identical for `NITHO_THREADS = 1, 2, …, N` —
//! the same contract the rest of the workspace pins in
//! `tests/parallel_determinism.rs`.

use litho_math::{ComplexMatrix, RealMatrix};
use litho_optics::{HopkinsSimulator, ProcessCondition};
use nitho::{ConditionedKernels, NithoModel};

use crate::tiling::{TileGrid, TilingConfig};

/// A lithography engine that simulates fixed-size square tiles — the common
/// interface the chip pipeline drives, implemented by both the regressed
/// Nitho model and the rigorous Hopkins reference.
pub trait TileSimulator: Send + Sync {
    /// Edge length of the tiles this simulator accepts, in pixels.
    fn tile_px(&self) -> usize;

    /// Resist development threshold relative to clear-field intensity.
    fn resist_threshold(&self) -> f64;

    /// Physical pixel pitch in nanometres.
    fn pixel_nm(&self) -> f64;

    /// Theoretical resolution element `R = 0.5·λ/NA` in nanometres; sizes
    /// the default guard band.
    fn resolution_nm(&self) -> f64;

    /// Computes the aerial image of one `tile_px × tile_px` mask tile,
    /// normalized to clear-field intensity 1.
    fn simulate_tile(&self, tile: &RealMatrix) -> RealMatrix;

    /// Specializes this engine to a process condition, or `None` when it
    /// cannot serve the condition (e.g. a nominal-only Nitho model asked for
    /// an off-nominal point).
    ///
    /// The returned simulator owns everything it needs (rebuilt SOCS stack
    /// for the rigorous engine, frozen condition kernels for the neural
    /// field), so a process-window fan-out holds one per condition.
    fn for_condition(&self, condition: &ProcessCondition) -> Option<Box<dyn TileSimulator>>;

    /// Specializes this engine to several conditions at once. Per-slot
    /// results are exactly those of a
    /// [`for_condition`](TileSimulator::for_condition) call per slot; engines
    /// whose specialization is one network dispatch override this to batch
    /// the dispatches (see `NithoModel::at_conditions`).
    fn for_conditions(
        &self,
        conditions: &[ProcessCondition],
    ) -> Vec<Option<Box<dyn TileSimulator>>> {
        conditions.iter().map(|c| self.for_condition(c)).collect()
    }

    /// `true` when [`for_conditions`](TileSimulator::for_conditions) actually
    /// amortizes work across conditions (a batched network dispatch), so a
    /// serving tier knows merging specializations from concurrent requests
    /// into one call is a win rather than pointless serialization.
    fn batches_conditions(&self) -> bool {
        false
    }

    /// Kernel-grid shape `(rows, cols)` when this engine can simulate a tile
    /// from its precomputed cropped mask spectrum, `None` otherwise. All
    /// engines specialized from one model share the grid, which lets a
    /// process-window sweep compute each tile's spectrum once and reuse it
    /// across every condition (see [`aerial_sweep`]).
    fn spectrum_dims(&self) -> Option<(usize, usize)> {
        None
    }

    /// Simulates one tile from its cropped, centered mask spectrum (shape
    /// [`spectrum_dims`](TileSimulator::spectrum_dims), `mask_pixels` =
    /// pixel count of the original tile window). Must equal
    /// [`simulate_tile`](TileSimulator::simulate_tile) on the originating
    /// window bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the engine does not support the spectrum path
    /// (`spectrum_dims` returned `None`).
    fn simulate_tile_spectrum(&self, spectrum: &ComplexMatrix, mask_pixels: usize) -> RealMatrix {
        let _ = (spectrum, mask_pixels);
        panic!("this engine does not support spectrum-domain tile simulation");
    }

    /// Guard-band width: two resolution elements (the optical ambit beyond
    /// which kernel tails are negligible), clamped so a tile core remains.
    fn default_halo_px(&self) -> usize {
        let ambit = (2.0 * self.resolution_nm() / self.pixel_nm()).ceil() as usize;
        ambit.min((self.tile_px() - 1) / 2 - 1)
    }
}

impl TileSimulator for NithoModel {
    fn tile_px(&self) -> usize {
        self.optics().tile_px
    }

    fn resist_threshold(&self) -> f64 {
        self.optics().resist_threshold
    }

    fn pixel_nm(&self) -> f64 {
        self.optics().pixel_nm
    }

    fn resolution_nm(&self) -> f64 {
        self.optics().resolution_nm()
    }

    fn simulate_tile(&self, tile: &RealMatrix) -> RealMatrix {
        self.predict_aerial(tile)
    }

    fn spectrum_dims(&self) -> Option<(usize, usize)> {
        let dims = self.kernel_dims();
        Some((dims.rows, dims.cols))
    }

    fn simulate_tile_spectrum(&self, spectrum: &ComplexMatrix, mask_pixels: usize) -> RealMatrix {
        self.predict_aerial_from_spectrum(spectrum, mask_pixels, self.optics().tile_px)
    }

    fn for_condition(&self, condition: &ProcessCondition) -> Option<Box<dyn TileSimulator>> {
        self.at_condition(condition)
            .map(|frozen| Box::new(frozen) as Box<dyn TileSimulator>)
    }

    fn for_conditions(
        &self,
        conditions: &[ProcessCondition],
    ) -> Vec<Option<Box<dyn TileSimulator>>> {
        self.at_conditions(conditions)
            .into_iter()
            .map(|frozen| frozen.map(|k| Box::new(k) as Box<dyn TileSimulator>))
            .collect()
    }

    fn batches_conditions(&self) -> bool {
        // Specializing a conditioned field is one CMLP dispatch per
        // condition; batching those dispatches amortizes the SoA parameter
        // split. A nominal-only model serves a single condition, and the
        // rigorous engine's re-decomposition shares nothing across
        // conditions — neither gains from merging.
        self.config().condition.is_some()
    }
}

/// A neural field frozen at one process condition serves tiles with no
/// network in the loop; its resist threshold carries the condition's dose.
impl TileSimulator for ConditionedKernels {
    fn tile_px(&self) -> usize {
        self.optics().tile_px
    }

    fn resist_threshold(&self) -> f64 {
        self.effective_resist_threshold()
    }

    fn pixel_nm(&self) -> f64 {
        self.optics().pixel_nm
    }

    fn resolution_nm(&self) -> f64 {
        self.optics().resolution_nm()
    }

    fn simulate_tile(&self, tile: &RealMatrix) -> RealMatrix {
        self.predict_aerial(tile)
    }

    fn spectrum_dims(&self) -> Option<(usize, usize)> {
        Some(self.kernels()[0].shape())
    }

    fn simulate_tile_spectrum(&self, spectrum: &ComplexMatrix, mask_pixels: usize) -> RealMatrix {
        self.predict_aerial_from_spectrum(spectrum, mask_pixels, self.optics().tile_px)
    }

    fn for_condition(&self, condition: &ProcessCondition) -> Option<Box<dyn TileSimulator>> {
        // The network was left behind when the kernels were frozen; only the
        // original condition can be re-served.
        (*condition == self.condition()).then(|| Box::new(self.clone()) as Box<dyn TileSimulator>)
    }
}

impl TileSimulator for HopkinsSimulator {
    fn tile_px(&self) -> usize {
        self.config().tile_px
    }

    fn resist_threshold(&self) -> f64 {
        // The effective threshold folds in the exposure dose (t/d); at the
        // nominal dose this is exactly the configured threshold.
        self.resist_model().effective_threshold()
    }

    fn pixel_nm(&self) -> f64 {
        self.config().pixel_nm
    }

    fn resolution_nm(&self) -> f64 {
        self.config().resolution_nm()
    }

    fn simulate_tile(&self, tile: &RealMatrix) -> RealMatrix {
        self.aerial_image(tile)
    }

    fn spectrum_dims(&self) -> Option<(usize, usize)> {
        let dims = self.kernel_dims();
        Some((dims.rows, dims.cols))
    }

    fn simulate_tile_spectrum(&self, spectrum: &ComplexMatrix, mask_pixels: usize) -> RealMatrix {
        let tile = self.config().tile_px;
        self.kernels()
            .aerial_from_cropped_spectrum(spectrum, mask_pixels, tile, tile)
    }

    fn for_condition(&self, condition: &ProcessCondition) -> Option<Box<dyn TileSimulator>> {
        // The rigorous engine serves any condition by re-deriving its
        // TCC/SOCS stack — correct but expensive; this is the baseline the
        // conditioned neural field is benchmarked against.
        Some(Box::new(HopkinsSimulator::at_condition(self, condition)))
    }
}

/// Stitched full-chip simulation result.
#[derive(Debug, Clone)]
pub struct ChipResult {
    /// Stitched aerial image at chip resolution.
    pub aerial: RealMatrix,
    /// Binary resist image (thresholded aerial).
    pub resist: RealMatrix,
    /// Number of tiles simulated.
    pub tiles: usize,
    /// Tile-grid dimensions `(tiles_y, tiles_x)`.
    pub grid: (usize, usize),
    /// Guard-band width used, in pixels.
    pub halo_px: usize,
}

/// The full-chip pipeline: guard-band tiling + parallel tile simulation +
/// deterministic stitching over any [`TileSimulator`].
pub struct ChipPipeline<'a> {
    simulator: &'a dyn TileSimulator,
    tiling: TilingConfig,
}

impl<'a> ChipPipeline<'a> {
    /// Wraps a simulator with its [default halo](TileSimulator::default_halo_px).
    pub fn new(simulator: &'a dyn TileSimulator) -> Self {
        let halo = simulator.default_halo_px();
        Self::with_halo(simulator, halo)
    }

    /// Wraps a simulator with an explicit guard-band width.
    ///
    /// # Panics
    ///
    /// Panics if the halo leaves no tile core (`2·halo >= tile_px`).
    pub fn with_halo(simulator: &'a dyn TileSimulator, halo_px: usize) -> Self {
        Self {
            simulator,
            tiling: TilingConfig::new(simulator.tile_px(), halo_px),
        }
    }

    /// The tiling geometry in use.
    pub fn tiling(&self) -> TilingConfig {
        self.tiling
    }

    /// Plans the tile grid for a chip without simulating it.
    ///
    /// # Panics
    ///
    /// Panics if either chip dimension is zero.
    pub fn plan(&self, chip_rows: usize, chip_cols: usize) -> TileGrid {
        TileGrid::new(self.tiling, chip_rows, chip_cols)
    }

    /// Simulates a full chip mask of any dimensions, returning the stitched
    /// aerial image.
    pub fn aerial(&self, chip: &RealMatrix) -> RealMatrix {
        let grid = self.plan(chip.rows(), chip.cols());
        let mut stitched = RealMatrix::zeros(chip.rows(), chip.cols());
        stitch_chunked(&grid, &mut stitched, |index| {
            let tile = grid.tile(index);
            let window = grid.extract_window(chip, &tile);
            self.simulator.simulate_tile(&window)
        });
        stitched
    }

    /// Simulates a full chip mask end to end: stitched aerial plus the
    /// thresholded resist image.
    pub fn simulate(&self, chip: &RealMatrix) -> ChipResult {
        let grid = self.plan(chip.rows(), chip.cols());
        let aerial = self.aerial(chip);
        let resist = aerial.threshold(self.simulator.resist_threshold());
        ChipResult {
            aerial,
            resist,
            tiles: grid.len(),
            grid: grid.grid_shape(),
            halo_px: self.tiling.halo_px,
        }
    }
}

/// Computes per-tile aerials in bounded chunks and stitches each chunk into
/// `out` before the next chunk is produced, so at most one chunk's worth of
/// tile planes is resident at a time instead of the whole grid's worth.
///
/// Each tile's value is produced by exactly one `compute` call and stitched
/// cores are disjoint, so the result is bit-identical to materializing every
/// tile first and stitching in tile order — for any chunk size and any
/// thread count.
fn stitch_chunked(
    grid: &TileGrid,
    out: &mut RealMatrix,
    compute: impl Fn(usize) -> RealMatrix + Sync,
) {
    // Big enough to keep every worker busy across a chunk, small enough that
    // the transient tile planes stay O(threads), not O(tiles).
    let chunk = 4 * litho_parallel::max_threads().max(1);
    let total = grid.len();
    let mut start = 0;
    while start < total {
        let count = chunk.min(total - start);
        let tile_aerials = litho_parallel::par_map(count, |offset| compute(start + offset));
        for (offset, tile_aerial) in tile_aerials.iter().enumerate() {
            let tile = grid.tile(start + offset);
            grid.stitch_owned(out, &tile, tile_aerial);
        }
        start += count;
    }
}

/// A planned process-window sweep over one chip: the tile grid plus — when
/// every engine shares one kernel grid — each tile window's cropped mask
/// spectrum, computed exactly once and reused by every condition.
///
/// The mask never changes with focus or dose, so recomputing the forward FFT
/// per condition is pure waste (pinned by `tests/spectrum_reuse.rs`). Beyond
/// the planned spectra, [`synthesize_into`](ChipSweep::synthesize_into)
/// renders each condition into a **caller-owned** plane, which is what lets
/// the process-window handler keep O(1) planes resident for an arbitrarily
/// dense focus × dose grid.
pub struct ChipSweep<'a> {
    chip: &'a RealMatrix,
    grid: TileGrid,
    tile_px: usize,
    spectra: Option<((usize, usize), Vec<ComplexMatrix>)>,
}

impl<'a> ChipSweep<'a> {
    /// Plans the grid (and, when the engines share a kernel grid, the
    /// per-tile spectra) for sweeping `chip` under `engines`.
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty, the engines disagree on `tile_px`, or
    /// the halo leaves no tile core.
    pub fn plan<E: AsRef<dyn TileSimulator>>(
        engines: &[E],
        chip: &'a RealMatrix,
        halo_px: usize,
    ) -> Self {
        let first = engines
            .first()
            .expect("aerial_sweep needs an engine")
            .as_ref();
        let tile_px = first.tile_px();
        assert!(
            engines.iter().all(|e| e.as_ref().tile_px() == tile_px),
            "aerial_sweep engines must share one tile size"
        );
        let grid = TileGrid::new(
            TilingConfig::new(tile_px, halo_px),
            chip.rows(),
            chip.cols(),
        );
        let shared_dims = match first.spectrum_dims() {
            Some(dims)
                if engines
                    .iter()
                    .all(|e| e.as_ref().spectrum_dims() == Some(dims)) =>
            {
                Some(dims)
            }
            _ => None,
        };
        // One spectrum per tile window, shared by every condition. A cropped
        // spectrum is kernel-grid sized (a few KB), so holding all of them is
        // part of the accumulator cost, not a per-condition plane.
        let spectra = shared_dims.map(|(kr, kc)| {
            let spectra = litho_parallel::par_map(grid.len(), |index| {
                let tile = grid.tile(index);
                let window = grid.extract_window(chip, &tile);
                litho_fft::soa::cropped_centered_spectrum(&window, kr, kc)
            });
            ((kr, kc), spectra)
        });
        Self {
            chip,
            grid,
            tile_px,
            spectra,
        }
    }

    /// Number of tiles in the planned grid.
    pub fn tiles(&self) -> usize {
        self.grid.len()
    }

    /// Renders `engine`'s stitched full-chip aerial into `out`, overwriting
    /// it. Uses the planned spectra when the engine shares the planned kernel
    /// grid, otherwise simulates each tile window directly — both paths are
    /// bit-identical to [`ChipPipeline::aerial`] with the same engine and
    /// halo, for any thread count (the spectrum path's equality is the
    /// [`TileSimulator::simulate_tile_spectrum`] contract).
    ///
    /// # Panics
    ///
    /// Panics if `out` is not chip-shaped or the engine's tile size differs
    /// from the planned sweep.
    pub fn synthesize_into(&self, engine: &dyn TileSimulator, out: &mut RealMatrix) {
        assert_eq!(
            out.shape(),
            self.chip.shape(),
            "scratch plane must match the chip shape"
        );
        assert_eq!(
            engine.tile_px(),
            self.tile_px,
            "engine tile size must match the planned sweep"
        );
        match &self.spectra {
            Some((dims, spectra)) if engine.spectrum_dims() == Some(*dims) => {
                let mask_pixels = self.tile_px * self.tile_px;
                stitch_chunked(&self.grid, out, |index| {
                    engine.simulate_tile_spectrum(&spectra[index], mask_pixels)
                });
            }
            _ => {
                stitch_chunked(&self.grid, out, |index| {
                    let tile = self.grid.tile(index);
                    let window = self.grid.extract_window(self.chip, &tile);
                    engine.simulate_tile(&window)
                });
            }
        }
    }
}

/// Visitor-style [`aerial_sweep`]: renders each engine's stitched aerial into
/// one shared scratch plane and yields `(engine_index, &aerial)` to `visit`,
/// recycling the plane between conditions. The whole sweep keeps a single
/// chip-sized plane resident (plus the planned spectra) regardless of how
/// many engines it covers.
///
/// # Panics
///
/// Panics if `engines` is empty, the engines disagree on `tile_px`, or the
/// halo leaves no tile core.
pub fn aerial_sweep_with(
    engines: &[Box<dyn TileSimulator>],
    chip: &RealMatrix,
    halo_px: usize,
    mut visit: impl FnMut(usize, &RealMatrix),
) {
    let sweep = ChipSweep::plan(engines, chip, halo_px);
    let mut scratch = RealMatrix::zeros(chip.rows(), chip.cols());
    for (index, engine) in engines.iter().enumerate() {
        sweep.synthesize_into(engine.as_ref(), &mut scratch);
        visit(index, &scratch);
    }
}

/// Simulates the same chip under several engines (one per process condition)
/// that share a single tile geometry, returning one stitched aerial image per
/// engine **in engine order**. Materializing wrapper over [`ChipSweep`] /
/// [`aerial_sweep_with`] — callers that can fold each condition as it is
/// produced should use the visitor form and keep O(1) planes resident.
///
/// # Panics
///
/// Panics if `engines` is empty, the engines disagree on `tile_px`, or the
/// halo leaves no tile core.
pub fn aerial_sweep(
    engines: &[Box<dyn TileSimulator>],
    chip: &RealMatrix,
    halo_px: usize,
) -> Vec<RealMatrix> {
    let sweep = ChipSweep::plan(engines, chip, halo_px);
    engines
        .iter()
        .map(|engine| {
            let mut out = RealMatrix::zeros(chip.rows(), chip.cols());
            sweep.synthesize_into(engine.as_ref(), &mut out);
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_optics::OpticalConfig;

    fn fast_optics() -> OpticalConfig {
        OpticalConfig::builder()
            .tile_px(64)
            .pixel_nm(8.0)
            .kernel_count(6)
            .build()
    }

    #[test]
    fn hopkins_implements_tile_simulator() {
        let optics = fast_optics();
        let sim = HopkinsSimulator::new(&optics);
        let tiled: &dyn TileSimulator = &sim;
        assert_eq!(tiled.tile_px(), 64);
        assert_eq!(tiled.resist_threshold(), optics.resist_threshold);
        assert_eq!(tiled.pixel_nm(), 8.0);
        // 2R = 142.96 nm -> 18 px at 8 nm/px.
        assert_eq!(tiled.default_halo_px(), 18);
        let aerial = tiled.simulate_tile(&RealMatrix::filled(64, 64, 1.0));
        assert_eq!(aerial.shape(), (64, 64));
    }

    #[test]
    fn nitho_implements_tile_simulator() {
        let optics = fast_optics();
        let mut model = nitho::NithoModel::new(
            nitho::NithoConfig {
                kernel_side: Some(9),
                ..nitho::NithoConfig::fast()
            },
            &optics,
        );
        model.refresh_kernels();
        let tiled: &dyn TileSimulator = &model;
        assert_eq!(tiled.tile_px(), 64);
        let aerial = tiled.simulate_tile(&RealMatrix::zeros(64, 64));
        assert_eq!(aerial.shape(), (64, 64));
    }

    #[test]
    fn for_condition_specializes_every_engine_kind() {
        let optics = fast_optics();
        let hopkins = HopkinsSimulator::new(&optics);
        let defocused = ProcessCondition::new(120.0, 1.1);

        // Rigorous engine: any condition, dose folded into the threshold.
        let h: &dyn TileSimulator = &hopkins;
        let rebuilt = h.for_condition(&defocused).expect("hopkins serves all");
        assert_eq!(rebuilt.tile_px(), 64);
        assert!((rebuilt.resist_threshold() - optics.resist_threshold / 1.1).abs() < 1e-15);
        let mask = RealMatrix::from_fn(64, 64, |_, j| if j % 16 < 8 { 1.0 } else { 0.0 });
        let nominal_aerial = h.simulate_tile(&mask);
        let defocused_aerial = rebuilt.simulate_tile(&mask);
        assert!(
            nominal_aerial
                .zip_map(&defocused_aerial, |a, b| (a - b).abs())
                .max()
                > 1e-6
        );

        // Nominal-only Nitho: nominal is served, off-nominal refused.
        let mut model = nitho::NithoModel::new(
            nitho::NithoConfig {
                kernel_side: Some(9),
                ..nitho::NithoConfig::fast()
            },
            &optics,
        );
        model.refresh_kernels();
        let n: &dyn TileSimulator = &model;
        assert!(n.for_condition(&defocused).is_none());
        let nominal = n
            .for_condition(&ProcessCondition::nominal())
            .expect("nominal served");
        let a = n.simulate_tile(&mask);
        let b = nominal.simulate_tile(&mask);
        assert!(a.zip_map(&b, |x, y| (x - y).abs()).max() < 1e-15);

        // Conditioned Nitho: every condition served; the frozen engine only
        // re-serves its own condition.
        let mut conditioned = nitho::NithoModel::new(
            nitho::NithoConfig {
                kernel_side: Some(9),
                condition: Some(nitho::ConditionEncoding::default()),
                ..nitho::NithoConfig::fast()
            },
            &optics,
        );
        conditioned.refresh_kernels();
        let c: &dyn TileSimulator = &conditioned;
        let frozen = c.for_condition(&defocused).expect("conditioned serves all");
        assert!((frozen.resist_threshold() - optics.resist_threshold / 1.1).abs() < 1e-15);
        assert!(frozen.for_condition(&defocused).is_some());
        assert!(frozen.for_condition(&ProcessCondition::nominal()).is_none());

        // Batching hints: only the conditioned Nitho path gains from merging
        // specializations into one inference dispatch.
        assert!(!h.batches_conditions());
        assert!(!n.batches_conditions());
        assert!(c.batches_conditions());

        // Plural specialization agrees slot-for-slot with the solo calls,
        // both through the default loop (nominal-only model) and the batched
        // override (conditioned model).
        let asked = [ProcessCondition::nominal(), defocused];
        let plural = n.for_conditions(&asked);
        assert!(plural[0].is_some() && plural[1].is_none());
        let batched = c.for_conditions(&asked);
        let solo_aerial = c
            .for_condition(&defocused)
            .expect("solo specialization")
            .simulate_tile(&mask);
        let batch_aerial = batched[1]
            .as_ref()
            .expect("batched specialization")
            .simulate_tile(&mask);
        assert!(
            solo_aerial
                .zip_map(&batch_aerial, |x, y| (x - y).abs())
                .max()
                < 1e-15
        );
    }

    #[test]
    fn dark_chip_yields_dark_stitched_image() {
        let sim = HopkinsSimulator::new(&fast_optics());
        let pipeline = ChipPipeline::new(&sim);
        let result = pipeline.simulate(&RealMatrix::zeros(100, 150));
        assert_eq!(result.aerial.shape(), (100, 150));
        assert!(result.aerial.max() < 1e-20);
        assert!(result.resist.iter().all(|&v| v == 0.0));
        assert_eq!(result.grid.0 * result.grid.1, result.tiles);
        assert_eq!(result.halo_px, pipeline.tiling().halo_px);
    }

    #[test]
    fn clear_chip_interior_prints_near_unit_intensity() {
        let sim = HopkinsSimulator::new(&fast_optics());
        let pipeline = ChipPipeline::new(&sim);
        let aerial = pipeline.aerial(&RealMatrix::filled(128, 128, 1.0));
        // Away from the chip boundary (where the dark field bleeds in) the
        // clear field must print at intensity ~1.
        let interior = aerial.submatrix(32, 32, 64, 64);
        assert!(
            (interior.mean() - 1.0).abs() < 0.05,
            "interior clear-field intensity {}",
            interior.mean()
        );
    }

    #[test]
    fn chip_pipeline_handles_chip_smaller_than_tile() {
        let sim = HopkinsSimulator::new(&fast_optics());
        let pipeline = ChipPipeline::with_halo(&sim, 16); // 32-px core
        let result = pipeline.simulate(&RealMatrix::filled(24, 32, 1.0));
        assert_eq!(result.aerial.shape(), (24, 32));
        assert_eq!(result.tiles, 1);
        // A dimension one pixel past the core takes a second tile.
        assert_eq!(pipeline.simulate(&RealMatrix::filled(24, 33, 1.0)).tiles, 2);
    }
}
