//! Fault-tolerant wafer-scale job layer: sharded workers, checkpointed
//! resume, failure injection.
//!
//! A job shards a reticle-scale layout into contiguous runs of guard-band
//! tiles ([`TileGrid`] order), fans the shards over `nitho-serve --worker`
//! child processes on local sockets (the in-crate [`Json`] codec is the wire
//! format), and stitches the shard results into one full-chip aerial/resist
//! image. Robustness is the point:
//!
//! * **Lease = RPC timeout.** A shard is leased to exactly one driver thread
//!   for the duration of one `/v1/shard` call bounded by the configured
//!   lease; the driver either completes the shard or requeues it, so no
//!   shard is ever stranded by a hung or killed worker.
//! * **Bounded retry with jittered exponential backoff.** A failed attempt
//!   requeues the shard with `backoff · 2^(attempt-1)` plus a deterministic
//!   FNV-derived jitter; after `max_attempts` the job fails cleanly.
//! * **Work stealing.** Drivers claim from one shared queue; when a worker
//!   dies its driver exits and surviving drivers pick up the requeued
//!   shards (counted in `litho_jobs_steals_total`).
//! * **Per-shard checkpoints.** Each completed shard is persisted with the
//!   NITHOCKPT discipline — write tmp, fsync, rename, fsync dir — under a
//!   job fingerprint, so a killed supervisor resumes from the last completed
//!   shard set. Truncated or corrupt files are rejected (counted) and
//!   recomputed, never a parse error.
//! * **Graceful degradation.** When no workers can be spawned (or they all
//!   die), the supervisor finishes remaining shards in process.
//!
//! Determinism: each tile's aerial is produced by one deterministic
//! `simulate_tile` call, shard values ride the lossless shortest-roundtrip
//! JSON number encoding, and stitching writes disjoint owned regions at
//! fixed grid coordinates — so the stitched bytes are identical for any
//! worker count, any failure/retry schedule, and any resume point (pinned
//! by `tests/jobs_process.rs`). See DESIGN.md §13.

use std::fs::{self, File};
use std::io::{self, Write as _};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use litho_math::RealMatrix;
use litho_obs::{Counter, Gauge, Histogram};

use crate::chip::TileSimulator;
use crate::http::http_request_with_timeout;
use crate::json::Json;
use crate::pw::MaskSpec;
use crate::queue::LATENCY_BUCKETS_MS;
use crate::registry::ModelRegistry;
use crate::tiling::{TileGrid, TilingConfig};

/// Jobs submitted.
static JOBS_SUBMITTED_TOTAL: Counter = Counter::new(
    "litho_jobs_submitted_total",
    "jobs accepted by the job layer",
);
/// Jobs that reached the stitched result.
static JOBS_COMPLETED_TOTAL: Counter =
    Counter::new("litho_jobs_completed_total", "jobs completed successfully");
/// Jobs that failed permanently.
static JOBS_FAILED_TOTAL: Counter =
    Counter::new("litho_jobs_failed_total", "jobs failed permanently");
/// Shards completed (first completion only).
static JOBS_SHARDS_COMPLETED_TOTAL: Counter = Counter::new(
    "litho_jobs_shards_completed_total",
    "shards completed across all jobs",
);
/// Shard attempts requeued after a failure.
static JOBS_RETRIES_TOTAL: Counter = Counter::new(
    "litho_jobs_retries_total",
    "shard attempts requeued after a failure",
);
/// Shards claimed by a different executor than their previous attempt.
static JOBS_STEALS_TOTAL: Counter = Counter::new(
    "litho_jobs_steals_total",
    "shards stolen by a surviving executor after a failed attempt elsewhere",
);
/// Shards restored from checkpoints during the pre-run resume scan.
static JOBS_RESUMED_SHARDS_TOTAL: Counter = Counter::new(
    "litho_jobs_resumed_shards_total",
    "shards restored from checkpoints at job start",
);
/// Shards restored from a checkpoint mid-run (a retry found a valid file).
static JOBS_CHECKPOINT_HITS_TOTAL: Counter = Counter::new(
    "litho_jobs_checkpoint_hits_total",
    "shard attempts satisfied from an existing checkpoint",
);
/// Checkpoints rejected (truncated, checksum or fingerprint mismatch).
static JOBS_CHECKPOINT_REJECTS_TOTAL: Counter = Counter::new(
    "litho_jobs_checkpoint_rejects_total",
    "shard checkpoints rejected and recomputed",
);
/// Failures injected by the active [`FailurePlan`].
static JOBS_INJECTED_TOTAL: Counter = Counter::new(
    "litho_jobs_injected_failures_total",
    "failures injected by the NITHO_JOB_FAILURES plan",
);
/// Worker processes spawned.
static JOBS_WORKERS_SPAWNED_TOTAL: Counter = Counter::new(
    "litho_jobs_workers_spawned_total",
    "worker child processes spawned for jobs",
);
/// Shards executed by the in-process fallback path.
static JOBS_FALLBACK_SHARDS_TOTAL: Counter = Counter::new(
    "litho_jobs_fallback_shards_total",
    "shards executed in process after worker degradation",
);
/// Jobs currently running.
static JOBS_ACTIVE: Gauge = Gauge::new("litho_jobs_active", "jobs currently running");
/// Per-shard wall time (RPC or in-process compute), milliseconds.
static JOBS_SHARD_LATENCY: Histogram = Histogram::with_label(
    "litho_jobs_shard_latency_ms",
    "per-shard execution latency",
    "unit=\"ms\"",
    &LATENCY_BUCKETS_MS,
);

/// Registers the job-layer metrics (called from
/// [`register_all_metrics`](crate::service::register_all_metrics)).
pub(crate) fn register_job_metrics() {
    litho_obs::register(&JOBS_SUBMITTED_TOTAL);
    litho_obs::register(&JOBS_COMPLETED_TOTAL);
    litho_obs::register(&JOBS_FAILED_TOTAL);
    litho_obs::register(&JOBS_SHARDS_COMPLETED_TOTAL);
    litho_obs::register(&JOBS_RETRIES_TOTAL);
    litho_obs::register(&JOBS_STEALS_TOTAL);
    litho_obs::register(&JOBS_RESUMED_SHARDS_TOTAL);
    litho_obs::register(&JOBS_CHECKPOINT_HITS_TOTAL);
    litho_obs::register(&JOBS_CHECKPOINT_REJECTS_TOTAL);
    litho_obs::register(&JOBS_INJECTED_TOTAL);
    litho_obs::register(&JOBS_WORKERS_SPAWNED_TOTAL);
    litho_obs::register(&JOBS_FALLBACK_SHARDS_TOTAL);
    litho_obs::register(&JOBS_ACTIVE);
    litho_obs::register(&JOBS_SHARD_LATENCY);
}

/// 64-bit FNV-1a over `bytes` — job fingerprints, checkpoint checksums and
/// the deterministic backoff jitter all hash with it.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Failure injection plan: which shards get which fault, applied **once**
/// per shard so the recovery path converges deterministically.
///
/// Parsed from `NITHO_JOB_FAILURES`, e.g. `"kill=0;stall=1;drop=2,3;corrupt=4"`:
///
/// * `kill` — the worker executing the shard exits mid-request (SIGKILL
///   equivalent; exercises work stealing / fallback).
/// * `stall` — the worker sleeps past the shard lease (exercises the lease
///   timeout + reassignment).
/// * `drop` — the supervisor discards the shard's result after a successful
///   compute (exercises retry).
/// * `corrupt` — the shard's checkpoint is truncated after the write
///   (exercises checkpoint rejection + self-heal recompute).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailurePlan {
    /// Shards whose first successful result is discarded.
    pub drop_shards: Vec<usize>,
    /// Shards whose first attempt stalls past the lease.
    pub stall_shards: Vec<usize>,
    /// Shards whose first attempt kills its worker.
    pub kill_shards: Vec<usize>,
    /// Shards whose first checkpoint is corrupted after the write.
    pub corrupt_shards: Vec<usize>,
}

impl FailurePlan {
    /// `true` when no fault is planned.
    pub fn is_empty(&self) -> bool {
        self.drop_shards.is_empty()
            && self.stall_shards.is_empty()
            && self.kill_shards.is_empty()
            && self.corrupt_shards.is_empty()
    }

    /// Parses a `kind=i,j;kind=k` spec.
    ///
    /// # Errors
    ///
    /// Returns a message on an unknown fault kind or a malformed index.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FailurePlan::default();
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let (kind, list) = clause
                .split_once('=')
                .ok_or_else(|| format!("failure clause {clause:?} is not kind=indices"))?;
            let shards = match kind.trim() {
                "drop" => &mut plan.drop_shards,
                "stall" => &mut plan.stall_shards,
                "kill" => &mut plan.kill_shards,
                "corrupt" => &mut plan.corrupt_shards,
                other => return Err(format!("unknown failure kind {other:?}")),
            };
            for index in list.split(',').map(str::trim).filter(|i| !i.is_empty()) {
                shards.push(
                    index
                        .parse::<usize>()
                        .map_err(|_| format!("bad shard index {index:?} in {clause:?}"))?,
                );
            }
        }
        Ok(plan)
    }

    /// Reads `NITHO_JOB_FAILURES`; a parse error warns and injects nothing.
    pub fn from_env() -> Self {
        match std::env::var("NITHO_JOB_FAILURES") {
            Ok(spec) if !spec.trim().is_empty() => match Self::parse(&spec) {
                Ok(plan) => plan,
                Err(err) => {
                    eprintln!("nitho-serve: ignoring NITHO_JOB_FAILURES: {err}");
                    FailurePlan::default()
                }
            },
            _ => FailurePlan::default(),
        }
    }
}

/// How to launch `nitho-serve --worker` children: the binary plus the
/// profile arguments the supervisor wants mirrored (e.g. `--fast`,
/// `--checkpoint-dir`). The job layer appends the worker-protocol flags.
#[derive(Debug, Clone)]
pub struct WorkerLauncher {
    /// Worker executable (normally `std::env::current_exe()`).
    pub program: PathBuf,
    /// Profile arguments prepended before the worker-protocol flags.
    pub args: Vec<String>,
}

/// Job-layer configuration; every knob has a `NITHO_JOB_*` env row (see the
/// README table).
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Worker processes to spawn per job (`0` = always in process).
    pub workers: usize,
    /// Tiles per shard (contiguous in grid order).
    pub shard_tiles: usize,
    /// Shard lease: the `/v1/shard` RPC timeout. A worker that stalls past
    /// it loses the shard.
    pub lease: Duration,
    /// Attempts per shard before the job fails (retries + 1).
    pub max_attempts: u32,
    /// Base of the exponential backoff between attempts.
    pub backoff: Duration,
    /// Per-shard checkpoint root; `None` disables resume.
    pub checkpoint_dir: Option<PathBuf>,
    /// Active failure-injection plan.
    pub failures: FailurePlan,
    /// Worker launcher; `None` forces in-process execution.
    pub launcher: Option<WorkerLauncher>,
}

impl Default for JobConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            shard_tiles: 4,
            lease: Duration::from_secs(15),
            max_attempts: 4,
            backoff: Duration::from_millis(250),
            checkpoint_dir: None,
            failures: FailurePlan::default(),
            launcher: None,
        }
    }
}

impl JobConfig {
    /// Reads the `NITHO_JOB_*` environment knobs over the defaults.
    pub fn from_env() -> Self {
        let defaults = Self::default();
        Self {
            workers: env_parse("NITHO_JOB_WORKERS", defaults.workers),
            shard_tiles: env_parse("NITHO_JOB_SHARD_TILES", defaults.shard_tiles),
            lease: Duration::from_millis(env_parse(
                "NITHO_JOB_LEASE_MS",
                defaults.lease.as_millis() as u64,
            )),
            max_attempts: env_parse::<u32>("NITHO_JOB_RETRIES", defaults.max_attempts - 1)
                .saturating_add(1),
            backoff: Duration::from_millis(env_parse(
                "NITHO_JOB_BACKOFF_MS",
                defaults.backoff.as_millis() as u64,
            )),
            checkpoint_dir: std::env::var("NITHO_JOB_CHECKPOINT_DIR")
                .ok()
                .filter(|dir| !dir.trim().is_empty())
                .map(PathBuf::from),
            failures: FailurePlan::from_env(),
            launcher: None,
        }
    }

    /// Clamps every knob into its serviceable range.
    #[must_use]
    pub fn sanitized(mut self) -> Self {
        self.workers = self.workers.min(16);
        self.shard_tiles = self.shard_tiles.max(1);
        self.lease = self
            .lease
            .clamp(Duration::from_millis(50), Duration::from_secs(600));
        self.max_attempts = self.max_attempts.clamp(1, 16);
        self.backoff = self
            .backoff
            .clamp(Duration::from_millis(1), Duration::from_secs(10));
        self
    }

    /// Attaches a worker launcher.
    #[must_use]
    pub fn with_launcher(mut self, launcher: WorkerLauncher) -> Self {
        self.launcher = Some(launcher);
        self
    }
}

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|value| value.trim().parse().ok())
        .unwrap_or(default)
}

/// A `POST /v1/jobs` request.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Model name; `None` selects the registry default.
    pub model: Option<String>,
    /// The chip mask.
    pub mask: MaskSpec,
    /// Guard-band override in pixels.
    pub halo_px: Option<usize>,
    /// Tiles-per-shard override.
    pub shard_tiles: Option<usize>,
}

impl JobRequest {
    /// Serializes the request body.
    pub fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        if let Some(model) = &self.model {
            fields.push(("model", Json::string(model)));
        }
        fields.push(("mask", self.mask.to_json()));
        if let Some(halo) = self.halo_px {
            fields.push(("halo_px", Json::Number(halo as f64)));
        }
        if let Some(shard_tiles) = self.shard_tiles {
            fields.push(("shard_tiles", Json::Number(shard_tiles as f64)));
        }
        Json::object(fields)
    }

    /// Parses a request body.
    ///
    /// # Errors
    ///
    /// Returns a protocol-level message on any malformed member.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let model = match doc.get("model") {
            None => None,
            Some(value) => Some(
                value
                    .as_str()
                    .ok_or("\"model\" must be a string")?
                    .to_owned(),
            ),
        };
        let mask = MaskSpec::from_json(doc.get("mask").ok_or("missing \"mask\"")?)?;
        let halo_px = match doc.get("halo_px") {
            None => None,
            Some(value) => Some(value.as_usize().ok_or("\"halo_px\" must be an integer")?),
        };
        let shard_tiles = match doc.get("shard_tiles") {
            None => None,
            Some(value) => {
                let count = value
                    .as_usize()
                    .ok_or("\"shard_tiles\" must be a positive integer")?;
                if count == 0 {
                    return Err("\"shard_tiles\" must be a positive integer".to_owned());
                }
                Some(count)
            }
        };
        Ok(Self {
            model,
            mask,
            halo_px,
            shard_tiles,
        })
    }
}

/// A fault a supervisor asks a worker to exhibit while serving a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardInjection {
    /// Sleep this long before computing (used to blow the lease).
    StallMs(u64),
    /// Exit the worker process mid-request (SIGKILL equivalent).
    Kill,
}

/// A `POST /v1/shard` request: one contiguous run of tiles of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRequest {
    /// Model name (never defaulted on the wire).
    pub model: String,
    /// The full chip mask (workers re-rasterize; rect masks stay tiny).
    pub mask: MaskSpec,
    /// Guard band in pixels.
    pub halo_px: usize,
    /// First tile index of the shard (row-major grid order).
    pub start_tile: usize,
    /// Number of tiles in the shard.
    pub tile_count: usize,
    /// Job fingerprint, echoed in the response. Carried as a hex *string*
    /// on the wire: a JSON number is an f64 and cannot hold every u64.
    pub fingerprint: u64,
    /// Failure injection for this attempt (honored in worker mode only).
    pub inject: Option<ShardInjection>,
}

impl ShardRequest {
    /// Serializes the request body.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("model", Json::string(&self.model)),
            ("mask", self.mask.to_json()),
            ("halo_px", Json::Number(self.halo_px as f64)),
            ("start_tile", Json::Number(self.start_tile as f64)),
            ("tile_count", Json::Number(self.tile_count as f64)),
            (
                "fingerprint",
                Json::string(&format!("{:016x}", self.fingerprint)),
            ),
        ];
        match self.inject {
            None => {}
            Some(ShardInjection::StallMs(ms)) => fields.push((
                "inject",
                Json::object(vec![("stall_ms", Json::Number(ms as f64))]),
            )),
            Some(ShardInjection::Kill) => fields.push(("inject", Json::string("kill"))),
        }
        Json::object(fields)
    }

    /// Parses a request body.
    ///
    /// # Errors
    ///
    /// Returns a protocol-level message on any malformed member.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let model = doc
            .get("model")
            .and_then(Json::as_str)
            .ok_or("\"model\" must be a string")?
            .to_owned();
        let mask = MaskSpec::from_json(doc.get("mask").ok_or("missing \"mask\"")?)?;
        let halo_px = doc
            .get("halo_px")
            .and_then(Json::as_usize)
            .ok_or("\"halo_px\" must be an integer")?;
        let start_tile = doc
            .get("start_tile")
            .and_then(Json::as_usize)
            .ok_or("\"start_tile\" must be an integer")?;
        let tile_count = doc
            .get("tile_count")
            .and_then(Json::as_usize)
            .filter(|&count| count > 0)
            .ok_or("\"tile_count\" must be a positive integer")?;
        let fingerprint = doc
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(|hex| u64::from_str_radix(hex, 16).ok())
            .ok_or("\"fingerprint\" must be a hex string")?;
        let inject = match doc.get("inject") {
            None => None,
            Some(Json::String(kind)) if kind == "kill" => Some(ShardInjection::Kill),
            Some(value) => match value.get("stall_ms").and_then(Json::as_f64) {
                Some(ms) if ms >= 0.0 && ms.fract() == 0.0 => {
                    Some(ShardInjection::StallMs(ms as u64))
                }
                _ => return Err("\"inject\" must be \"kill\" or {\"stall_ms\": n}".to_owned()),
            },
        };
        Ok(Self {
            model,
            mask,
            halo_px,
            start_tile,
            tile_count,
            fingerprint,
            inject,
        })
    }
}

/// A `POST /v1/shard` response: the owned-region aerial values of the
/// shard's tiles, concatenated in tile order, row-major within each tile.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardResponse {
    /// Echo of the request fingerprint.
    pub fingerprint: u64,
    /// Echo of the shard geometry.
    pub start_tile: usize,
    /// Echo of the shard geometry.
    pub tile_count: usize,
    /// Owned-region aerial values.
    pub values: Vec<f64>,
}

impl ShardResponse {
    /// Serializes the response body.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            (
                "fingerprint",
                Json::string(&format!("{:016x}", self.fingerprint)),
            ),
            ("start_tile", Json::Number(self.start_tile as f64)),
            ("tile_count", Json::Number(self.tile_count as f64)),
            ("values", Json::NumberArray(self.values.clone())),
        ])
    }

    /// Parses a response body.
    ///
    /// # Errors
    ///
    /// Returns a protocol-level message on any malformed member.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let fingerprint = doc
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(|hex| u64::from_str_radix(hex, 16).ok())
            .ok_or("\"fingerprint\" must be a hex string")?;
        let start_tile = doc
            .get("start_tile")
            .and_then(Json::as_usize)
            .ok_or("\"start_tile\" must be an integer")?;
        let tile_count = doc
            .get("tile_count")
            .and_then(Json::as_usize)
            .ok_or("\"tile_count\" must be an integer")?;
        let values = doc
            .get("values")
            .and_then(Json::to_numbers)
            .ok_or("\"values\" must be a numeric array")?;
        Ok(Self {
            fingerprint,
            start_tile,
            tile_count,
            values,
        })
    }
}

/// Computes one shard: simulates tiles `start..start + count` and returns
/// their owned-region aerial values concatenated in tile order, row-major
/// within each tile. Workers and the in-process fallback share this exact
/// function, which is the structural basis of the bit-identity contract.
pub fn compute_shard(
    simulator: &dyn TileSimulator,
    chip: &RealMatrix,
    grid: &TileGrid,
    start_tile: usize,
    tile_count: usize,
) -> Vec<f64> {
    let _span = litho_obs::span("jobs.shard");
    let mut values = Vec::with_capacity(shard_value_len(grid, start_tile, tile_count));
    for index in start_tile..start_tile + tile_count {
        let tile = grid.tile(index);
        let window = grid.extract_window(chip, &tile);
        let aerial = simulator.simulate_tile(&window);
        let (origin_r, origin_c) = tile.window_origin;
        for r in tile.owned_rows.0..tile.owned_rows.1 {
            for c in tile.owned_cols.0..tile.owned_cols.1 {
                values.push(
                    aerial[(
                        (r as i64 - origin_r) as usize,
                        (c as i64 - origin_c) as usize,
                    )],
                );
            }
        }
    }
    values
}

/// Number of shards a `tiles`-tile grid splits into at `shard_tiles` each.
pub fn shard_count(tiles: usize, shard_tiles: usize) -> usize {
    tiles.div_ceil(shard_tiles.max(1))
}

/// `(start_tile, tile_count)` of shard `shard`.
fn shard_range(tiles: usize, shard_tiles: usize, shard: usize) -> (usize, usize) {
    let start = shard * shard_tiles;
    (start, shard_tiles.min(tiles - start))
}

/// Total owned-region pixels of tiles `start..start + count`.
fn shard_value_len(grid: &TileGrid, start_tile: usize, tile_count: usize) -> usize {
    (start_tile..start_tile + tile_count)
        .map(|index| {
            let tile = grid.tile(index);
            tile.owned_height() * tile.owned_width()
        })
        .sum()
}

// --- shard checkpoints -----------------------------------------------------

const SHARD_MAGIC: &[u8; 9] = b"NITHOJOBS";
const SHARD_VERSION: u32 = 1;

fn shard_path(job_dir: &Path, shard: usize) -> PathBuf {
    job_dir.join(format!("shard_{shard:05}.ckpt"))
}

/// Writes a shard checkpoint atomically: tmp file, flush, **fsync**, rename,
/// best-effort directory fsync — a crash leaves either the old file or the
/// complete new one, and a torn write can never survive a power cut as a
/// plausible-looking file.
fn save_shard_checkpoint(
    path: &Path,
    job_fingerprint: u64,
    shard: usize,
    start_tile: usize,
    tile_count: usize,
    values: &[f64],
) -> io::Result<()> {
    let mut payload = Vec::with_capacity(SHARD_MAGIC.len() + 40 + values.len() * 8);
    payload.extend_from_slice(SHARD_MAGIC);
    payload.extend_from_slice(&SHARD_VERSION.to_le_bytes());
    payload.extend_from_slice(&job_fingerprint.to_le_bytes());
    payload.extend_from_slice(&(shard as u32).to_le_bytes());
    payload.extend_from_slice(&(start_tile as u32).to_le_bytes());
    payload.extend_from_slice(&(tile_count as u32).to_le_bytes());
    payload.extend_from_slice(&(values.len() as u64).to_le_bytes());
    let value_bytes_start = payload.len();
    for value in values {
        payload.extend_from_slice(&value.to_le_bytes());
    }
    let checksum = fnv1a(&payload[value_bytes_start..]);
    payload.extend_from_slice(&checksum.to_le_bytes());

    let tmp = path.with_extension("ckpt.tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&payload)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Loads and validates a shard checkpoint. Truncation reads as
/// [`io::ErrorKind::UnexpectedEof`], any mismatch (magic, version,
/// fingerprint, geometry, checksum) as [`io::ErrorKind::InvalidData`];
/// either way the caller rejects the file and recomputes the shard.
fn load_shard_checkpoint(
    path: &Path,
    job_fingerprint: u64,
    shard: usize,
    start_tile: usize,
    tile_count: usize,
    expected_len: usize,
) -> io::Result<Vec<f64>> {
    let data = fs::read(path)?;
    let mut cursor = 0usize;
    let take = |cursor: &mut usize, n: usize| -> io::Result<&[u8]> {
        if data.len() - *cursor < n {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated shard checkpoint",
            ));
        }
        let slice = &data[*cursor..*cursor + n];
        *cursor += n;
        Ok(slice)
    };
    let invalid = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_owned());
    if take(&mut cursor, SHARD_MAGIC.len())? != SHARD_MAGIC {
        return Err(invalid("bad shard checkpoint magic"));
    }
    let u32_at = |slice: &[u8]| u32::from_le_bytes(slice.try_into().expect("4 bytes"));
    let u64_at = |slice: &[u8]| u64::from_le_bytes(slice.try_into().expect("8 bytes"));
    if u32_at(take(&mut cursor, 4)?) != SHARD_VERSION {
        return Err(invalid("unsupported shard checkpoint version"));
    }
    if u64_at(take(&mut cursor, 8)?) != job_fingerprint {
        return Err(invalid("shard checkpoint fingerprint mismatch"));
    }
    if u32_at(take(&mut cursor, 4)?) != shard as u32 {
        return Err(invalid("shard checkpoint index mismatch"));
    }
    if u32_at(take(&mut cursor, 4)?) != start_tile as u32
        || u32_at(take(&mut cursor, 4)?) != tile_count as u32
    {
        return Err(invalid("shard checkpoint geometry mismatch"));
    }
    if u64_at(take(&mut cursor, 8)?) != expected_len as u64 {
        return Err(invalid("shard checkpoint length mismatch"));
    }
    let value_bytes = take(&mut cursor, expected_len * 8)?;
    let checksum = fnv1a(value_bytes);
    let values: Vec<f64> = value_bytes
        .chunks_exact(8)
        .map(|chunk| f64::from_le_bytes(chunk.try_into().expect("8 bytes")))
        .collect();
    if u64_at(take(&mut cursor, 8)?) != checksum {
        return Err(invalid("shard checkpoint checksum mismatch"));
    }
    if cursor != data.len() {
        return Err(invalid("trailing bytes after shard checkpoint"));
    }
    Ok(values)
}

// --- job state -------------------------------------------------------------

/// Lifecycle phase of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Shards outstanding.
    Running,
    /// Stitched result available.
    Done,
    /// Failed permanently; see the status error.
    Failed,
}

impl JobPhase {
    /// Wire label (`"running"` / `"done"` / `"failed"`).
    pub fn label(self) -> &'static str {
        match self {
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Failed => "failed",
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Pending,
    Leased,
    Done,
}

struct Slot {
    state: SlotState,
    attempt: u32,
    not_before: Instant,
    last_worker: Option<usize>,
}

/// Pending (not yet applied) injections, one flag per shard per fault kind.
struct InjectPending {
    drop: Vec<bool>,
    stall: Vec<bool>,
    kill: Vec<bool>,
    corrupt: Vec<bool>,
}

impl InjectPending {
    fn plan(plan: &FailurePlan, shards: usize) -> Self {
        let mark = |indices: &[usize]| {
            let mut flags = vec![false; shards];
            for &index in indices {
                if index < shards {
                    flags[index] = true;
                }
            }
            flags
        };
        Self {
            drop: mark(&plan.drop_shards),
            stall: mark(&plan.stall_shards),
            kill: mark(&plan.kill_shards),
            corrupt: mark(&plan.corrupt_shards),
        }
    }
}

struct JobInner {
    phase: JobPhase,
    slots: Vec<Slot>,
    results: Vec<Option<Vec<f64>>>,
    inject: InjectPending,
    done_shards: usize,
    retries: u64,
    steals: u64,
    resumed: u64,
    checkpoint_hits: u64,
    checkpoint_rejects: u64,
    injected: u64,
    fallback_shards: u64,
    worker_pids: Vec<u32>,
    error: Option<String>,
    result_body: Option<Arc<String>>,
}

/// One sharded job.
pub struct Job {
    id: String,
    fingerprint: u64,
    model: String,
    mask: MaskSpec,
    halo_px: usize,
    shard_tiles: usize,
    grid: TileGrid,
    inner: Mutex<JobInner>,
    cv: Condvar,
}

impl Job {
    fn shards(&self) -> usize {
        shard_count(self.grid.len(), self.shard_tiles)
    }

    fn shard_range(&self, shard: usize) -> (usize, usize) {
        shard_range(self.grid.len(), self.shard_tiles, shard)
    }
}

/// Executor slot id of the in-process fallback (distinct from every worker
/// index so fallback pickups of previously-worker-leased shards count as
/// steals).
const FALLBACK_WORKER: usize = usize::MAX;

/// A point-in-time public view of a job.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Job id (`job-<fingerprint>`).
    pub job_id: String,
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// Total shards.
    pub shards: usize,
    /// Completed shards.
    pub shards_done: usize,
    /// Total tiles.
    pub tiles: usize,
    /// Shard attempts requeued after failures.
    pub retries: u64,
    /// Shards claimed by a different executor than their previous attempt.
    pub steals: u64,
    /// Shards restored from checkpoints at job start.
    pub resumed: u64,
    /// Shard attempts satisfied from an existing checkpoint mid-run.
    pub checkpoint_hits: u64,
    /// Checkpoints rejected (truncated/corrupt) and recomputed.
    pub checkpoint_rejects: u64,
    /// Failures injected by the plan.
    pub injected_failures: u64,
    /// Shards executed by the in-process fallback.
    pub fallback_shards: u64,
    /// Live worker process ids (empty once workers are reaped).
    pub worker_pids: Vec<u32>,
    /// Failure message when `phase == Failed`.
    pub error: Option<String>,
}

impl JobStatus {
    /// Serializes the status document served on `GET /v1/jobs/<id>`.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("job_id", Json::string(&self.job_id)),
            ("state", Json::string(self.phase.label())),
            ("shards", Json::Number(self.shards as f64)),
            ("shards_done", Json::Number(self.shards_done as f64)),
            ("tiles", Json::Number(self.tiles as f64)),
            ("retries", Json::Number(self.retries as f64)),
            ("steals", Json::Number(self.steals as f64)),
            ("resumed", Json::Number(self.resumed as f64)),
            ("checkpoint_hits", Json::Number(self.checkpoint_hits as f64)),
            (
                "checkpoint_rejects",
                Json::Number(self.checkpoint_rejects as f64),
            ),
            (
                "injected_failures",
                Json::Number(self.injected_failures as f64),
            ),
            ("fallback_shards", Json::Number(self.fallback_shards as f64)),
            (
                "worker_pids",
                Json::NumberArray(self.worker_pids.iter().map(|&pid| pid as f64).collect()),
            ),
            (
                "error",
                match &self.error {
                    Some(message) => Json::string(message),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Receipt returned by [`JobManager::submit`].
#[derive(Debug, Clone)]
pub struct JobReceipt {
    /// Job id to poll.
    pub job_id: String,
    /// Shard count.
    pub shards: usize,
    /// Tile count.
    pub tiles: usize,
    /// `true` when an identical job already existed (idempotent resubmit —
    /// also how a restarted supervisor reattaches to a checkpointed job).
    pub existing: bool,
}

/// Why a submit was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The named model is not registered (HTTP 404).
    UnknownModel(String),
    /// The request is structurally invalid (HTTP 400).
    Invalid(String),
}

/// The supervisor: owns every job and executes each on a detached thread.
pub struct JobManager {
    registry: Arc<ModelRegistry>,
    config: JobConfig,
    jobs: Mutex<Vec<Arc<Job>>>,
}

/// Completed jobs retained for result fetches before eviction.
const MAX_RETAINED_JOBS: usize = 64;

impl JobManager {
    /// Creates a supervisor over `registry` with `config`.
    pub fn new(registry: Arc<ModelRegistry>, config: JobConfig) -> Arc<Self> {
        Arc::new(Self {
            registry,
            config: config.sanitized(),
            jobs: Mutex::new(Vec::new()),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &JobConfig {
        &self.config
    }

    /// Submits a job; identical specs dedupe onto the existing job.
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownModel`] when the model is not registered,
    /// [`SubmitError::Invalid`] on a structurally invalid request.
    pub fn submit(self: &Arc<Self>, request: JobRequest) -> Result<JobReceipt, SubmitError> {
        let (info, simulator) = match &request.model {
            Some(name) => self
                .registry
                .get(name)
                .ok_or_else(|| SubmitError::UnknownModel(name.clone()))?,
            None => self
                .registry
                .default_model()
                .ok_or_else(|| SubmitError::UnknownModel("(default)".to_owned()))?,
        };
        let (rows, cols) = request.mask.shape();
        let halo_px = request
            .halo_px
            .unwrap_or_else(|| simulator.default_halo_px());
        if 2 * halo_px >= info.tile_px {
            return Err(SubmitError::Invalid(format!(
                "halo_px {halo_px} leaves no core in a {} px tile",
                info.tile_px
            )));
        }
        let shard_tiles = request
            .shard_tiles
            .unwrap_or(self.config.shard_tiles)
            .max(1);
        let grid = TileGrid::new(TilingConfig::new(info.tile_px, halo_px), rows, cols);
        let mask_json = request
            .mask
            .to_json()
            .serialize()
            .map_err(|err| SubmitError::Invalid(format!("mask not serializable: {err}")))?;
        let canonical = format!(
            "nitho-job-v1|{}|{}|{}|{}|{}",
            info.name, info.tile_px, halo_px, shard_tiles, mask_json
        );
        let fingerprint = fnv1a(canonical.as_bytes());
        let job_id = format!("job-{fingerprint:016x}");
        let shards = shard_count(grid.len(), shard_tiles);
        let tiles = grid.len();

        let mut jobs = lock_recover(&self.jobs);
        if jobs.iter().any(|job| job.id == job_id) {
            return Ok(JobReceipt {
                job_id,
                shards,
                tiles,
                existing: true,
            });
        }
        // Evict the oldest finished jobs beyond the retention cap.
        while jobs.len() >= MAX_RETAINED_JOBS {
            let Some(evict) = jobs
                .iter()
                .position(|job| lock_recover(&job.inner).phase != JobPhase::Running)
            else {
                break;
            };
            jobs.remove(evict);
        }
        let now = Instant::now();
        let job = Arc::new(Job {
            id: job_id.clone(),
            fingerprint,
            model: info.name.clone(),
            mask: request.mask,
            halo_px,
            shard_tiles,
            grid,
            inner: Mutex::new(JobInner {
                phase: JobPhase::Running,
                slots: (0..shards)
                    .map(|_| Slot {
                        state: SlotState::Pending,
                        attempt: 0,
                        not_before: now,
                        last_worker: None,
                    })
                    .collect(),
                results: (0..shards).map(|_| None).collect(),
                inject: InjectPending::plan(&self.config.failures, shards),
                done_shards: 0,
                retries: 0,
                steals: 0,
                resumed: 0,
                checkpoint_hits: 0,
                checkpoint_rejects: 0,
                injected: 0,
                fallback_shards: 0,
                worker_pids: Vec::new(),
                error: None,
                result_body: None,
            }),
            cv: Condvar::new(),
        });
        jobs.push(Arc::clone(&job));
        JOBS_SUBMITTED_TOTAL.inc();
        JOBS_ACTIVE.set(
            jobs.iter()
                .filter(|job| lock_recover(&job.inner).phase == JobPhase::Running)
                .count() as u64,
        );
        drop(jobs);

        let manager = Arc::clone(self);
        thread::spawn(move || run_job(&manager, &job));
        Ok(JobReceipt {
            job_id,
            shards,
            tiles,
            existing: false,
        })
    }

    fn find(&self, job_id: &str) -> Option<Arc<Job>> {
        lock_recover(&self.jobs)
            .iter()
            .find(|job| job.id == job_id)
            .cloned()
    }

    /// The current status of a job, or `None` for an unknown id.
    pub fn status(&self, job_id: &str) -> Option<JobStatus> {
        let job = self.find(job_id)?;
        let inner = lock_recover(&job.inner);
        Some(snapshot(&job, &inner))
    }

    /// The status plus (when done) the stitched result body.
    pub fn result(&self, job_id: &str) -> Option<(JobStatus, Option<Arc<String>>)> {
        let job = self.find(job_id)?;
        let inner = lock_recover(&job.inner);
        Some((snapshot(&job, &inner), inner.result_body.clone()))
    }

    /// Blocks until the job leaves [`JobPhase::Running`] or `timeout`
    /// elapses; returns the final status observed.
    pub fn wait_until_done(&self, job_id: &str, timeout: Duration) -> Option<JobStatus> {
        let job = self.find(job_id)?;
        let deadline = Instant::now() + timeout;
        let mut inner = lock_recover(&job.inner);
        while inner.phase == JobPhase::Running {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let wait = (deadline - now).min(Duration::from_millis(200));
            let (guard, _) = job
                .cv
                .wait_timeout(inner, wait)
                .unwrap_or_else(|poison| poison.into_inner());
            inner = guard;
        }
        Some(snapshot(&job, &inner))
    }

    fn refresh_active(&self) {
        JOBS_ACTIVE.set(
            lock_recover(&self.jobs)
                .iter()
                .filter(|job| lock_recover(&job.inner).phase == JobPhase::Running)
                .count() as u64,
        );
    }
}

fn snapshot(job: &Job, inner: &JobInner) -> JobStatus {
    JobStatus {
        job_id: job.id.clone(),
        phase: inner.phase,
        shards: inner.slots.len(),
        shards_done: inner.done_shards,
        tiles: job.grid.len(),
        retries: inner.retries,
        steals: inner.steals,
        resumed: inner.resumed,
        checkpoint_hits: inner.checkpoint_hits,
        checkpoint_rejects: inner.checkpoint_rejects,
        injected_failures: inner.injected,
        fallback_shards: inner.fallback_shards,
        worker_pids: inner.worker_pids.clone(),
        error: inner.error.clone(),
    }
}

// --- the supervisor --------------------------------------------------------

fn run_job(manager: &Arc<JobManager>, job: &Arc<Job>) {
    let _span = litho_obs::span("jobs.run");
    let config = &manager.config;
    let job_dir = prepare_job_dir(config, job);
    resume_from_checkpoints(job, job_dir.as_deref());

    if !job_finished(job) && config.workers > 0 {
        if let Some(launcher) = &config.launcher {
            let mut workers = spawn_workers(launcher, config.workers, job.fingerprint);
            if !workers.is_empty() {
                {
                    let mut inner = lock_recover(&job.inner);
                    inner.worker_pids = workers.iter().map(|worker| worker.child.id()).collect();
                }
                thread::scope(|scope| {
                    for (slot, worker) in workers.iter().enumerate() {
                        let job = Arc::clone(job);
                        let dir = job_dir.clone();
                        scope.spawn(move || {
                            drive_worker(&job, config, dir.as_deref(), worker, slot)
                        });
                    }
                });
                for worker in &mut workers {
                    let _ = worker.child.kill();
                    let _ = worker.child.wait();
                }
                lock_recover(&job.inner).worker_pids.clear();
            }
        }
    }

    // Graceful degradation: anything still pending runs in process.
    if !job_finished(job) {
        run_in_process(manager, job, config, job_dir.as_deref());
    }

    finalize(manager, job);
}

fn job_finished(job: &Job) -> bool {
    let inner = lock_recover(&job.inner);
    inner.phase != JobPhase::Running || inner.done_shards == inner.slots.len()
}

fn prepare_job_dir(config: &JobConfig, job: &Job) -> Option<PathBuf> {
    let dir = config.checkpoint_dir.as_ref()?.join(&job.id);
    match fs::create_dir_all(&dir) {
        Ok(()) => Some(dir),
        Err(err) => {
            eprintln!(
                "nitho-serve: cannot create job checkpoint dir {}: {err}; running without resume",
                dir.display()
            );
            None
        }
    }
}

/// Pre-run scan: every valid shard checkpoint completes its shard up front
/// (`litho_jobs_resumed_shards_total`); invalid files are rejected and
/// removed so the shard recomputes cleanly.
fn resume_from_checkpoints(job: &Job, job_dir: Option<&Path>) {
    let Some(dir) = job_dir else { return };
    for shard in 0..job.shards() {
        let path = shard_path(dir, shard);
        if !path.exists() {
            continue;
        }
        let (start_tile, tile_count) = job.shard_range(shard);
        let expected = shard_value_len(&job.grid, start_tile, tile_count);
        match load_shard_checkpoint(
            &path,
            job.fingerprint,
            shard,
            start_tile,
            tile_count,
            expected,
        ) {
            Ok(values) => {
                lock_recover(&job.inner).resumed += 1;
                JOBS_RESUMED_SHARDS_TOTAL.inc();
                complete_shard(job, shard, values);
            }
            Err(err) => reject_checkpoint(job, &path, &err),
        }
    }
}

fn reject_checkpoint(job: &Job, path: &Path, err: &io::Error) {
    lock_recover(&job.inner).checkpoint_rejects += 1;
    JOBS_CHECKPOINT_REJECTS_TOTAL.inc();
    eprintln!(
        "nitho-serve: rejecting shard checkpoint {}: {err}; recomputing",
        path.display()
    );
    let _ = fs::remove_file(path);
}

/// Claims the next ready shard for executor `worker`, blocking through
/// backoff gaps. Returns `None` when the job left `Running` or every shard
/// is done.
fn claim_shard(job: &Job, worker: usize) -> Option<(usize, u32)> {
    let mut inner = lock_recover(&job.inner);
    loop {
        if inner.phase != JobPhase::Running || inner.done_shards == inner.slots.len() {
            return None;
        }
        let now = Instant::now();
        let mut earliest: Option<Instant> = None;
        let mut pick = None;
        for (index, slot) in inner.slots.iter().enumerate() {
            if slot.state == SlotState::Pending {
                if slot.not_before <= now {
                    pick = Some(index);
                    break;
                }
                earliest = Some(match earliest {
                    Some(at) => at.min(slot.not_before),
                    None => slot.not_before,
                });
            }
        }
        if let Some(index) = pick {
            let slot = &mut inner.slots[index];
            slot.state = SlotState::Leased;
            slot.attempt += 1;
            let attempt = slot.attempt;
            let stolen = attempt > 1 && slot.last_worker != Some(worker);
            slot.last_worker = Some(worker);
            if stolen {
                inner.steals += 1;
                JOBS_STEALS_TOTAL.inc();
            }
            return Some((index, attempt));
        }
        let wait = earliest
            .map(|at| at.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(25))
            .clamp(Duration::from_millis(1), Duration::from_millis(250));
        let (guard, _) = job
            .cv
            .wait_timeout(inner, wait)
            .unwrap_or_else(|poison| poison.into_inner());
        inner = guard;
    }
}

fn complete_shard(job: &Job, shard: usize, values: Vec<f64>) {
    let mut inner = lock_recover(&job.inner);
    if inner.slots[shard].state == SlotState::Done {
        return;
    }
    inner.slots[shard].state = SlotState::Done;
    inner.results[shard] = Some(values);
    inner.done_shards += 1;
    JOBS_SHARDS_COMPLETED_TOTAL.inc();
    job.cv.notify_all();
}

/// Requeues a failed attempt with jittered exponential backoff, or fails the
/// job permanently once `max_attempts` is exhausted.
fn requeue_shard(job: &Job, config: &JobConfig, shard: usize, attempt: u32, reason: &str) {
    let mut inner = lock_recover(&job.inner);
    if inner.phase != JobPhase::Running || inner.slots[shard].state == SlotState::Done {
        return;
    }
    if attempt >= config.max_attempts {
        inner.phase = JobPhase::Failed;
        inner.error = Some(format!(
            "shard {shard} failed after {attempt} attempts: {reason}"
        ));
    } else {
        inner.retries += 1;
        JOBS_RETRIES_TOTAL.inc();
        let delay = backoff_delay(config, job.fingerprint, shard, attempt);
        let slot = &mut inner.slots[shard];
        slot.state = SlotState::Pending;
        slot.not_before = Instant::now() + delay;
    }
    job.cv.notify_all();
}

/// `backoff · 2^(attempt-1)` plus a deterministic FNV jitter in
/// `[0, backoff)` — reassignments spread out without any randomness that
/// could perturb result bytes (they never could: scheduling is outside the
/// stitch), capped at 10 s.
fn backoff_delay(config: &JobConfig, fingerprint: u64, shard: usize, attempt: u32) -> Duration {
    let base_ms = config.backoff.as_millis() as u64;
    let exponent = attempt.saturating_sub(1).min(6);
    let scaled = base_ms.saturating_mul(1 << exponent);
    let mut seed = [0u8; 20];
    seed[..8].copy_from_slice(&fingerprint.to_le_bytes());
    seed[8..16].copy_from_slice(&(shard as u64).to_le_bytes());
    seed[16..].copy_from_slice(&attempt.to_le_bytes());
    let jitter = if base_ms == 0 {
        0
    } else {
        fnv1a(&seed) % base_ms
    };
    Duration::from_millis((scaled + jitter).min(10_000))
}

/// Completes a claimed shard from a valid existing checkpoint; rejects and
/// removes an invalid one so the caller recomputes.
fn complete_from_checkpoint(job: &Job, job_dir: Option<&Path>, shard: usize) -> bool {
    let Some(dir) = job_dir else { return false };
    let path = shard_path(dir, shard);
    if !path.exists() {
        return false;
    }
    let (start_tile, tile_count) = job.shard_range(shard);
    let expected = shard_value_len(&job.grid, start_tile, tile_count);
    match load_shard_checkpoint(
        &path,
        job.fingerprint,
        shard,
        start_tile,
        tile_count,
        expected,
    ) {
        Ok(values) => {
            lock_recover(&job.inner).checkpoint_hits += 1;
            JOBS_CHECKPOINT_HITS_TOTAL.inc();
            complete_shard(job, shard, values);
            true
        }
        Err(err) => {
            reject_checkpoint(job, &path, &err);
            false
        }
    }
}

fn take_inject_flag(
    job: &Job,
    shard: usize,
    pick: fn(&mut InjectPending) -> &mut Vec<bool>,
) -> bool {
    let mut inner = lock_recover(&job.inner);
    let flags = pick(&mut inner.inject);
    if flags[shard] {
        flags[shard] = false;
        inner.injected += 1;
        JOBS_INJECTED_TOTAL.inc();
        true
    } else {
        false
    }
}

/// Decides the worker-side injection for this attempt (kill wins over
/// stall); each fires once per shard.
fn take_worker_injection(job: &Job, config: &JobConfig, shard: usize) -> Option<ShardInjection> {
    if take_inject_flag(job, shard, |inject| &mut inject.kill) {
        return Some(ShardInjection::Kill);
    }
    if take_inject_flag(job, shard, |inject| &mut inject.stall) {
        // Sleep well past the lease so the supervisor-side timeout fires.
        let stall_ms = config.lease.as_millis() as u64 * 2 + 250;
        return Some(ShardInjection::StallMs(stall_ms));
    }
    None
}

/// Post-processes a computed shard: applies `drop`/`corrupt` injections,
/// persists the checkpoint, and completes or requeues the shard.
fn accept_shard_result(
    job: &Job,
    config: &JobConfig,
    job_dir: Option<&Path>,
    shard: usize,
    attempt: u32,
    values: Vec<f64>,
) {
    let (start_tile, tile_count) = job.shard_range(shard);
    let expected = shard_value_len(&job.grid, start_tile, tile_count);
    if values.len() != expected {
        requeue_shard(
            job,
            config,
            shard,
            attempt,
            &format!(
                "shard returned {} values, expected {expected}",
                values.len()
            ),
        );
        return;
    }
    if take_inject_flag(job, shard, |inject| &mut inject.drop) {
        requeue_shard(job, config, shard, attempt, "injected result drop");
        return;
    }
    if let Some(dir) = job_dir {
        let path = shard_path(dir, shard);
        if let Err(err) = save_shard_checkpoint(
            &path,
            job.fingerprint,
            shard,
            start_tile,
            tile_count,
            &values,
        ) {
            // Checkpointing is best-effort: the job still completes, it just
            // cannot resume from this shard.
            eprintln!(
                "nitho-serve: shard checkpoint write failed for {}: {err}",
                path.display()
            );
        } else if take_inject_flag(job, shard, |inject| &mut inject.corrupt) {
            // Truncate the file mid-record and discard the in-memory result:
            // the retry must detect the corruption and recompute.
            if let Ok(data) = fs::read(&path) {
                let _ = fs::write(&path, &data[..data.len() / 2]);
            }
            requeue_shard(
                job,
                config,
                shard,
                attempt,
                "injected checkpoint corruption",
            );
            return;
        }
    } else if take_inject_flag(job, shard, |inject| &mut inject.corrupt) {
        // No checkpoint dir to corrupt: degrade to a result drop so the
        // retry path is still exercised.
        requeue_shard(
            job,
            config,
            shard,
            attempt,
            "injected corruption (no checkpoint)",
        );
        return;
    }
    complete_shard(job, shard, values);
}

// --- workers ---------------------------------------------------------------

struct Worker {
    child: Child,
    addr: SocketAddr,
}

fn read_port_file(path: &Path) -> Option<u16> {
    fs::read_to_string(path)
        .ok()?
        .trim()
        .parse::<u16>()
        .ok()
        .filter(|&port| port != 0)
}

/// Spawns up to `count` workers and waits for each to report its port.
/// Spawn or startup failures discard that worker (degradation is handled by
/// the caller); an empty return means in-process execution.
fn spawn_workers(launcher: &WorkerLauncher, count: usize, job_fingerprint: u64) -> Vec<Worker> {
    let mut spawned = Vec::new();
    for slot in 0..count {
        let port_file = std::env::temp_dir().join(format!(
            "nitho-worker-{}-{job_fingerprint:016x}-{slot}.port",
            std::process::id()
        ));
        let _ = fs::remove_file(&port_file);
        let mut command = Command::new(&launcher.program);
        command
            .args(&launcher.args)
            .arg("--worker")
            .args(["--addr", "127.0.0.1", "--port", "0"])
            .arg("--port-file")
            .arg(&port_file)
            .args(["--parent-pid", &std::process::id().to_string()])
            .stdin(Stdio::null())
            .stdout(Stdio::null());
        match command.spawn() {
            Ok(child) => spawned.push((child, port_file)),
            Err(err) => eprintln!("nitho-serve: failed to spawn worker {slot}: {err}"),
        }
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut workers = Vec::new();
    for (mut child, port_file) in spawned {
        let port = loop {
            if let Some(port) = read_port_file(&port_file) {
                break Some(port);
            }
            if Instant::now() >= deadline || matches!(child.try_wait(), Ok(Some(_))) {
                break read_port_file(&port_file);
            }
            thread::sleep(Duration::from_millis(20));
        };
        let _ = fs::remove_file(&port_file);
        match port {
            Some(port) => {
                JOBS_WORKERS_SPAWNED_TOTAL.inc();
                workers.push(Worker {
                    child,
                    addr: SocketAddr::from(([127, 0, 0, 1], port)),
                });
            }
            None => {
                eprintln!("nitho-serve: worker did not report a port; discarding it");
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
    workers
}

fn worker_alive(worker: &Worker) -> bool {
    matches!(
        http_request_with_timeout(worker.addr, "GET", "/healthz", None, Duration::from_secs(2)),
        Ok((200, _))
    )
}

/// One driver thread per worker: claim → RPC (bounded by the lease) →
/// accept/requeue. Exits when its worker dies (surviving drivers steal the
/// requeued shards) or no claimable work remains.
fn drive_worker(
    job: &Job,
    config: &JobConfig,
    job_dir: Option<&Path>,
    worker: &Worker,
    slot: usize,
) {
    while let Some((shard, attempt)) = claim_shard(job, slot) {
        if complete_from_checkpoint(job, job_dir, shard) {
            continue;
        }
        let inject = take_worker_injection(job, config, shard);
        let (start_tile, tile_count) = job.shard_range(shard);
        let request = ShardRequest {
            model: job.model.clone(),
            mask: job.mask.clone(),
            halo_px: job.halo_px,
            start_tile,
            tile_count,
            fingerprint: job.fingerprint,
            inject,
        };
        let Ok(body) = request.to_json().serialize() else {
            requeue_shard(
                job,
                config,
                shard,
                attempt,
                "shard request not serializable",
            );
            continue;
        };
        let started = Instant::now();
        let outcome =
            http_request_with_timeout(worker.addr, "POST", "/v1/shard", Some(&body), config.lease);
        JOBS_SHARD_LATENCY.record(started.elapsed().as_millis() as u64);
        match outcome {
            Ok((200, text)) => match parse_shard_values(job, shard, &text) {
                Ok(values) => accept_shard_result(job, config, job_dir, shard, attempt, values),
                Err(message) => requeue_shard(job, config, shard, attempt, &message),
            },
            Ok((status, text)) => {
                let brief: String = text.chars().take(200).collect();
                requeue_shard(
                    job,
                    config,
                    shard,
                    attempt,
                    &format!("worker returned {status}: {brief}"),
                );
            }
            Err(err) => {
                let alive = worker_alive(worker);
                requeue_shard(
                    job,
                    config,
                    shard,
                    attempt,
                    &format!("shard rpc failed: {err}"),
                );
                if !alive {
                    // Dead worker: release this driver so surviving drivers
                    // (or the in-process fallback) steal the shard.
                    return;
                }
            }
        }
    }
}

fn parse_shard_values(job: &Job, shard: usize, text: &str) -> Result<Vec<f64>, String> {
    let doc = Json::parse(text).map_err(|err| format!("shard response not JSON: {err}"))?;
    let response = ShardResponse::from_json(&doc)?;
    let (start_tile, tile_count) = job.shard_range(shard);
    if response.fingerprint != job.fingerprint {
        return Err("shard response fingerprint mismatch".to_owned());
    }
    if response.start_tile != start_tile || response.tile_count != tile_count {
        return Err("shard response geometry mismatch".to_owned());
    }
    Ok(response.values)
}

/// In-process execution of every remaining shard — the no-workers path and
/// the all-workers-died fallback. Worker-only injections (stall/kill) are
/// consumed and ignored; drop/corrupt still apply.
fn run_in_process(manager: &JobManager, job: &Job, config: &JobConfig, job_dir: Option<&Path>) {
    let Some((_, simulator)) = manager.registry.get(&job.model) else {
        fail_job(job, "model disappeared from the registry");
        return;
    };
    let chip = job.mask.rasterize();
    while let Some((shard, attempt)) = claim_shard(job, FALLBACK_WORKER) {
        if complete_from_checkpoint(job, job_dir, shard) {
            continue;
        }
        if take_worker_injection(job, config, shard).is_some() {
            eprintln!("nitho-serve: worker-only injection ignored for in-process shard {shard}");
        }
        let (start_tile, tile_count) = job.shard_range(shard);
        let started = Instant::now();
        let values = compute_shard(simulator, &chip, &job.grid, start_tile, tile_count);
        JOBS_SHARD_LATENCY.record(started.elapsed().as_millis() as u64);
        lock_recover(&job.inner).fallback_shards += 1;
        JOBS_FALLBACK_SHARDS_TOTAL.inc();
        accept_shard_result(job, config, job_dir, shard, attempt, values);
    }
}

fn fail_job(job: &Job, reason: &str) {
    let mut inner = lock_recover(&job.inner);
    if inner.phase == JobPhase::Running {
        inner.phase = JobPhase::Failed;
        inner.error = Some(reason.to_owned());
    }
    job.cv.notify_all();
}

/// Stitches the completed shards and stores the serialized result body.
fn finalize(manager: &JobManager, job: &Job) {
    let results = {
        let mut inner = lock_recover(&job.inner);
        if inner.phase != JobPhase::Running {
            None
        } else if inner.done_shards == inner.slots.len() {
            Some(std::mem::take(&mut inner.results))
        } else {
            inner.phase = JobPhase::Failed;
            if inner.error.is_none() {
                inner.error = Some("job ended with incomplete shards".to_owned());
            }
            None
        }
    };
    match results {
        None => {
            JOBS_FAILED_TOTAL.inc();
        }
        Some(results) => match stitch_result(manager, job, results) {
            Ok(body) => {
                let mut inner = lock_recover(&job.inner);
                inner.phase = JobPhase::Done;
                inner.result_body = Some(Arc::new(body));
                JOBS_COMPLETED_TOTAL.inc();
            }
            Err(message) => {
                fail_job(job, &message);
                JOBS_FAILED_TOTAL.inc();
            }
        },
    }
    job.cv.notify_all();
    manager.refresh_active();
}

/// Fixed-order stitch: each shard's values are written to its tiles' owned
/// regions — disjoint, fixed chip coordinates — so the output is identical
/// for any completion order. The resist derives from the stitched aerial
/// with the model's threshold, exactly as `/v1/simulate` does.
fn stitch_result(
    manager: &JobManager,
    job: &Job,
    results: Vec<Option<Vec<f64>>>,
) -> Result<String, String> {
    let _span = litho_obs::span("jobs.stitch");
    let (rows, cols) = job.mask.shape();
    let mut aerial = RealMatrix::zeros(rows, cols);
    for (shard, values) in results.into_iter().enumerate() {
        let values = values.ok_or_else(|| format!("shard {shard} missing at stitch"))?;
        let (start_tile, tile_count) = job.shard_range(shard);
        let mut cursor = 0usize;
        for index in start_tile..start_tile + tile_count {
            let tile = job.grid.tile(index);
            for r in tile.owned_rows.0..tile.owned_rows.1 {
                for c in tile.owned_cols.0..tile.owned_cols.1 {
                    aerial[(r, c)] = values[cursor];
                    cursor += 1;
                }
            }
        }
        if cursor != values.len() {
            return Err(format!("shard {shard} length drifted at stitch"));
        }
    }
    let threshold = manager
        .registry
        .get(&job.model)
        .map(|(_, simulator)| simulator.resist_threshold())
        .ok_or("model disappeared from the registry")?;
    let resist = aerial.threshold(threshold);
    let (tiles_y, tiles_x) = job.grid.grid_shape();
    let doc = Json::object(vec![
        ("job_id", Json::string(&job.id)),
        ("model", Json::string(&job.model)),
        ("rows", Json::Number(rows as f64)),
        ("cols", Json::Number(cols as f64)),
        ("tiles", Json::Number(job.grid.len() as f64)),
        (
            "grid",
            Json::NumberArray(vec![tiles_y as f64, tiles_x as f64]),
        ),
        ("halo_px", Json::Number(job.halo_px as f64)),
        ("shards", Json::Number(job.shards() as f64)),
        ("shard_tiles", Json::Number(job.shard_tiles as f64)),
        ("aerial", Json::NumberArray(aerial.into_vec())),
        ("resist", Json::NumberArray(resist.into_vec())),
    ]);
    doc.serialize()
        .map_err(|err| format!("result serialization failed: {err}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    use litho_optics::{HopkinsSimulator, OpticalConfig};

    use crate::chip::ChipPipeline;

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "nitho-jobs-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn registry() -> Arc<ModelRegistry> {
        let optics = OpticalConfig::builder()
            .tile_px(64)
            .pixel_nm(8.0)
            .kernel_count(6)
            .build();
        let mut registry = ModelRegistry::new();
        registry.register_hopkins("hopkins", HopkinsSimulator::new(&optics));
        Arc::new(registry)
    }

    /// A 96×96 chip on 64-px tiles with an 8-px halo: 48-px cores, a 2×2
    /// grid, four single-tile shards.
    fn chip_request() -> JobRequest {
        JobRequest {
            model: Some("hopkins".to_owned()),
            mask: MaskSpec::Rects {
                rows: 96,
                cols: 96,
                rects: vec![[8, 8, 56, 24], [40, 48, 88, 80], [16, 64, 32, 90]],
            },
            halo_px: Some(8),
            shard_tiles: Some(1),
        }
    }

    fn in_process_config() -> JobConfig {
        JobConfig {
            workers: 0,
            backoff: Duration::from_millis(2),
            ..JobConfig::default()
        }
    }

    fn finished(manager: &Arc<JobManager>, job_id: &str) -> JobStatus {
        manager
            .wait_until_done(job_id, Duration::from_secs(120))
            .expect("job exists")
    }

    fn result_body(manager: &Arc<JobManager>, job_id: &str) -> String {
        let (status, body) = manager.result(job_id).expect("job exists");
        assert_eq!(status.phase, JobPhase::Done, "{:?}", status.error);
        String::clone(&body.expect("done job has a body"))
    }

    #[test]
    fn failure_plan_parsing() {
        let plan = FailurePlan::parse("kill=0;stall=1;drop=2,3;corrupt=4").expect("valid spec");
        assert_eq!(plan.kill_shards, vec![0]);
        assert_eq!(plan.stall_shards, vec![1]);
        assert_eq!(plan.drop_shards, vec![2, 3]);
        assert_eq!(plan.corrupt_shards, vec![4]);
        assert!(!plan.is_empty());
        assert!(FailurePlan::parse("").expect("empty spec").is_empty());
        assert!(
            FailurePlan::parse(" drop = 1 , 2 ; ").is_ok(),
            "whitespace tolerated"
        );
        assert!(FailurePlan::parse("explode=1").is_err());
        assert!(FailurePlan::parse("kill=x").is_err());
        assert!(FailurePlan::parse("kill0").is_err());
    }

    #[test]
    fn wire_types_round_trip() {
        let job = chip_request();
        assert_eq!(
            JobRequest::from_json(&job.to_json()).expect("roundtrip"),
            job
        );
        for inject in [
            None,
            Some(ShardInjection::Kill),
            Some(ShardInjection::StallMs(1500)),
        ] {
            let shard = ShardRequest {
                model: "hopkins".to_owned(),
                mask: job.mask.clone(),
                halo_px: 8,
                start_tile: 2,
                tile_count: 1,
                // A value above 2^53: survives only because the wire carries
                // fingerprints as hex strings, never JSON numbers.
                fingerprint: u64::MAX - 3,
                inject,
            };
            assert_eq!(
                ShardRequest::from_json(&shard.to_json()).expect("roundtrip"),
                shard
            );
        }
        let response = ShardResponse {
            fingerprint: 7,
            start_tile: 2,
            tile_count: 1,
            values: vec![0.5, 1.25, 3.0e-3],
        };
        assert_eq!(
            ShardResponse::from_json(&response.to_json()).expect("roundtrip"),
            response
        );
    }

    #[test]
    fn checkpoint_rejects_truncation_and_mismatch() {
        let dir = temp_dir("ckpt");
        let path = shard_path(&dir, 3);
        let values: Vec<f64> = (0..10).map(|i| i as f64 * 0.25).collect();
        save_shard_checkpoint(&path, 42, 3, 6, 2, &values).expect("save");
        assert_eq!(
            load_shard_checkpoint(&path, 42, 3, 6, 2, 10).expect("load"),
            values
        );
        let kind = |fp, shard, start, count, len| {
            load_shard_checkpoint(&path, fp, shard, start, count, len)
                .expect_err("must reject")
                .kind()
        };
        assert_eq!(
            kind(43, 3, 6, 2, 10),
            io::ErrorKind::InvalidData,
            "fingerprint"
        );
        assert_eq!(
            kind(42, 2, 6, 2, 10),
            io::ErrorKind::InvalidData,
            "shard index"
        );
        assert_eq!(
            kind(42, 3, 5, 2, 10),
            io::ErrorKind::InvalidData,
            "geometry"
        );
        assert_eq!(kind(42, 3, 6, 2, 9), io::ErrorKind::InvalidData, "length");
        let data = fs::read(&path).expect("read");
        fs::write(&path, &data[..data.len() / 2]).expect("truncate");
        assert_eq!(
            kind(42, 3, 6, 2, 10),
            io::ErrorKind::UnexpectedEof,
            "truncation"
        );
        let mut flipped = data.clone();
        let index = flipped.len() - 12; // inside the last value, before the checksum
        flipped[index] ^= 0x40;
        fs::write(&path, &flipped).expect("rewrite");
        assert_eq!(
            kind(42, 3, 6, 2, 10),
            io::ErrorKind::InvalidData,
            "checksum"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_math_partitions_the_grid() {
        for (tiles, shard_tiles) in [(1, 1), (4, 1), (4, 3), (9, 4), (10, 5), (7, 7)] {
            let shards = shard_count(tiles, shard_tiles);
            let mut covered = 0;
            for shard in 0..shards {
                let (start, count) = shard_range(tiles, shard_tiles, shard);
                assert_eq!(start, covered, "shards must be contiguous");
                assert!((1..=shard_tiles).contains(&count));
                covered += count;
            }
            assert_eq!(covered, tiles, "shards must partition the grid exactly");
        }
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let config = JobConfig::default();
        let first = backoff_delay(&config, 99, 3, 1);
        assert_eq!(first, backoff_delay(&config, 99, 3, 1), "deterministic");
        assert!(
            first >= config.backoff && first < 2 * config.backoff,
            "{first:?}"
        );
        let fourth = backoff_delay(&config, 99, 3, 4);
        assert!(fourth >= 8 * config.backoff, "{fourth:?}");
        assert!(
            backoff_delay(&config, 99, 3, 16) <= Duration::from_secs(10),
            "capped"
        );
    }

    #[test]
    fn submit_rejects_unknown_models_and_bad_halos() {
        let manager = JobManager::new(registry(), in_process_config());
        let mut request = chip_request();
        request.model = Some("missing".to_owned());
        assert!(matches!(
            manager.submit(request),
            Err(SubmitError::UnknownModel(_))
        ));
        let mut request = chip_request();
        request.halo_px = Some(32);
        assert!(matches!(
            manager.submit(request),
            Err(SubmitError::Invalid(_))
        ));
        assert!(manager.status("job-0000000000000000").is_none());
    }

    #[test]
    fn in_process_job_matches_the_chip_pipeline_bit_for_bit() {
        let registry = registry();
        let manager = JobManager::new(Arc::clone(&registry), in_process_config());
        let request = chip_request();
        let receipt = manager.submit(request.clone()).expect("submit");
        assert!(!receipt.existing);
        assert_eq!((receipt.tiles, receipt.shards), (4, 4));
        let status = finished(&manager, &receipt.job_id);
        assert_eq!(status.phase, JobPhase::Done, "{:?}", status.error);
        assert_eq!(status.shards_done, 4);
        assert_eq!(
            status.fallback_shards, 4,
            "no workers: every shard in process"
        );
        assert_eq!(status.retries, 0);
        let body = result_body(&manager, &receipt.job_id);
        let doc = Json::parse(&body).expect("result JSON");
        let aerial = doc
            .get("aerial")
            .and_then(Json::as_number_slice)
            .expect("aerial");
        let resist = doc
            .get("resist")
            .and_then(Json::as_number_slice)
            .expect("resist");

        let (_, simulator) = registry.get("hopkins").expect("model");
        let reference = ChipPipeline::with_halo(simulator, 8).simulate(&request.mask.rasterize());
        let expect_aerial = reference.aerial.into_vec();
        assert_eq!(aerial.len(), expect_aerial.len());
        for (index, (got, want)) in aerial.iter().zip(&expect_aerial).enumerate() {
            assert_eq!(got.to_bits(), want.to_bits(), "aerial pixel {index}");
        }
        let expect_resist = reference.resist.into_vec();
        for (index, (got, want)) in resist.iter().zip(&expect_resist).enumerate() {
            assert_eq!(got.to_bits(), want.to_bits(), "resist pixel {index}");
        }

        // Idempotent resubmit dedupes onto the finished job.
        let again = manager.submit(request).expect("resubmit");
        assert!(again.existing);
        assert_eq!(again.job_id, receipt.job_id);
    }

    #[test]
    fn injected_faults_converge_to_identical_bytes() {
        let registry = registry();
        let clean = JobManager::new(Arc::clone(&registry), in_process_config());
        let receipt = clean.submit(chip_request()).expect("submit");
        finished(&clean, &receipt.job_id);
        let clean_body = result_body(&clean, &receipt.job_id);

        let dir = temp_dir("inject");
        let config = JobConfig {
            checkpoint_dir: Some(dir.clone()),
            failures: FailurePlan::parse("drop=0;corrupt=1;stall=2;kill=3").expect("plan"),
            ..in_process_config()
        };
        let faulty = JobManager::new(Arc::clone(&registry), config);
        let receipt = faulty.submit(chip_request()).expect("submit");
        let status = finished(&faulty, &receipt.job_id);
        assert_eq!(status.phase, JobPhase::Done, "{:?}", status.error);
        assert!(
            status.retries >= 2,
            "drop + corrupt must requeue: {status:?}"
        );
        assert_eq!(
            status.injected_failures, 4,
            "all four faults fire (worker-only ones no-op)"
        );
        assert!(
            status.checkpoint_rejects >= 1,
            "corrupt checkpoint must be rejected"
        );
        assert_eq!(result_body(&faulty, &receipt.job_id), clean_body);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_job_resumes_in_a_new_supervisor() {
        let registry = registry();
        let dir = temp_dir("resume");
        let config = JobConfig {
            checkpoint_dir: Some(dir.clone()),
            ..in_process_config()
        };
        let first = JobManager::new(Arc::clone(&registry), config.clone());
        let receipt = first.submit(chip_request()).expect("submit");
        finished(&first, &receipt.job_id);
        let body = result_body(&first, &receipt.job_id);

        // Truncate one shard's checkpoint: the restarted supervisor below
        // must reject it, recompute the shard, and still reproduce the bytes.
        let victim = dir.join(&receipt.job_id).join("shard_00001.ckpt");
        let data = fs::read(&victim).expect("checkpoint exists");
        fs::write(&victim, &data[..data.len() / 3]).expect("truncate");

        let second = JobManager::new(Arc::clone(&registry), config);
        let resubmit = second.submit(chip_request()).expect("resubmit");
        assert!(!resubmit.existing, "a fresh manager holds no such job yet");
        assert_eq!(resubmit.job_id, receipt.job_id, "same spec, same id");
        let status = finished(&second, &resubmit.job_id);
        assert_eq!(status.phase, JobPhase::Done, "{:?}", status.error);
        assert_eq!(status.resumed, 3, "three intact checkpoints resume");
        assert!(
            status.checkpoint_rejects >= 1,
            "the truncated one self-heals"
        );
        assert_eq!(result_body(&second, &resubmit.job_id), body);
        let _ = fs::remove_dir_all(&dir);
    }
}
