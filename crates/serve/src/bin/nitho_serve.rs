//! `nitho-serve` — the full-chip lithography inference server.
//!
//! Registers a rigorous Hopkins reference engine and a trained Nitho model
//! (restored from a versioned checkpoint when one exists), then serves the
//! JSON protocol of `litho_serve::service` plus an admin
//! `POST /v1/shutdown` route for clean teardown.
//!
//! ```text
//! nitho-serve [--addr 127.0.0.1] [--port 8425] [--port-file PATH]
//!             [--checkpoint-dir DIR] [--fast] [--hopkins-only]
//!             [--worker [--parent-pid PID]]
//! ```
//!
//! * `--port 0` binds an ephemeral port; combine with `--port-file` so
//!   scripts can discover it (the file is written after the bind succeeds).
//! * `--checkpoint-dir` persists the Nitho checkpoint across restarts
//!   (default `./nitho-serve-ckpt`).
//! * `--fast` serves a smaller, quicker-to-train model (CI smoke scale).
//! * `--hopkins-only` skips the Nitho model entirely (rigorous engine only;
//!   instant startup, used by the job-layer integration tests).
//! * `--worker` runs the sharded-job worker protocol: a blocking single
//!   connection loop serving `/v1/shard` with failure injections enabled
//!   (spawned by the supervisor's job layer, never started by hand).
//!   `--parent-pid` arms a watchdog that exits when the supervisor dies.

use std::path::PathBuf;
use std::process::ExitCode;

use litho_masks::{DatasetKind, ProcessDataset};
use litho_optics::{HopkinsSimulator, OpticalConfig, ProcessWindow};
use litho_serve::{
    HttpServer, JobConfig, ModelRegistry, Response, ServeConfig, Service, WorkerLauncher,
};
use nitho::{ConditionEncoding, NithoConfig};

struct Options {
    addr: String,
    port: u16,
    port_file: Option<PathBuf>,
    checkpoint_dir: PathBuf,
    fast: bool,
    hopkins_only: bool,
    worker: bool,
    parent_pid: Option<u32>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        addr: "127.0.0.1".to_owned(),
        port: 8425,
        port_file: None,
        checkpoint_dir: PathBuf::from("nitho-serve-ckpt"),
        fast: false,
        hopkins_only: false,
        worker: false,
        parent_pid: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => options.addr = value("--addr")?,
            "--port" => {
                options.port = value("--port")?
                    .parse()
                    .map_err(|_| "--port must be 0..=65535".to_owned())?
            }
            "--port-file" => options.port_file = Some(PathBuf::from(value("--port-file")?)),
            "--checkpoint-dir" => {
                options.checkpoint_dir = PathBuf::from(value("--checkpoint-dir")?)
            }
            "--fast" => options.fast = true,
            "--hopkins-only" => options.hopkins_only = true,
            "--worker" => options.worker = true,
            "--parent-pid" => {
                options.parent_pid = Some(
                    value("--parent-pid")?
                        .parse()
                        .map_err(|_| "--parent-pid must be a pid".to_owned())?,
                )
            }
            "--help" | "-h" => {
                return Err("usage: nitho-serve [--addr A] [--port P] [--port-file F] \
                            [--checkpoint-dir D] [--fast] [--hopkins-only] \
                            [--worker [--parent-pid PID]]"
                    .to_owned())
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(options)
}

/// Serving-scale knobs: `--fast` is the CI smoke profile, the default is a
/// demo-quality model. Both profiles serve a process-window-conditioned
/// model trained across a 3×3 focus × dose grid, so `/v1/process_window`
/// works on the `nitho` entry out of the box (the `hopkins` entry serves any
/// condition by rigorous re-decomposition).
fn profiles(fast: bool) -> (OpticalConfig, NithoConfig, usize, ProcessWindow) {
    let window = ProcessWindow::symmetric(60.0, 3, 0.05, 3);
    let condition = Some(ConditionEncoding {
        focus_span_nm: 60.0,
        dose_span: 0.05,
        ..ConditionEncoding::default()
    });
    if fast {
        let optics = OpticalConfig::builder()
            .tile_px(64)
            .pixel_nm(8.0)
            .kernel_count(6)
            .build();
        let config = NithoConfig {
            epochs: 6,
            condition,
            ..NithoConfig::fast()
        };
        (optics, config, 4, window)
    } else {
        let optics = OpticalConfig::builder()
            .tile_px(128)
            .pixel_nm(4.0)
            .kernel_count(8)
            .build();
        let config = NithoConfig {
            kernel_count: 8,
            hidden_dim: 48,
            epochs: 25,
            condition,
            ..NithoConfig::fast()
        };
        (optics, config, 12, window)
    }
}

fn build_registry(options: &Options) -> std::io::Result<ModelRegistry> {
    let (optics, config, train_tiles, window) = profiles(options.fast);
    let mut registry = ModelRegistry::new();

    eprintln!(
        "nitho-serve: building rigorous Hopkins engine ({} px tile)",
        optics.tile_px
    );
    let labeller = HopkinsSimulator::new(&optics);
    if options.hopkins_only {
        registry.register_hopkins("hopkins", labeller);
        return Ok(registry);
    }
    let conditions = window.conditions();
    registry.register_nitho_checkpointed(
        "nitho",
        config,
        &optics,
        &options.checkpoint_dir,
        |model| {
            eprintln!(
                "nitho-serve: no usable checkpoint; training {train_tiles} metal + {} via \
                 tiles across a {}x{} focus x dose grid",
                train_tiles / 2,
                window.shape().0,
                window.shape().1
            );
            let metal = ProcessDataset::generate(
                DatasetKind::B2Metal,
                train_tiles,
                &labeller,
                &conditions,
                21,
            );
            let vias = ProcessDataset::generate(
                DatasetKind::B2Via,
                train_tiles / 2,
                &labeller,
                &conditions,
                22,
            );
            let mut groups = metal.groups().to_vec();
            for (condition, dataset) in vias.groups() {
                let slot = groups
                    .iter_mut()
                    .find(|(c, _)| c == condition)
                    .expect("same condition grid");
                slot.1 = slot.1.merged(dataset).shuffled(7);
            }
            model.train_process_window(&groups);
        },
    )?;
    registry.register_hopkins("hopkins", labeller);
    Ok(registry)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    // Observability: activate span tracing before any engine work so the
    // startup training/refresh is captured too; the ring is dumped as Chrome
    // trace_event JSON after the serve loop drains.
    let trace_path = litho_obs::trace::init_from_env();

    let registry = match build_registry(&options) {
        Ok(registry) => registry,
        Err(err) => {
            eprintln!("nitho-serve: failed to build the model registry: {err}");
            return ExitCode::FAILURE;
        }
    };
    for info in registry.models() {
        eprintln!(
            "nitho-serve: model {:?} ({}, {} px tile, halo {} px{})",
            info.name,
            info.kind,
            info.tile_px,
            info.halo_px,
            match info.checkpoint.as_ref() {
                Some(path) => format!(
                    ", checkpoint {} v{}",
                    path.display(),
                    info.checkpoint_version
                ),
                None => String::new(),
            }
        );
    }
    let service = if options.worker {
        // Workers honor `/v1/shard` failure injections; they never spawn
        // workers of their own.
        Service::new(registry).with_worker_mode(true)
    } else {
        // The supervisor launches copies of this binary as shard workers,
        // mirroring the model-profile flags so every process serves
        // identical models (the shared checkpoint dir makes the restored
        // Nitho weights identical too).
        let mut args = Vec::new();
        if options.fast {
            args.push("--fast".to_owned());
        }
        if options.hopkins_only {
            args.push("--hopkins-only".to_owned());
        }
        args.push("--checkpoint-dir".to_owned());
        args.push(options.checkpoint_dir.display().to_string());
        let mut job_config = match std::env::current_exe() {
            Ok(program) => JobConfig::from_env().with_launcher(WorkerLauncher { program, args }),
            Err(err) => {
                eprintln!(
                    "nitho-serve: cannot resolve own executable ({err}); jobs run in process"
                );
                JobConfig::from_env()
            }
        };
        // Resume-after-kill works out of the box: shard checkpoints live
        // under the serve checkpoint dir unless NITHO_JOB_CHECKPOINT_DIR
        // points elsewhere.
        if job_config.checkpoint_dir.is_none() {
            job_config.checkpoint_dir = Some(options.checkpoint_dir.join("jobs"));
        }
        Service::new(registry).with_job_config(job_config)
    };

    let server = match HttpServer::bind(&format!("{}:{}", options.addr, options.port)) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("nitho-serve: bind failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr().expect("bound server has an address");
    if let Some(path) = &options.port_file {
        if let Err(err) = std::fs::write(path, format!("{}\n", addr.port())) {
            eprintln!(
                "nitho-serve: cannot write port file {}: {err}",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    }
    println!("nitho-serve listening on http://{addr}");

    if options.worker {
        // Shard workers serve one driver thread over the blocking reference
        // path (satellite socket budgets apply) and exit when the supervisor
        // dies: the watchdog polls `/proc/<ppid>` where available.
        if let Some(ppid) = options.parent_pid {
            #[cfg(target_os = "linux")]
            std::thread::spawn(move || loop {
                if !std::path::Path::new(&format!("/proc/{ppid}")).exists() {
                    eprintln!("nitho-serve: worker parent {ppid} is gone; exiting");
                    std::process::exit(0);
                }
                std::thread::sleep(std::time::Duration::from_millis(500));
            });
            #[cfg(not(target_os = "linux"))]
            let _ = ppid;
        }
        let shutdown = server.shutdown_handle();
        server.serve(move |request| {
            if (request.method.as_str(), request.path.as_str()) == ("POST", "/v1/shutdown") {
                shutdown.shutdown();
                return Response::json(200, r#"{"status":"shutting down"}"#.to_owned());
            }
            service.handle(request)
        });
        println!("nitho-serve: worker shut down cleanly");
        return ExitCode::SUCCESS;
    }

    // Event-loop tier: NITHO_SERVE_WORKERS / NITHO_QUEUE_DEPTH /
    // NITHO_DEADLINE_MS tune the worker pool, admission queue, and
    // per-request deadline (see DESIGN.md §10).
    let config = ServeConfig::from_env();
    eprintln!(
        "nitho-serve: {} workers, queue depth {}, deadline {} ms",
        config.workers,
        config.queue_depth,
        config.deadline.as_millis()
    );
    // Resolved kernel knobs: NITHO_SIMD (scalar|avx2|auto) and
    // NITHO_PRECISION (f64|f32). Printed once so logs record which code
    // path this process serves with; also on /healthz under "engine".
    eprintln!(
        "nitho-serve: simd backend {} (NITHO_SIMD), precision {} (NITHO_PRECISION)",
        litho_math::simd::simd_backend().label(),
        litho_math::simd::precision().label()
    );
    eprintln!(
        "nitho-serve: metrics {} ({} registered, GET /metrics), tracing {}",
        if litho_obs::enabled() { "on" } else { "off" },
        litho_obs::metric_count(),
        match &trace_path {
            Some(path) => format!("on (NITHO_TRACE={})", path.display()),
            None => "off (set NITHO_TRACE=<path> to enable)".to_owned(),
        }
    );
    let metrics = service.metrics().clone();
    let shutdown = server.shutdown_handle();
    server.serve_event(&config, &metrics, move |request| {
        if (request.method.as_str(), request.path.as_str()) == ("POST", "/v1/shutdown") {
            shutdown.shutdown();
            return Response::json(200, r#"{"status":"shutting down"}"#.to_owned());
        }
        service.handle(request)
    });
    match litho_obs::trace::dump() {
        Ok(Some(path)) => eprintln!("nitho-serve: trace written to {}", path.display()),
        Ok(None) => {}
        Err(err) => eprintln!("nitho-serve: trace dump failed: {err}"),
    }
    println!("nitho-serve: shut down cleanly");
    ExitCode::SUCCESS
}
