//! Real-process fault-tolerance pins for the `/v1/jobs` layer (DESIGN.md
//! §13): the stitched result must be byte-identical across worker counts,
//! across injected kill/stall/drop/corrupt failure plans, across an external
//! SIGKILL of a worker mid-job, and across a SIGKILL of the supervisor
//! followed by a checkpoint resume. Every scenario runs the actual
//! `nitho-serve` binary (`--fast --hopkins-only`: deterministic rigorous
//! engine, no training) as separate OS processes.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant, SystemTime};

use litho_serve::{http_request_with_timeout, Json};

/// 96×96 chip on 64-px tiles with an 8-px halo: 2×2 grid, four single-tile
/// shards. Same spec everywhere, so every process computes the same job id.
const JOB_96: &str = r#"{"model":"hopkins","mask":{"rows":96,"cols":96,"rects":[[8,8,56,24],[40,48,88,80],[16,64,32,90]]},"halo_px":8,"shard_tiles":1}"#;
/// 144×144 chip: 3×3 grid, nine single-tile shards — enough runway to kill
/// processes mid-job.
const JOB_144: &str = r#"{"model":"hopkins","mask":{"rows":144,"cols":144,"rects":[[8,8,56,24],[40,48,88,80],[16,64,32,90],[96,16,136,48],[24,100,72,140],[100,96,140,136]]},"halo_px":8,"shard_tiles":1}"#;

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "nitho-jobs-proc-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

struct Server {
    child: Child,
    addr: SocketAddr,
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Server {
    /// Starts a `--fast --hopkins-only` supervisor with the given
    /// `NITHO_JOB_*` environment and waits for its ephemeral port.
    fn start(job_ckpt: &Path, envs: &[(&str, &str)]) -> Server {
        let port_file = temp_dir("port").join("port");
        let mut command = Command::new(env!("CARGO_BIN_EXE_nitho-serve"));
        command
            .args([
                "--fast",
                "--hopkins-only",
                "--addr",
                "127.0.0.1",
                "--port",
                "0",
            ])
            .arg("--port-file")
            .arg(&port_file)
            .env("NITHO_JOB_CHECKPOINT_DIR", job_ckpt)
            .env_remove("NITHO_JOB_FAILURES")
            .env_remove("NITHO_JOB_WORKERS")
            .env_remove("NITHO_JOB_LEASE_MS")
            .stdin(Stdio::null())
            .stdout(Stdio::null());
        for (name, value) in envs {
            command.env(name, value);
        }
        let child = command.spawn().expect("spawn nitho-serve");
        let deadline = Instant::now() + Duration::from_secs(60);
        let port = loop {
            if let Some(port) = std::fs::read_to_string(&port_file)
                .ok()
                .and_then(|text| text.trim().parse::<u16>().ok())
            {
                break port;
            }
            assert!(Instant::now() < deadline, "server did not report a port");
            std::thread::sleep(Duration::from_millis(20));
        };
        Server {
            child,
            addr: SocketAddr::from(([127, 0, 0, 1], port)),
        }
    }

    fn request(&self, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
        http_request_with_timeout(self.addr, method, path, body, Duration::from_secs(30))
            .expect("request to the server")
    }

    /// Submits `body` and returns the job id from the 202 receipt.
    fn submit(&self, body: &str) -> String {
        let (status, text) = self.request("POST", "/v1/jobs", Some(body));
        assert_eq!(status, 202, "{text}");
        Json::parse(&text)
            .expect("receipt JSON")
            .get("job_id")
            .and_then(Json::as_str)
            .expect("job_id")
            .to_owned()
    }

    fn status(&self, job_id: &str) -> Json {
        let (status, text) = self.request("GET", &format!("/v1/jobs/{job_id}"), None);
        assert_eq!(status, 200, "{text}");
        Json::parse(&text).expect("status JSON")
    }

    /// Polls until the job leaves `running`, then returns the final status.
    fn wait_done(&self, job_id: &str) -> Json {
        let deadline = Instant::now() + Duration::from_secs(300);
        loop {
            let status = self.status(job_id);
            let state = status.get("state").and_then(Json::as_str).expect("state");
            if state != "running" {
                assert_eq!(state, "done", "job failed: {status:?}");
                return status;
            }
            assert!(Instant::now() < deadline, "job did not finish: {status:?}");
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    fn result(&self, job_id: &str) -> String {
        let (status, text) = self.request("GET", &format!("/v1/jobs/{job_id}/result"), None);
        assert_eq!(status, 200, "{text}");
        text
    }

    fn run_to_result(&self, body: &str) -> (String, Json) {
        let job_id = self.submit(body);
        let status = self.wait_done(&job_id);
        (self.result(&job_id), status)
    }

    fn shutdown(mut self) {
        let _ = self.request("POST", "/v1/shutdown", Some("{}"));
        let _ = self.child.wait();
    }
}

fn counter(status: &Json, name: &str) -> usize {
    status
        .get(name)
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("{name} in {status:?}"))
}

/// The no-failure, no-worker reference bytes, computed once per chip size.
fn baseline(body: &'static str) -> &'static String {
    static BASE_96: OnceLock<String> = OnceLock::new();
    static BASE_144: OnceLock<String> = OnceLock::new();
    let slot = if std::ptr::eq(body, JOB_96) {
        &BASE_96
    } else {
        &BASE_144
    };
    slot.get_or_init(|| {
        let server = Server::start(&temp_dir("baseline"), &[("NITHO_JOB_WORKERS", "0")]);
        let (result, status) = server.run_to_result(body);
        assert_eq!(counter(&status, "retries"), 0);
        server.shutdown();
        result
    })
}

#[test]
fn stitched_bytes_identical_across_worker_counts() {
    let reference = baseline(JOB_96);
    for workers in ["1", "2", "4"] {
        let server = Server::start(&temp_dir("workers"), &[("NITHO_JOB_WORKERS", workers)]);
        let (result, status) = server.run_to_result(JOB_96);
        assert_eq!(
            &result, reference,
            "worker count {workers} changed the stitched bytes"
        );
        // The shards really went through worker RPCs, not the fallback.
        assert_eq!(
            counter(&status, "fallback_shards"),
            0,
            "{workers}: {status:?}"
        );
        server.shutdown();
    }
}

#[test]
fn injected_failure_plans_do_not_change_bytes() {
    let reference = baseline(JOB_96);
    let server = Server::start(
        &temp_dir("plan"),
        &[
            ("NITHO_JOB_WORKERS", "2"),
            ("NITHO_JOB_LEASE_MS", "1500"),
            ("NITHO_JOB_BACKOFF_MS", "50"),
            ("NITHO_JOB_FAILURES", "kill=0;stall=1;corrupt=2;drop=3"),
        ],
    );
    let (result, status) = server.run_to_result(JOB_96);
    assert_eq!(
        &result, reference,
        "failure plan changed the stitched bytes"
    );
    assert_eq!(counter(&status, "injected_failures"), 4, "{status:?}");
    assert!(
        counter(&status, "retries") >= 3,
        "kill/stall/corrupt/drop all requeue: {status:?}"
    );
    assert!(counter(&status, "checkpoint_rejects") >= 1, "{status:?}");
    // The /metrics exposition carries the recovery counters too.
    let (code, metrics) = server.request("GET", "/metrics", None);
    assert_eq!(code, 200);
    for name in [
        "litho_jobs_retries_total",
        "litho_jobs_injected_failures_total",
    ] {
        let line = metrics
            .lines()
            .find(|line| line.starts_with(name) && !line.starts_with('#'))
            .unwrap_or_else(|| panic!("{name} missing from /metrics"));
        let value: f64 = line
            .split_whitespace()
            .last()
            .expect("value")
            .parse()
            .expect("number");
        assert!(value > 0.0, "{line}");
    }
    server.shutdown();
}

#[test]
fn sigkilled_worker_mid_job_still_converges() {
    let reference = baseline(JOB_144);
    let server = Server::start(
        &temp_dir("kill9"),
        &[("NITHO_JOB_WORKERS", "1"), ("NITHO_JOB_BACKOFF_MS", "20")],
    );
    let job_id = server.submit(JOB_144);
    // SIGKILL the worker as soon as it is registered — nine debug-build
    // shards take far longer than this poll loop, so the kill lands mid-job.
    let deadline = Instant::now() + Duration::from_secs(120);
    let pid = loop {
        let status = server.status(&job_id);
        let pids = status
            .get("worker_pids")
            .and_then(Json::to_numbers)
            .expect("pids");
        if let Some(&pid) = pids.first() {
            break pid as u32;
        }
        let state = status.get("state").and_then(Json::as_str).expect("state");
        assert_eq!(
            state, "running",
            "job finished before a worker appeared: {status:?}"
        );
        assert!(
            Instant::now() < deadline,
            "no worker registered: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    let killed = Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .expect("run kill");
    assert!(killed.success(), "kill -9 {pid} failed");

    let status = server.wait_done(&job_id);
    assert_eq!(
        &server.result(&job_id),
        reference,
        "worker SIGKILL changed the bytes"
    );
    // The lone worker died, so the remaining shards ran in process.
    assert!(counter(&status, "fallback_shards") >= 1, "{status:?}");
    server.shutdown();
}

#[test]
fn sigkilled_supervisor_resumes_from_checkpoints() {
    let reference = baseline(JOB_144);
    let ckpt = temp_dir("resume");

    // Phase 1: run in process (checkpoints accrue shard by shard) and
    // SIGKILL the supervisor at a pseudo-random shard boundary.
    let first = Server::start(&ckpt, &[("NITHO_JOB_WORKERS", "0")]);
    let job_id = first.submit(JOB_144);
    let boundary = 1
        + (SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .expect("clock")
            .subsec_nanos() as usize)
            % 5;
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let status = first.status(&job_id);
        let done = counter(&status, "shards_done");
        if done >= boundary {
            break;
        }
        let state = status.get("state").and_then(Json::as_str).expect("state");
        assert_eq!(
            state, "running",
            "finished before the kill boundary: {status:?}"
        );
        assert!(
            Instant::now() < deadline,
            "stalled before the kill boundary"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(first); // SIGKILL-equivalent: kill() + wait, no graceful shutdown

    // Phase 2: a fresh supervisor over the same checkpoint dir resumes the
    // job on resubmit and reproduces the reference bytes exactly.
    let second = Server::start(&ckpt, &[("NITHO_JOB_WORKERS", "0")]);
    let resumed_id = second.submit(JOB_144);
    assert_eq!(resumed_id, job_id, "same spec must map to the same job id");
    let status = second.wait_done(&resumed_id);
    assert!(
        counter(&status, "resumed") >= 1,
        "at least the pre-kill shards resume from checkpoints (boundary {boundary}): {status:?}"
    );
    assert_eq!(
        &second.result(&resumed_id),
        reference,
        "kill-then-resume changed the stitched bytes"
    );
    second.shutdown();
    let _ = std::fs::remove_dir_all(&ckpt);
}
