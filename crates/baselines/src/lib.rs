//! Image-to-image learned lithography baselines.
//!
//! The paper compares Nitho against TEMPO (a cGAN aerial-image model) and
//! DOINN (an FNO+CNN resist model). Re-implementing those exact systems is
//! neither possible (closed training recipes) nor necessary: what the
//! comparison needs is representative *image-to-image* learners that map the
//! mask picture directly to the output picture with learned parameters, so
//! their shape bias and generalization failure can be contrasted with Nitho's
//! physics-informed kernel regression. This crate provides:
//!
//! * [`CnnLitho`] — a TEMPO-like convolutional encoder/decoder regressor,
//! * [`FnoLitho`] — a DOINN-like spectral (Fourier Neural Operator) regressor,
//!
//! both trained with pixel-wise regression on our autodiff engine, operating
//! at a configurable working resolution (image learners are the component
//! that cannot afford full-resolution processing — the same trade-off the
//! paper highlights). See DESIGN.md §1 for the substitution rationale.

#![forbid(unsafe_code)]

pub mod cnn;
pub mod fno;
pub mod regressor;

pub use cnn::CnnLitho;
pub use fno::FnoLitho;
pub use regressor::{ImageRegressor, RegressorConfig, TargetStage};
