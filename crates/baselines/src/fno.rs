//! DOINN-like spectral (Fourier Neural Operator) baseline.
//!
//! DOINN's key component is a global spectral branch: the feature map is
//! transformed to the frequency domain, multiplied by learned complex
//! weights, and transformed back. This baseline stacks such spectral layers
//! (with ReLU non-linearities between them) over the downsampled mask and is
//! trained with pixel-wise regression, exactly like the CNN baseline.

use litho_autodiff::{Adam, NodeId, Optimizer, ParamId, ParamStore, Tape};
use litho_masks::Dataset;
use litho_math::{DeterministicRng, RealMatrix};

use crate::regressor::{
    downsample_input, downsample_target, upsample_prediction, ImageRegressor, RegressorConfig,
    TargetStage,
};

/// A spectral mask → image regressor.
#[derive(Debug, Clone)]
pub struct FnoLitho {
    config: RegressorConfig,
    layers: usize,
    params: ParamStore,
    spectral_ids: Vec<ParamId>,
    gain_ids: Vec<ParamId>,
}

impl FnoLitho {
    /// Creates the baseline with the default depth (3 spectral layers).
    pub fn new(config: RegressorConfig) -> Self {
        Self::with_layers(config, 3)
    }

    /// Creates the baseline with an explicit number of spectral layers.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `layers` is zero.
    pub fn with_layers(config: RegressorConfig, layers: usize) -> Self {
        config.validate();
        assert!(layers > 0, "layer count must be positive");
        let res = config.working_resolution;
        let mut rng = DeterministicRng::new(config.seed.wrapping_add(1));
        let mut params = ParamStore::new();
        let mut spectral_ids = Vec::new();
        let mut gain_ids = Vec::new();
        for layer in 0..layers {
            // Spectral weights start near the identity (all-pass filter) so the
            // initial network is close to a smoothed copy of its input.
            let init = litho_math::ComplexMatrix::from_fn(res, res, |_, _| {
                litho_math::Complex64::new(1.0 + rng.normal(0.0, 0.1), rng.normal(0.0, 0.1))
            });
            spectral_ids.push(params.add(&format!("fno.layer{layer}.spectral"), init));
            gain_ids.push(params.add_real_glorot(
                &format!("fno.layer{layer}.gain"),
                1,
                res,
                &mut rng,
            ));
        }
        Self {
            config,
            layers,
            params,
            spectral_ids,
            gain_ids,
        }
    }

    /// The regressor configuration.
    pub fn config(&self) -> &RegressorConfig {
        &self.config
    }

    /// Number of spectral layers.
    pub fn layers(&self) -> usize {
        self.layers
    }

    fn forward(
        &self,
        tape: &mut Tape,
        input: NodeId,
        trainable: bool,
    ) -> (NodeId, Vec<(ParamId, NodeId)>) {
        let mut leaves = Vec::new();
        let mut hidden = input;
        for layer in 0..self.layers {
            let (w, g) = if trainable {
                let w = tape.leaf(self.params.value(self.spectral_ids[layer]).clone(), true);
                let g = tape.leaf(self.params.value(self.gain_ids[layer]).clone(), true);
                leaves.push((self.spectral_ids[layer], w));
                leaves.push((self.gain_ids[layer], g));
                (w, g)
            } else {
                (
                    tape.constant(self.params.value(self.spectral_ids[layer]).clone()),
                    tape.constant(self.params.value(self.gain_ids[layer]).clone()),
                )
            };
            // Spectral convolution: F⁻¹( W ⊙ F(h) ), plus a learned per-column
            // gain that plays the role of DOINN's local (pointwise) branch.
            let spectrum = tape.fft2(hidden);
            let filtered = tape.mul(spectrum, w);
            let spatial = tape.ifft2(filtered);
            let biased = tape.add_bias_row(spatial, g);
            hidden = if layer + 1 < self.layers {
                tape.relu(biased)
            } else {
                match self.config.stage {
                    TargetStage::Aerial => tape.relu(biased),
                    TargetStage::Resist => tape.sigmoid(biased),
                }
            };
        }
        (hidden, leaves)
    }

    fn target_for<'a>(&self, sample: &'a litho_masks::LithoSample) -> &'a RealMatrix {
        match self.config.stage {
            TargetStage::Aerial => &sample.aerial,
            TargetStage::Resist => &sample.resist,
        }
    }
}

impl ImageRegressor for FnoLitho {
    fn name(&self) -> &'static str {
        "DOINN-like FNO"
    }

    fn num_parameters(&self) -> usize {
        // Spectral weights are genuinely complex (two scalars each); the gain
        // rows are real. num_scalars already counts complex entries twice and
        // over-counts real rows, so correct for the latter.
        let real_gain_scalars: usize = self
            .gain_ids
            .iter()
            .map(|&id| self.params.value(id).len())
            .sum();
        self.params.num_scalars() - real_gain_scalars
    }

    fn train(&mut self, dataset: &Dataset) -> Vec<f64> {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        let res = self.config.working_resolution;
        let inputs: Vec<RealMatrix> = dataset
            .samples()
            .iter()
            .map(|s| downsample_input(&s.mask, res))
            .collect();
        let targets: Vec<RealMatrix> = dataset
            .samples()
            .iter()
            .map(|s| downsample_target(self.target_for(s), res))
            .collect();

        let mut adam = Adam::new(self.config.learning_rate);
        let mut rng = DeterministicRng::new(self.config.seed ^ 0xf_0f0);
        let mut losses = Vec::with_capacity(self.config.epochs);
        for _ in 0..self.config.epochs {
            let mut order: Vec<usize> = (0..inputs.len()).collect();
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            for &idx in &order {
                let mut tape = Tape::new();
                let x = tape.constant_real(&inputs[idx]);
                let (out, leaves) = self.forward(&mut tape, x, true);
                let loss = tape.mse_loss(out, &targets[idx]);
                tape.backward(loss);
                epoch_loss += tape.value(loss)[(0, 0)].re;
                let grads: Vec<_> = leaves
                    .iter()
                    .filter_map(|(pid, nid)| tape.grad(*nid).map(|g| (*pid, g.clone())))
                    .collect();
                adam.step(&mut self.params, &grads);
            }
            losses.push(epoch_loss / inputs.len() as f64);
        }
        losses
    }

    fn predict(&self, mask: &RealMatrix) -> RealMatrix {
        let res = self.config.working_resolution;
        let input = downsample_input(mask, res);
        let mut tape = Tape::new();
        let x = tape.constant_real(&input);
        let (out, _) = self.forward(&mut tape, x, false);
        let low = tape.value(out).re();
        upsample_prediction(&low, mask.rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_masks::DatasetKind;
    use litho_optics::{HopkinsSimulator, OpticalConfig};

    fn tiny_config() -> RegressorConfig {
        RegressorConfig {
            working_resolution: 16,
            epochs: 25,
            learning_rate: 5e-3,
            ..RegressorConfig::default()
        }
    }

    fn small_dataset(kind: DatasetKind, count: usize, seed: u64) -> (Dataset, OpticalConfig) {
        let optics = OpticalConfig::builder()
            .tile_px(64)
            .pixel_nm(8.0)
            .kernel_count(6)
            .build();
        let simulator = HopkinsSimulator::new(&optics);
        (Dataset::generate(kind, count, &simulator, seed), optics)
    }

    #[test]
    fn parameter_count_counts_complex_spectral_weights() {
        let fno = FnoLitho::with_layers(tiny_config(), 2);
        // Two 16×16 complex spectral layers + two real 16-wide gain rows.
        assert_eq!(fno.num_parameters(), 2 * 16 * 16 * 2 + 2 * 16);
        assert_eq!(fno.layers(), 2);
        assert_eq!(fno.name(), "DOINN-like FNO");
        assert_eq!(fno.config().epochs, 25);
    }

    #[test]
    fn training_reduces_loss_and_predicts_sensible_aerial() {
        let (dataset, optics) = small_dataset(DatasetKind::B2Metal, 8, 9);
        let (train, test) = dataset.split(0.75);
        let mut fno = FnoLitho::with_layers(tiny_config(), 2);
        let losses = fno.train(&train);
        assert!(losses.last().expect("losses") < &losses[0]);
        let (aerial, _resist) = fno.evaluate(&test, optics.resist_threshold, TargetStage::Aerial);
        assert!(aerial.psnr_db > 10.0, "PSNR {:.2}", aerial.psnr_db);
        let prediction = fno.predict(&test.samples()[0].mask);
        assert_eq!(prediction.shape(), (64, 64));
    }

    #[test]
    fn near_identity_initialization_passes_low_frequencies() {
        // Before training, the spectral layers are ≈ identity, so the output
        // resembles a (ReLU-clipped) copy of the downsampled mask.
        let fno = FnoLitho::with_layers(tiny_config(), 1);
        let (dataset, _) = small_dataset(DatasetKind::B1, 1, 2);
        let mask = &dataset.samples()[0].mask;
        let prediction = fno.predict(mask);
        let correlation = prediction.zip_map(mask, |a, b| a * b).sum();
        assert!(correlation > 0.0);
    }

    #[test]
    #[should_panic(expected = "layer count")]
    fn zero_layers_panics() {
        let _ = FnoLitho::with_layers(tiny_config(), 0);
    }
}
