//! Shared interface and utilities for the image-to-image baselines.

use litho_fft::{centered_spectrum, ifft2, ifftshift};
use litho_masks::Dataset;
#[cfg(test)]
use litho_math::util::center_crop;
use litho_math::util::{block_downsample, center_pad};
use litho_math::RealMatrix;
use litho_metrics::{AerialMetrics, ResistMetrics};

/// Which ground-truth image the baseline regresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetStage {
    /// Mask → aerial image (TEMPO's task).
    Aerial,
    /// Mask → resist image (DOINN's task; models are "re-trained using the
    /// resist image dataset with an amendment to the final activation layer"
    /// exactly as the paper's Table III footnote describes).
    Resist,
}

/// Hyper-parameters shared by both baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressorConfig {
    /// Internal working resolution (the mask is downsampled to this size
    /// before entering the network and the prediction is band-limited
    /// upsampled back to tile resolution).
    pub working_resolution: usize,
    /// Training target stage.
    pub stage: TargetStage,
    /// Number of training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Weight-initialization / shuffling seed.
    pub seed: u64,
}

impl Default for RegressorConfig {
    fn default() -> Self {
        Self {
            working_resolution: 32,
            stage: TargetStage::Aerial,
            epochs: 60,
            learning_rate: 2e-3,
            seed: 7,
        }
    }
}

impl RegressorConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the working resolution is not a power of two ≥ 8, or the
    /// epochs / learning rate are degenerate.
    pub fn validate(&self) {
        assert!(
            self.working_resolution >= 8 && self.working_resolution.is_power_of_two(),
            "working resolution must be a power of two ≥ 8"
        );
        assert!(self.epochs > 0, "epoch count must be positive");
        assert!(self.learning_rate > 0.0, "learning rate must be positive");
    }
}

/// Common behaviour of the learned image-to-image baselines.
pub trait ImageRegressor {
    /// Human-readable model name (used in result tables).
    fn name(&self) -> &'static str;

    /// Number of real scalar parameters.
    fn num_parameters(&self) -> usize;

    /// Trains the model on the dataset, returning the per-epoch losses.
    fn train(&mut self, dataset: &Dataset) -> Vec<f64>;

    /// Predicts the output image (aerial or resist probability, depending on
    /// the configured stage) at full tile resolution.
    fn predict(&self, mask: &RealMatrix) -> RealMatrix;

    /// Model size in bytes at 32-bit precision.
    fn size_bytes(&self) -> usize {
        self.num_parameters() * 4
    }

    /// Evaluates the model against a labelled dataset: aerial metrics when the
    /// stage is [`TargetStage::Aerial`], resist metrics after a 0.5 cut when
    /// the stage is [`TargetStage::Resist`]. The resist threshold is applied
    /// to aerial-stage predictions so both metric families are always
    /// reported.
    fn evaluate(
        &self,
        dataset: &Dataset,
        resist_threshold: f64,
        stage: TargetStage,
    ) -> (AerialMetrics, ResistMetrics) {
        let mut aerial_pairs = Vec::with_capacity(dataset.len());
        let mut resist_pairs = Vec::with_capacity(dataset.len());
        for sample in dataset.samples() {
            let prediction = self.predict(&sample.mask);
            match stage {
                TargetStage::Aerial => {
                    resist_pairs.push((
                        sample.resist.clone(),
                        prediction.threshold(resist_threshold),
                    ));
                    aerial_pairs.push((sample.aerial.clone(), prediction));
                }
                TargetStage::Resist => {
                    resist_pairs.push((sample.resist.clone(), prediction.threshold(0.5)));
                    aerial_pairs.push((sample.aerial.clone(), prediction));
                }
            }
        }
        (
            AerialMetrics::evaluate(aerial_pairs.iter().map(|(a, b)| (a, b))),
            ResistMetrics::evaluate(resist_pairs.iter().map(|(a, b)| (a, b))),
        )
    }
}

/// Downsamples a binary mask to the working resolution by block averaging.
///
/// # Panics
///
/// Panics if the working resolution does not divide the mask size.
pub(crate) fn downsample_input(mask: &RealMatrix, working_resolution: usize) -> RealMatrix {
    assert_eq!(
        mask.rows() % working_resolution,
        0,
        "working resolution must divide the tile size"
    );
    block_downsample(mask, mask.rows() / working_resolution)
}

/// Band-limited downsample of a training target to the working resolution.
pub(crate) fn downsample_target(target: &RealMatrix, working_resolution: usize) -> RealMatrix {
    litho_optics::socs::band_limited_resample(target, working_resolution, working_resolution)
}

/// Band-limited (Fourier zero-padding) upsample of a low-resolution prediction
/// back to the full tile resolution.
pub(crate) fn upsample_prediction(prediction: &RealMatrix, out: usize) -> RealMatrix {
    let spectrum = centered_spectrum(prediction);
    let padded = center_pad(&spectrum, out, out);
    let scale = (out * out) as f64 / prediction.len() as f64;
    ifft2(&ifftshift(&padded)).map(|z| z.re * scale)
}

/// Inverse of [`upsample_prediction`]; exposed for tests.
#[cfg(test)]
pub(crate) fn downsample_prediction(prediction: &RealMatrix, out: usize) -> RealMatrix {
    let spectrum = centered_spectrum(prediction);
    let cropped = center_crop(&spectrum, out, out);
    let scale = (out * out) as f64 / prediction.len() as f64;
    ifft2(&ifftshift(&cropped)).map(|z| z.re * scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        RegressorConfig::default().validate();
        let bad = RegressorConfig {
            working_resolution: 12,
            ..RegressorConfig::default()
        };
        let result = std::panic::catch_unwind(move || bad.validate());
        assert!(result.is_err());
    }

    #[test]
    fn resampling_roundtrip() {
        let image = RealMatrix::from_fn(64, 64, |i, j| {
            0.5 + 0.3 * ((i as f64) * 0.2).sin() * ((j as f64) * 0.15).cos()
        });
        // Band-limit first so the roundtrip is exact.
        let low = downsample_target(&image, 16);
        let up = upsample_prediction(&low, 64);
        let back = downsample_prediction(&up, 16);
        // The even-sized grids share an unpaired Nyquist bin, so the roundtrip
        // is exact only up to that single band-edge component.
        let max_err = low.zip_map(&back, |a, b| (a - b).abs()).max();
        assert!(max_err < 1e-2, "roundtrip error {max_err}");
    }

    #[test]
    fn downsample_input_preserves_density() {
        let mask = RealMatrix::from_fn(64, 64, |i, _| if i < 32 { 1.0 } else { 0.0 });
        let low = downsample_input(&mask, 16);
        assert_eq!(low.shape(), (16, 16));
        assert!((low.mean() - 0.5).abs() < 1e-12);
    }
}
