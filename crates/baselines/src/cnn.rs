//! TEMPO-like convolutional image-to-image baseline.
//!
//! A plain convolutional regressor (the generator half of the cGAN family the
//! paper's TEMPO baseline belongs to): stacked 3×3 convolutions over the
//! downsampled mask, trained with pixel-wise MSE, with the final activation
//! switched between ReLU (aerial stage) and sigmoid (resist stage) exactly as
//! the paper's Table III footnote describes for re-trained baselines.

use litho_autodiff::tape::ConvSpec;
use litho_autodiff::{Adam, NodeId, Optimizer, ParamId, ParamStore, Tape};
use litho_masks::Dataset;
use litho_math::{DeterministicRng, RealMatrix};

use crate::regressor::{
    downsample_input, downsample_target, upsample_prediction, ImageRegressor, RegressorConfig,
    TargetStage,
};

/// A convolutional mask → image regressor.
#[derive(Debug, Clone)]
pub struct CnnLitho {
    config: RegressorConfig,
    channels: usize,
    params: ParamStore,
    weight_ids: Vec<ParamId>,
    bias_ids: Vec<ParamId>,
}

impl CnnLitho {
    /// Creates the baseline with the default channel width (16).
    pub fn new(config: RegressorConfig) -> Self {
        Self::with_channels(config, 16)
    }

    /// Creates the baseline with an explicit hidden channel count.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `channels` is zero.
    pub fn with_channels(config: RegressorConfig, channels: usize) -> Self {
        config.validate();
        assert!(channels > 0, "channel count must be positive");
        let mut rng = DeterministicRng::new(config.seed);
        let mut params = ParamStore::new();
        let mut weight_ids = Vec::new();
        let mut bias_ids = Vec::new();
        // Layer channel plan: 1 → C → C → C → 1, all 3×3 kernels.
        let plan = [
            (1, channels),
            (channels, channels),
            (channels, channels),
            (channels, 1),
        ];
        for (layer, (cin, cout)) in plan.into_iter().enumerate() {
            weight_ids.push(params.add_real_glorot(
                &format!("cnn.layer{layer}.weight"),
                cout * cin * 3,
                3,
                &mut rng,
            ));
            bias_ids.push(params.add_zeros(&format!("cnn.layer{layer}.bias"), cout, 1));
        }
        Self {
            config,
            channels,
            params,
            weight_ids,
            bias_ids,
        }
    }

    /// The regressor configuration.
    pub fn config(&self) -> &RegressorConfig {
        &self.config
    }

    fn layer_plan(&self) -> [(usize, usize); 4] {
        let c = self.channels;
        [(1, c), (c, c), (c, c), (c, 1)]
    }

    fn forward(
        &self,
        tape: &mut Tape,
        input: NodeId,
        trainable: bool,
    ) -> (NodeId, Vec<(ParamId, NodeId)>) {
        let res = self.config.working_resolution;
        let mut leaves = Vec::new();
        let mut hidden = input;
        let plan = self.layer_plan();
        for (layer, (cin, cout)) in plan.into_iter().enumerate() {
            let (w, b) = if trainable {
                let w = tape.leaf(self.params.value(self.weight_ids[layer]).clone(), true);
                let b = tape.leaf(self.params.value(self.bias_ids[layer]).clone(), true);
                leaves.push((self.weight_ids[layer], w));
                leaves.push((self.bias_ids[layer], b));
                (w, b)
            } else {
                (
                    tape.constant(self.params.value(self.weight_ids[layer]).clone()),
                    tape.constant(self.params.value(self.bias_ids[layer]).clone()),
                )
            };
            let spec = ConvSpec {
                in_channels: cin,
                out_channels: cout,
                kernel_h: 3,
                kernel_w: 3,
                height: res,
                width: res,
            };
            let conv = tape.conv2d(hidden, w, b, spec);
            hidden = if layer + 1 < plan.len() {
                tape.relu(conv)
            } else {
                match self.config.stage {
                    TargetStage::Aerial => tape.relu(conv),
                    TargetStage::Resist => tape.sigmoid(conv),
                }
            };
        }
        (hidden, leaves)
    }

    fn target_for<'a>(&self, sample: &'a litho_masks::LithoSample) -> &'a RealMatrix {
        match self.config.stage {
            TargetStage::Aerial => &sample.aerial,
            TargetStage::Resist => &sample.resist,
        }
    }
}

impl ImageRegressor for CnnLitho {
    fn name(&self) -> &'static str {
        "TEMPO-like CNN"
    }

    fn num_parameters(&self) -> usize {
        // Real-valued network: count real scalars only.
        self.params.num_scalars() / 2
    }

    fn train(&mut self, dataset: &Dataset) -> Vec<f64> {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        let res = self.config.working_resolution;
        let inputs: Vec<RealMatrix> = dataset
            .samples()
            .iter()
            .map(|s| downsample_input(&s.mask, res))
            .collect();
        let targets: Vec<RealMatrix> = dataset
            .samples()
            .iter()
            .map(|s| downsample_target(self.target_for(s), res))
            .collect();

        let mut adam = Adam::new(self.config.learning_rate);
        let mut rng = DeterministicRng::new(self.config.seed ^ 0x00c0_ffee);
        let mut losses = Vec::with_capacity(self.config.epochs);
        for _ in 0..self.config.epochs {
            let mut order: Vec<usize> = (0..inputs.len()).collect();
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            for &idx in &order {
                let mut tape = Tape::new();
                let x = tape.constant_real(&inputs[idx]);
                let (out, leaves) = self.forward(&mut tape, x, true);
                let loss = tape.mse_loss(out, &targets[idx]);
                tape.backward(loss);
                epoch_loss += tape.value(loss)[(0, 0)].re;
                let grads: Vec<_> = leaves
                    .iter()
                    .filter_map(|(pid, nid)| tape.grad(*nid).map(|g| (*pid, g.clone())))
                    .collect();
                adam.step(&mut self.params, &grads);
            }
            losses.push(epoch_loss / inputs.len() as f64);
        }
        losses
    }

    fn predict(&self, mask: &RealMatrix) -> RealMatrix {
        let res = self.config.working_resolution;
        let input = downsample_input(mask, res);
        let mut tape = Tape::new();
        let x = tape.constant_real(&input);
        let (out, _) = self.forward(&mut tape, x, false);
        let low = tape.value(out).re();
        upsample_prediction(&low, mask.rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_masks::DatasetKind;
    use litho_optics::{HopkinsSimulator, OpticalConfig};

    fn tiny_config() -> RegressorConfig {
        RegressorConfig {
            working_resolution: 16,
            epochs: 30,
            learning_rate: 4e-3,
            ..RegressorConfig::default()
        }
    }

    fn small_dataset(kind: DatasetKind, count: usize, seed: u64) -> (Dataset, OpticalConfig) {
        let optics = OpticalConfig::builder()
            .tile_px(64)
            .pixel_nm(8.0)
            .kernel_count(6)
            .build();
        let simulator = HopkinsSimulator::new(&optics);
        (Dataset::generate(kind, count, &simulator, seed), optics)
    }

    #[test]
    fn parameter_count_and_name() {
        let cnn = CnnLitho::with_channels(tiny_config(), 8);
        let expected = (8 * 9 + 8) + (8 * 8 * 9 + 8) * 2 + (8 * 9 + 1);
        assert_eq!(cnn.num_parameters(), expected);
        assert_eq!(cnn.size_bytes(), expected * 4);
        assert_eq!(cnn.name(), "TEMPO-like CNN");
        assert_eq!(cnn.config().working_resolution, 16);
    }

    #[test]
    fn training_reduces_loss_and_predicts_sensible_aerial() {
        let (dataset, optics) = small_dataset(DatasetKind::B1, 8, 3);
        let (train, test) = dataset.split(0.75);
        let mut cnn = CnnLitho::with_channels(tiny_config(), 8);
        let losses = cnn.train(&train);
        assert!(losses.last().expect("losses") < &losses[0]);

        let (aerial, resist) = cnn.evaluate(&test, optics.resist_threshold, TargetStage::Aerial);
        // The image learner fits only the broad intensity pattern at low
        // resolution; expect modest PSNR, clearly worse than Nitho's ~25+ dB.
        assert!(aerial.psnr_db > 8.0, "PSNR {:.2}", aerial.psnr_db);
        assert!(resist.mpa_percent > 40.0);
        let prediction = cnn.predict(&test.samples()[0].mask);
        assert_eq!(prediction.shape(), (64, 64));
        assert!(prediction.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn resist_stage_uses_sigmoid_output() {
        let (dataset, _) = small_dataset(DatasetKind::B2Via, 4, 5);
        let config = RegressorConfig {
            stage: TargetStage::Resist,
            epochs: 3,
            ..tiny_config()
        };
        let mut cnn = CnnLitho::with_channels(config, 4);
        cnn.train(&dataset);
        let low = downsample_input(&dataset.samples()[0].mask, 16);
        let mut tape = Tape::new();
        let x = tape.constant_real(&low);
        let (out, _) = cnn.forward(&mut tape, x, false);
        // Sigmoid keeps the raw network output in (0, 1).
        assert!(tape.value(out).re().max() <= 1.0);
        assert!(tape.value(out).re().min() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn training_on_empty_dataset_panics() {
        let mut cnn = CnnLitho::with_channels(tiny_config(), 4);
        let _ = cnn.train(&Dataset::new("empty"));
    }
}
