//! Sum of Coherent Systems (SOCS) decomposition and aerial-image synthesis —
//! Eqs. (3), (4) and (9) of the paper.
//!
//! The Hermitian TCC matrix is decomposed as `T = Σᵢ αᵢ hᵢ hᵢ^H`; each
//! eigenvector, scaled by `√αᵢ`, becomes one *optical kernel* `Kᵢ` on the
//! kernel frequency grid, and the aerial image of a mask `M` is
//!
//! ```text
//! I = Σᵢ | F⁻¹( Kᵢ ⊙ F(M) ) |²
//! ```
//!
//! This module is used in two roles: inside [`crate::HopkinsSimulator`] with
//! physically computed kernels (the golden engine), and by the `nitho` crate
//! with *predicted* kernels coming out of the complex-valued neural field.

use litho_fft::{ifft2, ifftshift};
use litho_math::util::center_pad;
use litho_math::{eigen, ComplexMatrix, Matrix, RealMatrix};
use litho_obs::Counter;

use crate::config::KernelDims;
use crate::tcc::TccMatrix;

/// Aerial images synthesized through the fused SoA SOCS path.
static SOCS_AERIALS_TOTAL: Counter = Counter::new(
    "litho_optics_socs_aerials_total",
    "aerial images synthesized via the fused SoA SOCS path",
);
/// Per-kernel |F⁻¹(K ⊙ F(M))|² accumulation passes (aerials × kernel count).
static SOCS_KERNEL_ACCUMULATIONS_TOTAL: Counter = Counter::new(
    "litho_optics_socs_kernel_accumulations_total",
    "per-kernel intensity accumulation passes across all SOCS syntheses",
);

/// Registers this crate's metrics with the `litho_obs` registry. Idempotent.
pub fn register_metrics() {
    litho_obs::register(&SOCS_AERIALS_TOTAL);
    litho_obs::register(&SOCS_KERNEL_ACCUMULATIONS_TOTAL);
}

/// Process-wide count of SOCS aerial syntheses.
pub fn total_socs_aerials() -> u64 {
    SOCS_AERIALS_TOTAL.get()
}

/// Records one SOCS aerial synthesis of `kernel_count` kernels. Public
/// because the fused SoA engine has a second front door: the frozen
/// neural-field path in `nitho` accumulates its predicted kernels through
/// `litho_fft::soa` directly, without constructing a [`SocsKernels`] bank.
pub fn record_synthesis(kernel_count: usize) {
    SOCS_AERIALS_TOTAL.inc();
    SOCS_KERNEL_ACCUMULATIONS_TOTAL.add(kernel_count as u64);
}

/// A bank of SOCS optical kernels on the kernel frequency grid.
#[derive(Debug, Clone)]
pub struct SocsKernels {
    kernels: Vec<ComplexMatrix>,
    eigenvalues: Vec<f64>,
    dims: KernelDims,
}

impl SocsKernels {
    /// Decomposes a TCC matrix into its leading `dims.count` coherent kernels.
    ///
    /// Small grids (≤ 256 points) use the full Jacobi eigensolver; larger
    /// grids use blocked subspace iteration, which is accurate because TCC
    /// eigenvalues decay quickly.
    pub fn from_tcc(tcc: &TccMatrix) -> Self {
        let dims = tcc.dims();
        let n = dims.grid_points();
        let count = dims.count.min(n);
        let eig = if n <= 256 {
            let full = eigen::hermitian_eigen(tcc.matrix());
            eigen::HermitianEigen {
                values: full.values[..count].to_vec(),
                vectors: Matrix::from_fn(n, count, |i, k| full.vectors[(i, k)]),
            }
        } else {
            eigen::hermitian_top_eigen(tcc.matrix(), count, 8, 400, 1e-10, 7)
        };

        let mut kernels = Vec::with_capacity(count);
        let mut eigenvalues = Vec::with_capacity(count);
        for k in 0..count {
            let lambda = eig.values[k].max(0.0);
            eigenvalues.push(lambda);
            let scale = lambda.sqrt();
            let kernel = ComplexMatrix::from_fn(dims.rows, dims.cols, |i, j| {
                eig.vectors[(i * dims.cols + j, k)].scale(scale)
            });
            kernels.push(kernel);
        }
        Self {
            kernels,
            eigenvalues,
            dims,
        }
    }

    /// Builds a kernel bank directly from explicit kernels (used with the
    /// neural-field predictions of the `nitho` crate).
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty or the kernels do not all share the same
    /// shape.
    pub fn from_kernels(kernels: Vec<ComplexMatrix>) -> Self {
        assert!(!kernels.is_empty(), "kernel bank cannot be empty");
        let (rows, cols) = kernels[0].shape();
        assert!(
            kernels.iter().all(|k| k.shape() == (rows, cols)),
            "all kernels must share the same shape"
        );
        let eigenvalues = kernels.iter().map(|k| k.frobenius_norm().powi(2)).collect();
        let dims = KernelDims {
            rows,
            cols,
            count: kernels.len(),
        };
        Self {
            kernels,
            eigenvalues,
            dims,
        }
    }

    /// The kernels, ordered by decreasing eigenvalue.
    pub fn kernels(&self) -> &[ComplexMatrix] {
        &self.kernels
    }

    /// Eigenvalues `αᵢ` associated with each kernel.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Kernel-grid dimensions.
    pub fn dims(&self) -> KernelDims {
        self.dims
    }

    /// Fraction of total TCC energy captured by the retained kernels, given
    /// the TCC trace (`Σ` of *all* eigenvalues).
    ///
    /// Clamped to `[0, 1]`: [`SocsKernels::from_tcc`] floors negative
    /// eigenvalues (numerical noise of a PSD matrix) to zero, so the retained
    /// sum can slightly exceed the trace-derived total and would otherwise
    /// report more than 100 % captured energy.
    pub fn captured_energy(&self, tcc_trace: f64) -> f64 {
        if tcc_trace <= 0.0 {
            return 0.0;
        }
        (self.eigenvalues.iter().sum::<f64>() / tcc_trace).clamp(0.0, 1.0)
    }

    /// Normalization constant such that an open-frame (all-ones) mask of
    /// `mask_pixels` total pixels produces unit intensity at `out_rows ×
    /// out_cols` output resolution.
    fn clear_field_intensity(&self, mask_pixels: usize, out_rows: usize, out_cols: usize) -> f64 {
        let dc_row = self.dims.rows / 2;
        let dc_col = self.dims.cols / 2;
        let dc_energy: f64 = self
            .kernels
            .iter()
            .map(|k| k[(dc_row, dc_col)].abs_sq())
            .sum();
        let ratio = mask_pixels as f64 / (out_rows * out_cols) as f64;
        dc_energy * ratio * ratio
    }

    /// Computes the aerial image from an already cropped, centered mask
    /// spectrum (the `m × n` region around DC of `fftshift(fft2(M))`).
    ///
    /// `mask_pixels` is the pixel count of the original mask (needed for
    /// clear-field normalization); the output is `out_rows × out_cols`.
    ///
    /// # Panics
    ///
    /// Panics if the spectrum shape does not match the kernel grid or the
    /// output is smaller than the kernel grid.
    pub fn aerial_from_cropped_spectrum(
        &self,
        spectrum: &ComplexMatrix,
        mask_pixels: usize,
        out_rows: usize,
        out_cols: usize,
    ) -> RealMatrix {
        assert_eq!(
            spectrum.shape(),
            (self.dims.rows, self.dims.cols),
            "spectrum must match the kernel grid"
        );
        assert!(
            out_rows >= self.dims.rows && out_cols >= self.dims.cols,
            "output resolution must be at least the kernel grid"
        );
        let _span = litho_obs::span("socs.aerial");
        record_synthesis(self.kernels.len());
        // Fused split-complex synthesis: kernels are processed in fixed-size
        // groups; each group accumulates its |F⁻¹(Kᵢ ⊙ F(M))|² terms in
        // kernel order straight into one group plane through the
        // zero-allocation SoA engine (no per-kernel matrices). Groups spread
        // over litho_parallel workers and reduce in ascending group order, so
        // the image never depends on the thread count. A single group (the
        // common r ≤ 16 case) degrades to one serial fused pass.
        const KERNEL_GROUP: usize = 16;
        let group_count = self.kernels.len().div_ceil(KERNEL_GROUP);
        let mut partials = litho_parallel::par_map(group_count, |g| {
            let start = g * KERNEL_GROUP;
            let end = (start + KERNEL_GROUP).min(self.kernels.len());
            let mut acc = RealMatrix::zeros(out_rows, out_cols);
            litho_fft::soa::accumulate_socs_intensity(
                &self.kernels[start..end],
                spectrum,
                &mut acc,
            );
            acc
        })
        .into_iter();
        let mut intensity = partials.next().expect("at least one kernel group");
        for partial in partials {
            intensity += &partial;
        }
        let norm = self.clear_field_intensity(mask_pixels, out_rows, out_cols);
        if norm > 0.0 {
            intensity.scale(1.0 / norm)
        } else {
            intensity
        }
    }

    /// The retained array-of-structs synthesis: per kernel, materialize the
    /// padded product, shift, inverse transform and accumulate `|·|²` — the
    /// pre-SoA engine, kept as the independent equivalence baseline that
    /// [`SocsKernels::aerial_from_cropped_spectrum`] is pinned against
    /// (≤ 1e-12, `tests/soa_equivalence.rs`) and benchmarked against.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`SocsKernels::aerial_from_cropped_spectrum`].
    pub fn aerial_from_cropped_spectrum_aos(
        &self,
        spectrum: &ComplexMatrix,
        mask_pixels: usize,
        out_rows: usize,
        out_cols: usize,
    ) -> RealMatrix {
        assert_eq!(
            spectrum.shape(),
            (self.dims.rows, self.dims.cols),
            "spectrum must match the kernel grid"
        );
        assert!(
            out_rows >= self.dims.rows && out_cols >= self.dims.cols,
            "output resolution must be at least the kernel grid"
        );
        let mut intensity = RealMatrix::zeros(out_rows, out_cols);
        for kernel in &self.kernels {
            let product = kernel.hadamard(spectrum);
            let padded = center_pad(&product, out_rows, out_cols);
            let field = ifft2(&ifftshift(&padded));
            intensity += &field.abs_sq();
        }
        let norm = self.clear_field_intensity(mask_pixels, out_rows, out_cols);
        if norm > 0.0 {
            intensity.scale(1.0 / norm)
        } else {
            intensity
        }
    }

    /// Computes the aerial image of a full-resolution binary mask at the
    /// requested output resolution.
    ///
    /// # Panics
    ///
    /// Panics if the mask is smaller than the kernel grid or the requested
    /// output is smaller than the kernel grid.
    pub fn aerial_image_at(
        &self,
        mask: &RealMatrix,
        out_rows: usize,
        out_cols: usize,
    ) -> RealMatrix {
        let cropped = self.cropped_mask_spectrum(mask);
        self.aerial_from_cropped_spectrum(&cropped, mask.len(), out_rows, out_cols)
    }

    /// Computes the aerial image at the mask's own resolution.
    pub fn aerial_image(&self, mask: &RealMatrix) -> RealMatrix {
        self.aerial_image_at(mask, mask.rows(), mask.cols())
    }

    /// Crops the centered spectrum of a mask to the kernel grid — the
    /// non-parametric "mask operation" shared by the simulator and Nitho
    /// (Algorithm 1, lines 6–7). Computed through the fused split-complex
    /// transform (no shifted full-resolution spectrum is materialized).
    pub fn cropped_mask_spectrum(&self, mask: &RealMatrix) -> ComplexMatrix {
        litho_fft::soa::cropped_centered_spectrum(mask, self.dims.rows, self.dims.cols)
    }

    /// Total number of complex coefficients stored by the kernel bank.
    pub fn coefficient_count(&self) -> usize {
        self.kernels.len() * self.dims.grid_points()
    }

    /// Returns a bank truncated to the leading `count` kernels.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or exceeds the stored kernel count.
    pub fn truncated(&self, count: usize) -> Self {
        assert!(
            count > 0 && count <= self.kernels.len(),
            "invalid truncation count"
        );
        Self {
            kernels: self.kernels[..count].to_vec(),
            eigenvalues: self.eigenvalues[..count].to_vec(),
            dims: KernelDims { count, ..self.dims },
        }
    }
}

/// Band-limits a real image to `rows × cols` by cropping its centered spectrum
/// and transforming back (exact for band-limited inputs such as aerial
/// images). Used to compare images computed at different resolutions.
///
/// # Panics
///
/// Panics if the target is larger than the input.
pub fn band_limited_resample(image: &RealMatrix, rows: usize, cols: usize) -> RealMatrix {
    assert!(
        rows <= image.rows() && cols <= image.cols(),
        "band_limited_resample only downsamples"
    );
    let cropped = litho_fft::soa::cropped_centered_spectrum(image, rows, cols);
    let scale = (rows * cols) as f64 / (image.rows() * image.cols()) as f64;
    let field = ifft2(&ifftshift(&cropped));
    field.map(|z| z.re * scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OpticalConfig;
    use crate::source::{SourceGrid, SourceShape};
    use litho_math::Complex64 as C;

    fn test_config() -> OpticalConfig {
        OpticalConfig::builder()
            .tile_px(64)
            .pixel_nm(8.0)
            .kernel_count(8)
            .source(SourceShape::Annular {
                sigma_inner: 0.4,
                sigma_outer: 0.8,
            })
            .build()
    }

    fn build_socs(config: &OpticalConfig, side: usize) -> (TccMatrix, SocsKernels) {
        let dims = config.kernel_dims_with_side(side);
        let grid = SourceGrid::sample(&config.source, 13);
        let tcc = TccMatrix::assemble(config, dims, &grid);
        let socs = SocsKernels::from_tcc(&tcc);
        (tcc, socs)
    }

    fn test_mask(n: usize) -> RealMatrix {
        RealMatrix::from_fn(n, n, |i, j| {
            let in_line = (n / 4..n / 2).contains(&i);
            let in_space = (n / 8..7 * n / 8).contains(&j);
            if in_line && in_space {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn eigenvalues_sorted_and_nonnegative() {
        let config = test_config();
        let (_, socs) = build_socs(&config, 7);
        let values = socs.eigenvalues();
        assert_eq!(values.len(), 8);
        for w in values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(values.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn captured_energy_grows_with_kernel_count() {
        let config = test_config();
        let (tcc, socs) = build_socs(&config, 7);
        let few = socs.truncated(2).captured_energy(tcc.trace());
        let many = socs.captured_energy(tcc.trace());
        assert!(many > few);
        assert!(many <= 1.0 + 1e-9);
        assert!(few > 0.0);
    }

    #[test]
    fn captured_energy_is_clamped_to_unit_interval() {
        // from_tcc floors negative eigenvalues to zero, so the retained sum
        // can exceed the trace-derived total; the report must cap at 100 %.
        let bank = SocsKernels::from_kernels(vec![ComplexMatrix::filled(3, 3, C::new(1.0, 0.0))]);
        let retained: f64 = bank.eigenvalues().iter().sum();
        assert!(retained > 0.0);
        // A trace slightly below the retained energy (the negative-eigenvalue
        // scenario) must not report > 1.
        assert_eq!(bank.captured_energy(retained * 0.5), 1.0);
        assert!((bank.captured_energy(retained * 2.0) - 0.5).abs() < 1e-12);
        // Degenerate traces report zero.
        assert_eq!(bank.captured_energy(0.0), 0.0);
        assert_eq!(bank.captured_energy(-1.0), 0.0);
    }

    #[test]
    fn aerial_image_bit_identical_across_thread_counts() {
        let config = test_config();
        let (_, socs) = build_socs(&config, 9);
        let mask = test_mask(64);
        let serial = litho_parallel::with_threads(1, || socs.aerial_image(&mask));
        for threads in [2usize, 4] {
            let parallel = litho_parallel::with_threads(threads, || socs.aerial_image(&mask));
            for (a, b) in serial.iter().zip(parallel.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn open_frame_mask_gives_unit_intensity() {
        let config = test_config();
        let (_, socs) = build_socs(&config, 7);
        let mask = RealMatrix::filled(64, 64, 1.0);
        let aerial = socs.aerial_image(&mask);
        for v in aerial.iter() {
            assert!((v - 1.0).abs() < 1e-9, "open frame intensity {v}");
        }
    }

    #[test]
    fn dark_mask_gives_zero_intensity() {
        let config = test_config();
        let (_, socs) = build_socs(&config, 7);
        let mask = RealMatrix::zeros(64, 64);
        let aerial = socs.aerial_image(&mask);
        assert!(aerial.max() < 1e-12);
    }

    #[test]
    fn aerial_intensity_is_nonnegative_and_bounded() {
        let config = test_config();
        let (_, socs) = build_socs(&config, 9);
        let aerial = socs.aerial_image(&test_mask(64));
        assert!(aerial.min() >= 0.0);
        // Diffraction ringing can overshoot slightly but stays near 1.
        assert!(aerial.max() < 1.6);
        // A mask with ~37% open area must land well below clear field on
        // average but clearly above zero.
        let mean = aerial.mean();
        assert!(mean > 0.05 && mean < 0.9, "mean intensity {mean}");
    }

    #[test]
    fn line_pattern_prints_brighter_inside_than_outside() {
        let config = test_config();
        let (_, socs) = build_socs(&config, 9);
        let mask = test_mask(64);
        let aerial = socs.aerial_image(&mask);
        // Compare intensity at the line center against a point far outside.
        let inside = aerial[(64 * 3 / 8, 32)];
        let outside = aerial[(60, 32)];
        assert!(inside > 3.0 * outside, "inside {inside} outside {outside}");
    }

    #[test]
    fn aerial_resolution_independence() {
        // Computing at full resolution then band-limited downsampling must
        // match computing directly at the lower resolution.
        let config = test_config();
        let (_, socs) = build_socs(&config, 7);
        let mask = test_mask(64);
        let full = socs.aerial_image_at(&mask, 64, 64);
        let low = socs.aerial_image_at(&mask, 32, 32);
        let resampled = band_limited_resample(&full, 32, 32);
        let mut max_err: f64 = 0.0;
        for i in 0..32 {
            for j in 0..32 {
                max_err = max_err.max((low[(i, j)] - resampled[(i, j)]).abs());
            }
        }
        assert!(max_err < 1e-6, "max error {max_err}");
    }

    #[test]
    fn from_kernels_roundtrip() {
        let k0 = ComplexMatrix::filled(3, 3, C::new(0.5, 0.0));
        let k1 = ComplexMatrix::filled(3, 3, C::new(0.0, 0.25));
        let bank = SocsKernels::from_kernels(vec![k0.clone(), k1]);
        assert_eq!(bank.dims().count, 2);
        assert_eq!(bank.dims().rows, 3);
        assert_eq!(bank.coefficient_count(), 18);
        assert_eq!(bank.kernels()[0], k0);
        assert!(bank.eigenvalues()[0] > bank.eigenvalues()[1]);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_kernel_bank_panics() {
        let _ = SocsKernels::from_kernels(vec![]);
    }

    #[test]
    #[should_panic(expected = "same shape")]
    fn mismatched_kernel_shapes_panic() {
        let _ =
            SocsKernels::from_kernels(vec![ComplexMatrix::zeros(3, 3), ComplexMatrix::zeros(5, 5)]);
    }

    #[test]
    fn truncation_keeps_leading_kernels() {
        let config = test_config();
        let (_, socs) = build_socs(&config, 7);
        let truncated = socs.truncated(3);
        assert_eq!(truncated.kernels().len(), 3);
        assert_eq!(truncated.eigenvalues(), &socs.eigenvalues()[..3]);
        assert_eq!(truncated.dims().rows, socs.dims().rows);
    }

    #[test]
    fn more_kernels_better_aerial_approximation() {
        // The truncation error of SOCS decreases monotonically-ish with r; we
        // check the coarse version differs more from the rank-full reference.
        let config = OpticalConfig::builder()
            .tile_px(64)
            .pixel_nm(8.0)
            .kernel_count(25)
            .source(SourceShape::Annular {
                sigma_inner: 0.4,
                sigma_outer: 0.8,
            })
            .build();
        let (_, socs) = build_socs(&config, 5);
        let mask = test_mask(64);
        let reference = socs.aerial_image(&mask);
        let coarse = socs.truncated(2).aerial_image(&mask);
        let medium = socs.truncated(10).aerial_image(&mask);
        let err = |a: &RealMatrix| {
            a.zip_map(&reference, |x, y| (x - y) * (x - y))
                .mean()
                .sqrt()
        };
        assert!(err(&coarse) > err(&medium));
    }
}
