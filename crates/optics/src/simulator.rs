//! End-to-end rigorous lithography simulator.
//!
//! [`HopkinsSimulator`] ties the source, pupil, TCC and SOCS modules together
//! into the mask → aerial → resist pipeline of Fig. 1(b). It is the "golden
//! engine" that plays the role of the ICCAD-2013 lithosim binary / Mentor
//! Calibre in the paper's experiments: every dataset in the workspace is
//! labelled by this simulator.

use litho_math::RealMatrix;

use crate::config::{KernelDims, OpticalConfig};
use crate::process::ProcessCondition;
use crate::resist::ResistModel;
use crate::socs::SocsKernels;
use crate::source::SourceGrid;
use crate::tcc::TccMatrix;

/// A rigorous Hopkins-model lithography simulator.
#[derive(Debug, Clone)]
pub struct HopkinsSimulator {
    config: OpticalConfig,
    dims: KernelDims,
    tcc_trace: f64,
    socs: SocsKernels,
    resist: ResistModel,
}

impl HopkinsSimulator {
    /// Builds the simulator for an optical configuration: samples the source,
    /// assembles the TCC on the resolution-limit kernel grid of Eq. (10) and
    /// decomposes it into SOCS kernels.
    pub fn new(config: &OpticalConfig) -> Self {
        Self::with_kernel_dims(config, config.kernel_dims())
    }

    /// Builds the simulator with an explicit kernel grid (used by ablations
    /// that sweep the kernel side length).
    pub fn with_kernel_dims(config: &OpticalConfig, dims: KernelDims) -> Self {
        let source_grid = SourceGrid::sample(&config.source, source_samples(config));
        let tcc = TccMatrix::assemble(config, dims, &source_grid);
        let socs = SocsKernels::from_tcc(&tcc);
        let resist = ResistModel::new(config.resist_threshold);
        Self {
            config: config.clone(),
            dims,
            tcc_trace: tcc.trace(),
            socs,
            resist,
        }
    }

    /// Rebuilds the simulator at a process condition: the defocus replaces
    /// the configured value (new pupil phase → new TCC → new SOCS kernels)
    /// and the dose is folded into the resist model's effective threshold.
    ///
    /// This is the *rigorous* process-window path — a full TCC assembly and
    /// eigendecomposition per condition — that the conditioned Nitho model is
    /// benchmarked against.
    ///
    /// # Panics
    ///
    /// Panics if the condition is invalid (non-finite, non-positive dose).
    pub fn at_condition(&self, condition: &ProcessCondition) -> Self {
        condition.validate();
        let config = OpticalConfig {
            defocus_nm: condition.defocus_nm,
            ..self.config.clone()
        };
        let mut simulator = Self::with_kernel_dims(&config, self.dims);
        simulator.resist = ResistModel::with_dose(config.resist_threshold, condition.dose);
        simulator
    }

    /// The optical configuration this simulator was built for.
    pub fn config(&self) -> &OpticalConfig {
        &self.config
    }

    /// Kernel-grid dimensions in use.
    pub fn kernel_dims(&self) -> KernelDims {
        self.dims
    }

    /// The physical SOCS kernel bank.
    pub fn kernels(&self) -> &SocsKernels {
        &self.socs
    }

    /// Fraction of TCC energy captured by the retained kernels.
    pub fn captured_energy(&self) -> f64 {
        self.socs.captured_energy(self.tcc_trace)
    }

    /// The resist model applied after aerial-image formation.
    pub fn resist_model(&self) -> &ResistModel {
        &self.resist
    }

    /// Computes the aerial image of a mask at the mask's own resolution,
    /// normalized to clear-field intensity 1.
    ///
    /// # Panics
    ///
    /// Panics if the mask is smaller than the kernel grid.
    pub fn aerial_image(&self, mask: &RealMatrix) -> RealMatrix {
        self.socs.aerial_image(mask)
    }

    /// Computes the aerial image at an explicit output resolution (the
    /// hierarchical low-resolution path used for fast training-target
    /// generation).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is smaller than the kernel grid.
    pub fn aerial_image_at(
        &self,
        mask: &RealMatrix,
        out_rows: usize,
        out_cols: usize,
    ) -> RealMatrix {
        self.socs.aerial_image_at(mask, out_rows, out_cols)
    }

    /// Visitor-style rigorous process-window sweep: the cropped mask
    /// spectrum is computed **once** (the mask never changes with focus or
    /// dose); each condition re-derives its TCC/SOCS stack, synthesizes the
    /// aerial from the shared spectrum and yields
    /// `(condition, effective_resist_threshold, aerial)` before both are
    /// dropped — O(1) planes resident regardless of the grid size.
    ///
    /// Each yielded aerial is bit-identical to
    /// `self.at_condition(c).aerial_image(mask)`:
    /// [`at_condition`](HopkinsSimulator::at_condition) preserves the kernel
    /// grid, so the rebuilt engine crops the very same spectrum, and
    /// `aerial_image` is exactly that crop followed by the synthesis used
    /// here.
    ///
    /// # Panics
    ///
    /// Panics if a condition is invalid or the mask is smaller than the
    /// kernel grid.
    pub fn for_each_condition(
        &self,
        mask: &RealMatrix,
        conditions: &[ProcessCondition],
        mut visit: impl FnMut(&ProcessCondition, f64, &RealMatrix),
    ) {
        let spectrum = self.socs.cropped_mask_spectrum(mask);
        for condition in conditions {
            let rebuilt = self.at_condition(condition);
            let aerial = rebuilt.socs.aerial_from_cropped_spectrum(
                &spectrum,
                mask.len(),
                mask.rows(),
                mask.cols(),
            );
            visit(condition, rebuilt.resist.effective_threshold(), &aerial);
        }
    }

    /// Develops an aerial image into a binary resist image.
    pub fn resist_image(&self, aerial: &RealMatrix) -> RealMatrix {
        self.resist.develop(aerial)
    }

    /// Full pipeline: returns `(aerial, resist)` for a mask.
    pub fn simulate(&self, mask: &RealMatrix) -> (RealMatrix, RealMatrix) {
        let aerial = self.aerial_image(mask);
        let resist = self.resist_image(&aerial);
        (aerial, resist)
    }
}

/// Number of source samples per axis: tied to the number of mask-spectrum
/// bins covered by the source so the discretization refines with tile size,
/// with a floor that keeps tiny test tiles physically meaningful.
fn source_samples(config: &OpticalConfig) -> usize {
    let sigma = config.source.sigma_outer();
    let bins = (sigma * config.tile_nm() * config.numerical_aperture / config.wavelength_nm).ceil()
        as usize;
    (2 * bins + 1).clamp(7, 41)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceShape;

    fn fast_config() -> OpticalConfig {
        OpticalConfig::builder()
            .tile_px(64)
            .pixel_nm(8.0)
            .kernel_count(8)
            .build()
    }

    fn dense_lines_mask(n: usize, pitch: usize, width: usize) -> RealMatrix {
        RealMatrix::from_fn(n, n, |_, j| if j % pitch < width { 1.0 } else { 0.0 })
    }

    #[test]
    fn simulator_reports_configuration() {
        let config = fast_config();
        let sim = HopkinsSimulator::new(&config);
        assert_eq!(sim.config().tile_px, 64);
        assert_eq!(sim.kernel_dims().rows % 2, 1);
        assert!(sim.captured_energy() > 0.5);
        assert_eq!(sim.resist_model().threshold(), config.resist_threshold);
        assert!(!sim.kernels().kernels().is_empty());
    }

    #[test]
    fn simulate_produces_binary_resist_and_bounded_aerial() {
        let config = fast_config();
        let sim = HopkinsSimulator::new(&config);
        let mask = dense_lines_mask(64, 16, 8);
        let (aerial, resist) = sim.simulate(&mask);
        assert_eq!(aerial.shape(), (64, 64));
        assert!(aerial.min() >= 0.0);
        assert!(resist.iter().all(|&v| v == 0.0 || v == 1.0));
        // A 50% duty-cycle grating prints roughly half the area.
        let coverage = resist.mean();
        assert!(coverage > 0.2 && coverage < 0.8, "coverage {coverage}");
    }

    #[test]
    fn resolution_limit_blurs_fine_pitch_more_than_coarse() {
        // Image contrast must drop as the grating pitch approaches the
        // resolution limit — the physical fact the paper's Eq. (10) rests on.
        let config = fast_config();
        let sim = HopkinsSimulator::new(&config);
        let contrast = |pitch: usize| {
            let mask = dense_lines_mask(64, pitch, pitch / 2);
            let aerial = sim.aerial_image(&mask);
            (aerial.max() - aerial.min()) / (aerial.max() + aerial.min())
        };
        let coarse = contrast(32); // 256 nm pitch at 8 nm/px
        let fine = contrast(8); // 64 nm pitch — below the ~71 nm resolution
        assert!(
            coarse > fine + 0.2,
            "coarse contrast {coarse} should exceed fine contrast {fine}"
        );
    }

    #[test]
    fn defocus_reduces_contrast() {
        let focused = HopkinsSimulator::new(&fast_config());
        let defocused_config = OpticalConfig::builder()
            .tile_px(64)
            .pixel_nm(8.0)
            .kernel_count(8)
            .defocus_nm(150.0)
            .build();
        let defocused = HopkinsSimulator::new(&defocused_config);
        let mask = dense_lines_mask(64, 20, 10);
        let c = |sim: &HopkinsSimulator| {
            let a = sim.aerial_image(&mask);
            (a.max() - a.min()) / (a.max() + a.min())
        };
        assert!(c(&focused) > c(&defocused));
    }

    #[test]
    fn aerial_low_resolution_path_matches_band_limit() {
        let config = fast_config();
        let sim = HopkinsSimulator::new(&config);
        let mask = dense_lines_mask(64, 16, 8);
        let full = sim.aerial_image(&mask);
        let low = sim.aerial_image_at(&mask, 32, 32);
        let resampled = crate::socs::band_limited_resample(&full, 32, 32);
        let rms = low
            .zip_map(&resampled, |a, b| (a - b) * (a - b))
            .mean()
            .sqrt();
        assert!(rms < 1e-7, "rms {rms}");
    }

    #[test]
    fn at_condition_rebuilds_defocus_and_folds_dose() {
        use crate::process::ProcessCondition;
        let base = HopkinsSimulator::new(&fast_config());
        let mask = dense_lines_mask(64, 20, 10);

        // Nominal condition reproduces the base simulator exactly.
        let nominal = base.at_condition(&ProcessCondition::nominal());
        let a = base.aerial_image(&mask);
        let b = nominal.aerial_image(&mask);
        assert!(a.zip_map(&b, |x, y| (x - y).abs()).max() < 1e-15);
        assert_eq!(nominal.resist_model(), base.resist_model());

        // Defocus must match a simulator built directly at that defocus.
        let condition = ProcessCondition::new(150.0, 1.0);
        let rebuilt = base.at_condition(&condition);
        let direct_config = OpticalConfig {
            defocus_nm: 150.0,
            ..fast_config()
        };
        let direct = HopkinsSimulator::new(&direct_config);
        let r = rebuilt.aerial_image(&mask);
        let d = direct.aerial_image(&mask);
        assert!(r.zip_map(&d, |x, y| (x - y).abs()).max() < 1e-15);
        assert_eq!(rebuilt.config().defocus_nm, 150.0);

        // Dose leaves the aerial untouched but shifts the resist threshold.
        let dosed = base.at_condition(&ProcessCondition::new(0.0, 1.25));
        let da = dosed.aerial_image(&mask);
        assert!(a.zip_map(&da, |x, y| (x - y).abs()).max() < 1e-15);
        assert!(
            (dosed.resist_model().effective_threshold() - base.config().resist_threshold / 1.25)
                .abs()
                < 1e-15
        );
        // Overdose prints at least as much area.
        assert!(dosed.resist_image(&da).sum() >= base.resist_image(&a).sum());
    }

    #[test]
    fn for_each_condition_matches_per_condition_rebuilds() {
        use crate::process::ProcessCondition;
        let base = HopkinsSimulator::new(&fast_config());
        let mask = dense_lines_mask(64, 20, 10);
        let conditions = [
            ProcessCondition::nominal(),
            ProcessCondition::new(-100.0, 0.9),
            ProcessCondition::new(100.0, 1.1),
        ];

        let mut visited = Vec::new();
        base.for_each_condition(&mask, &conditions, |condition, threshold, aerial| {
            visited.push((*condition, threshold, aerial.clone()));
        });

        assert_eq!(visited.len(), conditions.len());
        for (condition, threshold, aerial) in &visited {
            let rebuilt = base.at_condition(condition);
            let direct = rebuilt.aerial_image(&mask);
            // The hoisted-spectrum path must be bit-identical to the
            // materializing per-condition path, not merely close.
            assert!(
                aerial
                    .iter()
                    .zip(direct.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "streamed aerial diverged at {condition}"
            );
            assert_eq!(*threshold, rebuilt.resist_model().effective_threshold());
        }
    }

    #[test]
    fn different_sources_change_the_image() {
        let annular = HopkinsSimulator::new(&fast_config());
        let dipole_config = OpticalConfig::builder()
            .tile_px(64)
            .pixel_nm(8.0)
            .kernel_count(8)
            .source(SourceShape::Dipole {
                center: 0.6,
                radius: 0.2,
            })
            .build();
        let dipole = HopkinsSimulator::new(&dipole_config);
        let mask = dense_lines_mask(64, 16, 8);
        let a = annular.aerial_image(&mask);
        let b = dipole.aerial_image(&mask);
        let diff = a.zip_map(&b, |x, y| (x - y).abs()).max();
        assert!(diff > 1e-3, "source change should alter the aerial image");
    }

    #[test]
    fn source_sampling_density_scales_with_tile() {
        let small = fast_config();
        let large = OpticalConfig::builder().tile_px(512).build();
        assert!(source_samples(&large) >= source_samples(&small));
        assert!(source_samples(&large) <= 41);
    }
}
