//! Transmission cross-coefficient (TCC) assembly — Eq. (2) of the paper.
//!
//! The TCC captures everything about the imaging system (source + pupil) that
//! is independent of the mask:
//!
//! ```text
//! T(f', f'') = Σ_s J(s) · H(s + f') · H*(s + f'')
//! ```
//!
//! evaluated on the optical-kernel frequency grid. The result is a Hermitian
//! positive semi-definite matrix whose eigendecomposition yields the SOCS
//! kernels (see [`crate::socs`]).

use litho_math::{Complex64, ComplexMatrix};

use crate::config::{KernelDims, OpticalConfig};
use crate::pupil::Pupil;
use crate::source::SourceGrid;

/// The discretized TCC matrix on the kernel frequency grid.
#[derive(Debug, Clone)]
pub struct TccMatrix {
    matrix: ComplexMatrix,
    dims: KernelDims,
    /// Pupil-normalized frequency step of one mask-spectrum bin.
    bin_scale: f64,
}

impl TccMatrix {
    /// Assembles the TCC for the given optical configuration on the kernel
    /// grid `dims`, integrating the source over `source_grid`.
    ///
    /// The matrix is normalized by the total source weight so that
    /// `T(0, 0) ≤ 1` with equality for an unapodized source fully inside the
    /// pupil.
    pub fn assemble(config: &OpticalConfig, dims: KernelDims, source_grid: &SourceGrid) -> Self {
        let pupil = Pupil::new(config);
        let bin_scale = bin_scale(config);
        let n = dims.grid_points();

        // Pre-compute the kernel-grid frequency offsets in pupil coordinates.
        let offsets: Vec<(f64, f64)> = (0..n)
            .map(|idx| {
                let (fy, fx) = grid_offset(idx, dims, bin_scale);
                (fx, fy)
            })
            .collect();

        // Pre-compute H(s + f) for every source point and grid offset, one
        // source point per parallel work item.
        let mut pupil_samples = vec![Complex64::ZERO; source_grid.len() * n];
        litho_parallel::par_chunks_mut(&mut pupil_samples, n, |s_idx, samples| {
            let (sx, sy) = source_grid.points[s_idx];
            for (sample, &(fx, fy)) in samples.iter_mut().zip(offsets.iter()) {
                *sample = pupil.transmission(sx + fx, sy + fy);
            }
        });

        // Assemble row-by-row: every matrix row depends only on the shared
        // pupil samples, so rows distribute over workers. Each entry still
        // accumulates its source contributions in ascending source order,
        // keeping the matrix bit-identical to the serial assembly.
        let total_weight = source_grid.total_weight();
        let mut matrix = ComplexMatrix::zeros(n, n);
        litho_parallel::par_chunks_mut(matrix.as_mut_slice(), n, |i, out_row| {
            for (s_idx, &w) in source_grid.weights.iter().enumerate() {
                let row = &pupil_samples[s_idx * n..(s_idx + 1) * n];
                let hi = row[i];
                if hi == Complex64::ZERO {
                    continue;
                }
                let hi_w = hi.scale(w / total_weight);
                for (out, &hj) in out_row.iter_mut().zip(row.iter()) {
                    if hj == Complex64::ZERO {
                        continue;
                    }
                    *out += hi_w * hj.conj();
                }
            }
        });

        Self {
            matrix,
            dims,
            bin_scale,
        }
    }

    /// The underlying `N × N` Hermitian matrix (`N = rows·cols` of the kernel
    /// grid).
    pub fn matrix(&self) -> &ComplexMatrix {
        &self.matrix
    }

    /// Kernel-grid dimensions this TCC was assembled on.
    pub fn dims(&self) -> KernelDims {
        self.dims
    }

    /// Pupil-normalized frequency step of one mask-spectrum bin.
    pub fn bin_scale(&self) -> f64 {
        self.bin_scale
    }

    /// Trace of the TCC matrix (equals the sum of all SOCS eigenvalues).
    pub fn trace(&self) -> f64 {
        (0..self.matrix.rows())
            .map(|i| self.matrix[(i, i)].re)
            .sum()
    }

    /// Largest deviation from Hermitian symmetry, `max |T - T^H|`; should be at
    /// numerical noise level.
    pub fn hermitian_error(&self) -> f64 {
        let n = self.matrix.rows();
        let mut worst: f64 = 0.0;
        for i in 0..n {
            for j in 0..n {
                worst = worst.max((self.matrix[(i, j)] - self.matrix[(j, i)].conj()).abs());
            }
        }
        worst
    }
}

/// Pupil-normalized frequency step of one FFT bin for the configured tile:
/// `Δν = λ / (W_nm · NA)`.
pub fn bin_scale(config: &OpticalConfig) -> f64 {
    config.wavelength_nm / (config.tile_nm() * config.numerical_aperture)
}

/// Maps a flattened kernel-grid index to its `(fy, fx)` frequency offset in
/// pupil-normalized coordinates (row-major; DC sits at the grid center).
pub fn grid_offset(index: usize, dims: KernelDims, bin_scale: f64) -> (f64, f64) {
    let row = index / dims.cols;
    let col = index % dims.cols;
    let fy = (row as isize - (dims.rows / 2) as isize) as f64 * bin_scale;
    let fx = (col as isize - (dims.cols / 2) as isize) as f64 * bin_scale;
    (fy, fx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceShape;
    use litho_math::hermitian_eigen;

    fn small_config() -> OpticalConfig {
        // 64 px at 8 nm/px keeps the physical extent at 512 nm so the kernel
        // frequency grid stays well inside the pupil while FFTs remain cheap.
        OpticalConfig::builder()
            .tile_px(64)
            .pixel_nm(8.0)
            .kernel_count(6)
            .source(SourceShape::Circular { sigma: 0.7 })
            .build()
    }

    fn assemble_small() -> TccMatrix {
        let config = small_config();
        let dims = config.kernel_dims_with_side(5);
        let grid = SourceGrid::sample(&config.source, 9);
        TccMatrix::assemble(&config, dims, &grid)
    }

    #[test]
    fn tcc_assembly_bit_identical_across_thread_counts() {
        let config = small_config();
        let dims = config.kernel_dims_with_side(5);
        let grid = SourceGrid::sample(&config.source, 9);
        let serial = litho_parallel::with_threads(1, || TccMatrix::assemble(&config, dims, &grid));
        for threads in [2usize, 4] {
            let parallel =
                litho_parallel::with_threads(threads, || TccMatrix::assemble(&config, dims, &grid));
            for (a, b) in serial.matrix().iter().zip(parallel.matrix().iter()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "threads={threads}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn tcc_is_hermitian() {
        let tcc = assemble_small();
        assert!(tcc.hermitian_error() < 1e-12);
    }

    #[test]
    fn tcc_is_positive_semidefinite() {
        let tcc = assemble_small();
        let eig = hermitian_eigen(tcc.matrix());
        for &v in &eig.values {
            assert!(v > -1e-10, "negative eigenvalue {v}");
        }
        // Eigenvalues decay: the leading one dominates.
        assert!(eig.values[0] > 10.0 * eig.values[eig.values.len() - 1].max(1e-12));
    }

    #[test]
    fn dc_entry_is_unity_for_source_inside_pupil() {
        // A σ=0.7 disk source lies fully inside the pupil, so
        // T(0,0) = Σ w |H(s)|² / Σ w = 1.
        let tcc = assemble_small();
        let dims = tcc.dims();
        let dc = (dims.rows / 2) * dims.cols + dims.cols / 2;
        assert!((tcc.matrix()[(dc, dc)].re - 1.0).abs() < 1e-12);
        assert!(tcc.matrix()[(dc, dc)].im.abs() < 1e-12);
    }

    #[test]
    fn coherent_source_gives_rank_one_tcc() {
        // A point-like source (tiny σ sampled with one interior point) makes
        // T(f', f'') = H(f')·H*(f''), which has rank one.
        let config = OpticalConfig::builder()
            .tile_px(64)
            .pixel_nm(8.0)
            .source(SourceShape::Circular { sigma: 1e-6 })
            .build();
        let dims = config.kernel_dims_with_side(5);
        let grid = SourceGrid::sample(&config.source, 3);
        let tcc = TccMatrix::assemble(&config, dims, &grid);
        let eig = hermitian_eigen(tcc.matrix());
        assert!(eig.values[0] > 1e-3);
        for &v in &eig.values[1..] {
            assert!(v.abs() < 1e-9, "rank should be one, found eigenvalue {v}");
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let tcc = assemble_small();
        let eig = hermitian_eigen(tcc.matrix());
        let sum: f64 = eig.values.iter().sum();
        assert!((tcc.trace() - sum).abs() < 1e-8);
    }

    #[test]
    fn bin_scale_and_grid_offsets() {
        let config = small_config();
        let scale = bin_scale(&config);
        assert!((scale - 193.0 / (512.0 * 1.35)).abs() < 1e-12);
        let dims = config.kernel_dims_with_side(5);
        // Center of the grid is DC.
        let center = (dims.rows / 2) * dims.cols + dims.cols / 2;
        assert_eq!(grid_offset(center, dims, scale), (0.0, 0.0));
        // First element is the most negative offset in both axes.
        let (fy, fx) = grid_offset(0, dims, scale);
        assert!((fy + 2.0 * scale).abs() < 1e-12);
        assert!((fx + 2.0 * scale).abs() < 1e-12);
    }

    #[test]
    fn partial_coherence_shapes_offaxis_transmission() {
        let config = small_config();
        let dims = config.kernel_dims_with_side(5);
        // σ = 0.1: the farthest shifted point is 0.1 + 2√2·Δν ≈ 0.89 < 1, so
        // everything stays inside the pupil.
        let small = SourceGrid::sample(&SourceShape::Circular { sigma: 0.1 }, 9);
        let large = SourceGrid::sample(&SourceShape::Circular { sigma: 0.9 }, 9);
        let t_small = TccMatrix::assemble(&config, dims, &small);
        let t_large = TccMatrix::assemble(&config, dims, &large);
        // With a small source every (source + grid-offset) point stays inside
        // the pupil, so every diagonal entry is 1 and the normalized trace
        // equals the number of grid points.
        assert!((t_small.trace() - dims.grid_points() as f64).abs() < 1e-9);
        // A large source pushes part of the shifted pupil outside the unit
        // circle for off-axis offsets, reducing their normalized transmission.
        assert!(t_large.trace() < t_small.trace());
        let dc = (dims.rows / 2) * dims.cols + dims.cols / 2;
        assert!((t_large.matrix()[(dc, dc)].re - 1.0).abs() < 1e-12);
    }
}
