//! Illumination source models.
//!
//! The effective source `J(f, g)` of the Hopkins model (Eq. (2)) depends only
//! on the illuminator. Shapes are described in pupil-normalized σ coordinates
//! (σ = 1 corresponds to the pupil edge `NA/λ`), which is how scanner
//! illumination settings are specified in practice.

use litho_math::RealMatrix;

/// Supported illuminator geometries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SourceShape {
    /// Conventional circular (disk) illumination of radius `sigma`.
    Circular {
        /// Outer radius in σ units.
        sigma: f64,
    },
    /// Annular illumination between two radii.
    Annular {
        /// Inner radius in σ units.
        sigma_inner: f64,
        /// Outer radius in σ units.
        sigma_outer: f64,
    },
    /// Two-pole (dipole) illumination along the x axis.
    Dipole {
        /// Pole center distance from the axis in σ units.
        center: f64,
        /// Pole radius in σ units.
        radius: f64,
    },
    /// Four-pole (quasar) illumination on the diagonals.
    Quasar {
        /// Pole center distance from the axis in σ units.
        center: f64,
        /// Pole radius in σ units.
        radius: f64,
    },
}

impl SourceShape {
    /// Largest σ extent of the source; defines the TCC band limit
    /// `(1 + σ_outer)·NA/λ`.
    pub fn sigma_outer(&self) -> f64 {
        match *self {
            SourceShape::Circular { sigma } => sigma,
            SourceShape::Annular { sigma_outer, .. } => sigma_outer,
            SourceShape::Dipole { center, radius } | SourceShape::Quasar { center, radius } => {
                center + radius
            }
        }
    }

    /// Source intensity at the pupil-normalized point `(sx, sy)`; 1 inside the
    /// illuminated region, 0 outside.
    pub fn intensity(&self, sx: f64, sy: f64) -> f64 {
        let radius = (sx * sx + sy * sy).sqrt();
        match *self {
            SourceShape::Circular { sigma } => {
                if radius <= sigma {
                    1.0
                } else {
                    0.0
                }
            }
            SourceShape::Annular {
                sigma_inner,
                sigma_outer,
            } => {
                if radius >= sigma_inner && radius <= sigma_outer {
                    1.0
                } else {
                    0.0
                }
            }
            SourceShape::Dipole { center, radius } => {
                let left = ((sx + center).powi(2) + sy * sy).sqrt();
                let right = ((sx - center).powi(2) + sy * sy).sqrt();
                if left <= radius || right <= radius {
                    1.0
                } else {
                    0.0
                }
            }
            SourceShape::Quasar { center, radius } => {
                let diag = center / std::f64::consts::SQRT_2;
                let poles = [(diag, diag), (-diag, diag), (diag, -diag), (-diag, -diag)];
                if poles
                    .iter()
                    .any(|&(px, py)| ((sx - px).powi(2) + (sy - py).powi(2)).sqrt() <= radius)
                {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// A discretized source: a list of illuminated points on the pupil-normalized
/// grid, each with a weight.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceGrid {
    /// Pupil-normalized coordinates of the illuminated points.
    pub points: Vec<(f64, f64)>,
    /// Weight of each point (currently uniform but kept explicit for
    /// apodized sources).
    pub weights: Vec<f64>,
}

impl SourceGrid {
    /// Samples `shape` on a uniform grid of `samples_per_axis` points covering
    /// `[-σ_outer, σ_outer]²`, keeping only illuminated points.
    ///
    /// # Panics
    ///
    /// Panics if `samples_per_axis < 2` or the shape illuminates no grid
    /// point.
    pub fn sample(shape: &SourceShape, samples_per_axis: usize) -> Self {
        assert!(samples_per_axis >= 2, "need at least a 2x2 source grid");
        let sigma = shape.sigma_outer();
        let coords = litho_math::util::linspace(-sigma, sigma, samples_per_axis);
        let mut points = Vec::new();
        let mut weights = Vec::new();
        for &sy in &coords {
            for &sx in &coords {
                let w = shape.intensity(sx, sy);
                if w > 0.0 {
                    points.push((sx, sy));
                    weights.push(w);
                }
            }
        }
        assert!(
            !points.is_empty(),
            "source shape illuminates no grid point at this sampling density"
        );
        Self { points, weights }
    }

    /// Number of illuminated source points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the grid is empty (never happens for grids built with
    /// [`SourceGrid::sample`]).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Sum of all point weights (used for normalization).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Renders the source as an image on an `n × n` grid over
    /// `[-σ_outer, σ_outer]²` (useful for documentation and debugging).
    pub fn to_image(shape: &SourceShape, n: usize) -> RealMatrix {
        let sigma = shape.sigma_outer();
        let coords = litho_math::util::linspace(-sigma, sigma, n);
        RealMatrix::from_fn(n, n, |i, j| shape.intensity(coords[j], coords[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn circular_source_contains_origin() {
        let s = SourceShape::Circular { sigma: 0.6 };
        assert_eq!(s.intensity(0.0, 0.0), 1.0);
        assert_eq!(s.intensity(0.59, 0.0), 1.0);
        assert_eq!(s.intensity(0.7, 0.0), 0.0);
        assert_eq!(s.sigma_outer(), 0.6);
    }

    #[test]
    fn annular_source_excludes_center() {
        let s = SourceShape::Annular {
            sigma_inner: 0.5,
            sigma_outer: 0.9,
        };
        assert_eq!(s.intensity(0.0, 0.0), 0.0);
        assert_eq!(s.intensity(0.7, 0.0), 1.0);
        assert_eq!(s.intensity(0.95, 0.0), 0.0);
        assert_eq!(s.sigma_outer(), 0.9);
    }

    #[test]
    fn dipole_has_two_poles() {
        let s = SourceShape::Dipole {
            center: 0.6,
            radius: 0.2,
        };
        assert_eq!(s.intensity(0.6, 0.0), 1.0);
        assert_eq!(s.intensity(-0.6, 0.0), 1.0);
        assert_eq!(s.intensity(0.0, 0.6), 0.0);
        assert!((s.sigma_outer() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn quasar_has_four_poles() {
        let s = SourceShape::Quasar {
            center: 0.7,
            radius: 0.2,
        };
        let d = 0.7 / std::f64::consts::SQRT_2;
        assert_eq!(s.intensity(d, d), 1.0);
        assert_eq!(s.intensity(-d, d), 1.0);
        assert_eq!(s.intensity(d, -d), 1.0);
        assert_eq!(s.intensity(-d, -d), 1.0);
        assert_eq!(s.intensity(0.7, 0.0), 0.0);
    }

    #[test]
    fn sampled_grid_is_consistent_with_shape() {
        let shape = SourceShape::Annular {
            sigma_inner: 0.4,
            sigma_outer: 0.8,
        };
        let grid = SourceGrid::sample(&shape, 21);
        assert!(!grid.is_empty());
        assert_eq!(grid.len(), grid.weights.len());
        assert!((grid.total_weight() - grid.len() as f64).abs() < 1e-12);
        for &(sx, sy) in &grid.points {
            assert_eq!(shape.intensity(sx, sy), 1.0);
            let r = (sx * sx + sy * sy).sqrt();
            assert!((0.4 - 1e-9..=0.8 + 1e-9).contains(&r));
        }
    }

    #[test]
    fn denser_sampling_gives_more_points() {
        let shape = SourceShape::Circular { sigma: 0.9 };
        let coarse = SourceGrid::sample(&shape, 9);
        let fine = SourceGrid::sample(&shape, 31);
        assert!(fine.len() > coarse.len());
    }

    #[test]
    fn source_image_matches_shape() {
        let shape = SourceShape::Circular { sigma: 1.0 };
        let img = SourceGrid::to_image(&shape, 33);
        assert_eq!(img.shape(), (33, 33));
        assert_eq!(img[(16, 16)], 1.0);
        assert_eq!(img[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "at least a 2x2")]
    fn too_coarse_sampling_panics() {
        let _ = SourceGrid::sample(&SourceShape::Circular { sigma: 0.5 }, 1);
    }

    proptest! {
        #[test]
        fn prop_intensity_is_binary_and_symmetric(sx in -1.0..1.0f64, sy in -1.0..1.0f64) {
            for shape in [
                SourceShape::Circular { sigma: 0.7 },
                SourceShape::Annular { sigma_inner: 0.4, sigma_outer: 0.9 },
                SourceShape::Quasar { center: 0.6, radius: 0.25 },
            ] {
                let v = shape.intensity(sx, sy);
                prop_assert!(v == 0.0 || v == 1.0);
                // These shapes are symmetric under (x, y) → (-x, -y).
                prop_assert_eq!(v, shape.intensity(-sx, -sy));
            }
        }
    }
}
