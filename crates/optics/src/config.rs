//! Optical system configuration and the resolution-limit kernel sizing of the
//! paper's Eq. (10).

use crate::source::SourceShape;

/// Dimensions of the optical-kernel frequency grid, `K ∈ C^{r × n × m}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelDims {
    /// Kernel height `n` (number of frequency rows, odd).
    pub rows: usize,
    /// Kernel width `m` (number of frequency columns, odd).
    pub cols: usize,
    /// Number of retained SOCS kernels `r`.
    pub count: usize,
}

impl KernelDims {
    /// Number of frequency samples per kernel (`n · m`).
    pub fn grid_points(&self) -> usize {
        self.rows * self.cols
    }
}

/// Configuration of the lithographic imaging system.
///
/// Defaults follow the paper's experimental setup: ArF immersion lithography
/// with `λ = 193 nm`, `NA = 1.35`, annular illumination, one pixel per
/// nanometre, and a constant resist threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct OpticalConfig {
    /// Exposure wavelength in nanometres.
    pub wavelength_nm: f64,
    /// Numerical aperture of the projection lens.
    pub numerical_aperture: f64,
    /// Illumination source shape (in pupil-normalized σ coordinates).
    pub source: SourceShape,
    /// Defocus in nanometres (0 = best focus).
    pub defocus_nm: f64,
    /// Tile edge length in pixels (tiles are square).
    pub tile_px: usize,
    /// Physical size of one pixel in nanometres.
    pub pixel_nm: f64,
    /// Number of SOCS kernels to retain (`r` in the paper, `r < 60`).
    pub kernel_count: usize,
    /// Constant resist development threshold relative to the clear-field
    /// intensity (the paper's `I_thres`).
    pub resist_threshold: f64,
}

impl Default for OpticalConfig {
    fn default() -> Self {
        Self {
            wavelength_nm: 193.0,
            numerical_aperture: 1.35,
            source: SourceShape::Annular {
                sigma_inner: 0.5,
                sigma_outer: 0.9,
            },
            defocus_nm: 0.0,
            tile_px: 512,
            pixel_nm: 1.0,
            kernel_count: 12,
            resist_threshold: 0.225,
        }
    }
}

impl OpticalConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> OpticalConfigBuilder {
        OpticalConfigBuilder::default()
    }

    /// Theoretical resolution element `R = 0.5·λ/NA` in nanometres (Mack's
    /// resolution limit, used to motivate Eq. (10)).
    pub fn resolution_nm(&self) -> f64 {
        0.5 * self.wavelength_nm / self.numerical_aperture
    }

    /// Physical tile edge length in nanometres.
    pub fn tile_nm(&self) -> f64 {
        self.tile_px as f64 * self.pixel_nm
    }

    /// Tile area in µm², the unit the paper uses for throughput (Fig. 5).
    pub fn tile_area_um2(&self) -> f64 {
        let edge_um = self.tile_nm() / 1000.0;
        edge_um * edge_um
    }

    /// Highest mask-spectrum frequency (in FFT bins from DC) that can pass the
    /// partially coherent system: `(1 + σ_max)·NA/λ · W`, capped at the
    /// Nyquist bin.
    pub fn cutoff_bins(&self) -> usize {
        let sigma = self.source.sigma_outer();
        let bins = ((1.0 + sigma) * self.numerical_aperture / self.wavelength_nm * self.tile_nm())
            .ceil() as usize;
        bins.min(self.tile_px / 2)
    }

    /// Optical-kernel dimensions per the paper's Eq. (10):
    /// `m = (W·2·NA/λ)·2 + 1`, and the configured kernel count `r`.
    ///
    /// The result is clamped to the tile size (a kernel can never need more
    /// frequency samples than the mask spectrum has).
    pub fn kernel_dims(&self) -> KernelDims {
        let side = kernel_side(self.tile_nm(), self.wavelength_nm, self.numerical_aperture)
            .min(self.tile_px | 1);
        KernelDims {
            rows: side,
            cols: side,
            count: self.kernel_count,
        }
    }

    /// Kernel dimensions for an explicitly chosen side length (used by the
    /// kernel-size ablation of Fig. 6(b)).
    ///
    /// # Panics
    ///
    /// Panics if `side` is even or zero.
    pub fn kernel_dims_with_side(&self, side: usize) -> KernelDims {
        assert!(side % 2 == 1, "kernel side must be odd");
        KernelDims {
            rows: side,
            cols: side,
            count: self.kernel_count,
        }
    }
}

/// The paper's Eq. (10) for one axis: `m = (W·2·NA/λ)·2 + 1` with `W` in
/// nanometres; always returns an odd number ≥ 3.
pub fn kernel_side(extent_nm: f64, wavelength_nm: f64, numerical_aperture: f64) -> usize {
    let half = (extent_nm * 2.0 * numerical_aperture / wavelength_nm).floor() as usize;
    (2 * half + 1).max(3)
}

/// Builder for [`OpticalConfig`].
#[derive(Debug, Clone, Default)]
pub struct OpticalConfigBuilder {
    config: OpticalConfig,
}

impl OpticalConfigBuilder {
    /// Sets the exposure wavelength in nanometres.
    pub fn wavelength_nm(mut self, value: f64) -> Self {
        self.config.wavelength_nm = value;
        self
    }

    /// Sets the numerical aperture.
    pub fn numerical_aperture(mut self, value: f64) -> Self {
        self.config.numerical_aperture = value;
        self
    }

    /// Sets the illumination source shape.
    pub fn source(mut self, value: SourceShape) -> Self {
        self.config.source = value;
        self
    }

    /// Sets the defocus in nanometres.
    pub fn defocus_nm(mut self, value: f64) -> Self {
        self.config.defocus_nm = value;
        self
    }

    /// Sets the square tile edge length in pixels.
    pub fn tile_px(mut self, value: usize) -> Self {
        self.config.tile_px = value;
        self
    }

    /// Sets the physical pixel pitch in nanometres.
    pub fn pixel_nm(mut self, value: f64) -> Self {
        self.config.pixel_nm = value;
        self
    }

    /// Sets the number of retained SOCS kernels.
    pub fn kernel_count(mut self, value: usize) -> Self {
        self.config.kernel_count = value;
        self
    }

    /// Sets the resist threshold (relative to clear-field intensity).
    pub fn resist_threshold(mut self, value: f64) -> Self {
        self.config.resist_threshold = value;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any value is non-physical (non-positive wavelength, NA, tile
    /// size, pixel size or kernel count, or a resist threshold outside (0, 1)).
    pub fn build(self) -> OpticalConfig {
        let c = &self.config;
        assert!(c.wavelength_nm > 0.0, "wavelength must be positive");
        assert!(
            c.numerical_aperture > 0.0,
            "numerical aperture must be positive"
        );
        assert!(c.tile_px >= 8, "tile must be at least 8 pixels");
        assert!(c.pixel_nm > 0.0, "pixel pitch must be positive");
        assert!(c.kernel_count > 0, "kernel count must be positive");
        assert!(
            c.resist_threshold > 0.0 && c.resist_threshold < 1.0,
            "resist threshold must lie in (0, 1)"
        );
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = OpticalConfig::default();
        assert_eq!(c.wavelength_nm, 193.0);
        assert_eq!(c.numerical_aperture, 1.35);
        assert!((c.resolution_nm() - 71.48).abs() < 0.01);
    }

    #[test]
    fn kernel_side_matches_paper_formula() {
        // Paper: for λ=193, NA=1.35, m ≈ 0.028·W. For W = 2000 nm this gives
        // m ≈ 57.
        let side = kernel_side(2000.0, 193.0, 1.35);
        assert_eq!(side, 2 * 27 + 1);
        assert!((side as f64 - 0.028 * 2000.0).abs() < 3.0);
        // Minimum size is clamped.
        assert_eq!(kernel_side(10.0, 193.0, 1.35), 3);
    }

    #[test]
    fn kernel_dims_clamped_to_tile() {
        let c = OpticalConfig::builder().tile_px(8).build();
        let dims = c.kernel_dims();
        assert!(dims.rows <= 9);
        assert_eq!(dims.rows % 2, 1);
        assert_eq!(dims.count, c.kernel_count);
        assert_eq!(dims.grid_points(), dims.rows * dims.cols);
    }

    #[test]
    fn kernel_dims_with_side_override() {
        let c = OpticalConfig::default();
        let dims = c.kernel_dims_with_side(21);
        assert_eq!(dims.rows, 21);
        assert_eq!(dims.cols, 21);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn kernel_dims_with_even_side_panics() {
        let _ = OpticalConfig::default().kernel_dims_with_side(10);
    }

    #[test]
    fn builder_sets_all_fields() {
        let c = OpticalConfig::builder()
            .wavelength_nm(248.0)
            .numerical_aperture(0.93)
            .source(SourceShape::Circular { sigma: 0.7 })
            .defocus_nm(40.0)
            .tile_px(128)
            .pixel_nm(2.0)
            .kernel_count(8)
            .resist_threshold(0.3)
            .build();
        assert_eq!(c.wavelength_nm, 248.0);
        assert_eq!(c.tile_nm(), 256.0);
        assert!((c.tile_area_um2() - 0.065536).abs() < 1e-9);
        assert_eq!(c.kernel_count, 8);
        assert_eq!(c.defocus_nm, 40.0);
    }

    #[test]
    fn cutoff_bins_bounded_by_nyquist() {
        let c = OpticalConfig::builder().tile_px(64).build();
        assert!(c.cutoff_bins() <= 32);
        let big = OpticalConfig::builder().tile_px(2048).build();
        // (1 + 0.9)·1.35/193·2048 ≈ 27 bins.
        assert!((big.cutoff_bins() as i64 - 27).abs() <= 1);
    }

    #[test]
    #[should_panic(expected = "resist threshold")]
    fn invalid_threshold_panics() {
        let _ = OpticalConfig::builder().resist_threshold(1.5).build();
    }

    #[test]
    #[should_panic(expected = "tile must be")]
    fn tiny_tile_panics() {
        let _ = OpticalConfig::builder().tile_px(4).build();
    }
}
