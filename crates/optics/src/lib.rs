//! Hopkins partially-coherent imaging model for optical lithography.
//!
//! This crate is the "golden engine" of the workspace: it plays the role the
//! ICCAD-2013 lithosim binary and Mentor Calibre play in the paper, producing
//! ground-truth aerial and resist images from mask tiles, and it also provides
//! the physical quantities Nitho is built around:
//!
//! * [`OpticalConfig`] — wavelength, numerical aperture, partial coherence,
//!   tile geometry and the resolution-limit kernel dimensions of Eq. (10).
//! * [`source`] — illumination source maps (circular, annular, dipole,
//!   quasar) sampled on the pupil-normalized frequency grid.
//! * [`pupil`] — projector transfer function with optional defocus.
//! * [`tcc`] — transmission cross-coefficient assembly, Eq. (2).
//! * [`socs`] — Sum-of-Coherent-Systems decomposition (Eq. (3)) and aerial
//!   image synthesis (Eq. (4)).
//! * [`abbe`] — direct Abbe source-point summation, used as an independent
//!   cross-check of the TCC/SOCS path.
//! * [`resist`] — constant-threshold resist development model with dose
//!   scaling.
//! * [`process`] — defocus/dose process-window conditions and grids.
//! * [`HopkinsSimulator`] — the end-to-end mask → aerial → resist pipeline,
//!   rebuildable per process condition.
//!
//! # Example
//!
//! ```
//! use litho_optics::{HopkinsSimulator, OpticalConfig};
//! use litho_math::RealMatrix;
//!
//! let config = OpticalConfig::builder()
//!     .tile_px(64)
//!     .kernel_count(6)
//!     .build();
//! let simulator = HopkinsSimulator::new(&config);
//! // A 64x64 mask with a single rectangle.
//! let mask = RealMatrix::from_fn(64, 64, |i, j| {
//!     if (24..40).contains(&i) && (20..44).contains(&j) { 1.0 } else { 0.0 }
//! });
//! let aerial = simulator.aerial_image(&mask);
//! assert_eq!(aerial.shape(), (64, 64));
//! let resist = simulator.resist_image(&aerial);
//! assert_eq!(resist.shape(), (64, 64));
//! ```

#![forbid(unsafe_code)]

pub mod abbe;
pub mod config;
pub mod process;
pub mod pupil;
pub mod resist;
pub mod simulator;
pub mod socs;
pub mod source;
pub mod tcc;

pub use config::{KernelDims, OpticalConfig, OpticalConfigBuilder};
pub use process::{ProcessCondition, ProcessWindow};
pub use resist::ResistModel;
pub use simulator::HopkinsSimulator;
pub use socs::SocsKernels;
pub use source::SourceShape;
pub use tcc::TccMatrix;
