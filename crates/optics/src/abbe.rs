//! Abbe (source-point summation) imaging — an independent reference for the
//! Hopkins/TCC/SOCS path.
//!
//! The Abbe formulation computes the aerial image by summing, over every
//! source point `s`, the coherent image formed by the shifted pupil
//! `H(s + f)`:
//!
//! ```text
//! I = (1/Σ w) Σ_s w_s · | F⁻¹( H(s + f) ⊙ F(M) ) |²
//! ```
//!
//! Mathematically this equals the Hopkins/TCC result when the TCC is built
//! from the same discretized source, which makes it a strong cross-check: the
//! two paths share no code beyond the FFT.

use litho_fft::{centered_spectrum, ifft2, ifftshift};
use litho_math::util::{center_crop, center_pad};
use litho_math::{ComplexMatrix, RealMatrix};

use crate::config::{KernelDims, OpticalConfig};
use crate::pupil::Pupil;
use crate::source::SourceGrid;
use crate::tcc::{bin_scale, grid_offset};

/// Computes the aerial image of `mask` by direct Abbe source-point summation
/// on the kernel frequency grid `dims`, at `out_rows × out_cols` output
/// resolution.
///
/// Results are normalized to clear-field intensity 1, the same convention as
/// [`crate::SocsKernels::aerial_image_at`].
///
/// # Panics
///
/// Panics if the mask is smaller than the kernel grid or the output is
/// smaller than the kernel grid.
pub fn abbe_aerial_image(
    mask: &RealMatrix,
    config: &OpticalConfig,
    dims: KernelDims,
    source_grid: &SourceGrid,
    out_rows: usize,
    out_cols: usize,
) -> RealMatrix {
    let pupil = Pupil::new(config);
    let scale = bin_scale(config);
    let spectrum = centered_spectrum(mask);
    let cropped = center_crop(&spectrum, dims.rows, dims.cols);

    let mut intensity = RealMatrix::zeros(out_rows, out_cols);
    let mut clear_field = 0.0;
    let total_weight = source_grid.total_weight();

    for (&(sx, sy), &w) in source_grid.points.iter().zip(source_grid.weights.iter()) {
        // Shifted pupil sampled on the kernel grid.
        let shifted_pupil = ComplexMatrix::from_fn(dims.rows, dims.cols, |i, j| {
            let (fy, fx) = grid_offset(i * dims.cols + j, dims, scale);
            pupil.transmission(sx + fx, sy + fy)
        });
        let product = shifted_pupil.hadamard(&cropped);
        let padded = center_pad(&product, out_rows, out_cols);
        let field = ifft2(&ifftshift(&padded));
        intensity = intensity.zip_map(&field.abs_sq(), |acc, v| acc + v * w / total_weight);

        // Clear-field contribution of this source point (DC bin only).
        let dc = shifted_pupil[(dims.rows / 2, dims.cols / 2)].abs_sq();
        let ratio = mask.len() as f64 / (out_rows * out_cols) as f64;
        clear_field += w / total_weight * dc * ratio * ratio;
    }

    if clear_field > 0.0 {
        intensity.scale(1.0 / clear_field)
    } else {
        intensity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::socs::SocsKernels;
    use crate::source::SourceShape;
    use crate::tcc::TccMatrix;

    #[test]
    fn abbe_matches_full_rank_socs() {
        // With every eigenvalue retained, Hopkins/SOCS must reproduce the Abbe
        // image computed from the same discrete source.
        let config = OpticalConfig::builder()
            .tile_px(32)
            .pixel_nm(16.0)
            .kernel_count(25) // full rank for a 5x5 grid
            .source(SourceShape::Circular { sigma: 0.6 })
            .build();
        let dims = config.kernel_dims_with_side(5);
        let grid = SourceGrid::sample(&config.source, 9);

        let mask = RealMatrix::from_fn(32, 32, |i, j| {
            if (10..22).contains(&i) && (6..16).contains(&j) {
                1.0
            } else {
                0.0
            }
        });

        let tcc = TccMatrix::assemble(&config, dims, &grid);
        let socs = SocsKernels::from_tcc(&tcc);
        let hopkins = socs.aerial_image(&mask);
        let abbe = abbe_aerial_image(&mask, &config, dims, &grid, 32, 32);

        let mut max_err: f64 = 0.0;
        for i in 0..32 {
            for j in 0..32 {
                max_err = max_err.max((hopkins[(i, j)] - abbe[(i, j)]).abs());
            }
        }
        assert!(max_err < 1e-6, "Hopkins and Abbe disagree by {max_err}");
    }

    #[test]
    fn truncated_socs_approximates_abbe() {
        let config = OpticalConfig::builder()
            .tile_px(32)
            .pixel_nm(16.0)
            .kernel_count(6)
            .source(SourceShape::Annular {
                sigma_inner: 0.3,
                sigma_outer: 0.7,
            })
            .build();
        let dims = config.kernel_dims_with_side(5);
        let grid = SourceGrid::sample(&config.source, 9);
        let mask = RealMatrix::from_fn(
            32,
            32,
            |i, j| if (i / 8 + j / 8) % 2 == 0 { 1.0 } else { 0.0 },
        );

        let tcc = TccMatrix::assemble(&config, dims, &grid);
        let socs = SocsKernels::from_tcc(&tcc);
        let hopkins = socs.aerial_image(&mask);
        let abbe = abbe_aerial_image(&mask, &config, dims, &grid, 32, 32);

        let rms: f64 = (hopkins.zip_map(&abbe, |a, b| (a - b) * (a - b)).mean()).sqrt();
        // Six kernels capture most of the energy; errors stay small but are
        // not exactly zero.
        assert!(rms < 0.05, "rms {rms}");
    }

    #[test]
    fn abbe_open_frame_is_unit() {
        let config = OpticalConfig::builder()
            .tile_px(32)
            .pixel_nm(16.0)
            .source(SourceShape::Circular { sigma: 0.5 })
            .build();
        let dims = config.kernel_dims_with_side(5);
        let grid = SourceGrid::sample(&config.source, 7);
        let mask = RealMatrix::filled(32, 32, 1.0);
        let aerial = abbe_aerial_image(&mask, &config, dims, &grid, 32, 32);
        for v in aerial.iter() {
            assert!((v - 1.0).abs() < 1e-9);
        }
    }
}
