//! Process-window conditions: defocus and exposure dose.
//!
//! A lithographic process never runs exactly at best focus and nominal dose —
//! the *process window* is the region of (defocus, dose) space over which a
//! layout still prints within specification. This module provides the
//! [`ProcessCondition`] perturbation type shared by the rigorous simulator
//! (which rebuilds its TCC/SOCS stack per condition), the conditioned Nitho
//! neural field (which takes the condition as an extra network input) and the
//! serving layer's `/v1/process_window` endpoint.
//!
//! Physics:
//!
//! * **Defocus** `Δz` enters the pupil as the paraxial phase
//!   `exp(iπ·Δz·NA²·ρ²/λ)` (see [`crate::pupil::Pupil::transmission`]) and
//!   therefore changes the optical kernels themselves.
//! * **Dose** `d` scales the delivered intensity, `I_exposed = d·I`. With a
//!   constant-threshold resist this is exactly equivalent to dividing the
//!   development threshold by the dose: `H(d·I − t) = H(I − t/d)`, which is
//!   how [`crate::resist::ResistModel`] implements it. Dose never changes the
//!   (clear-field-normalized) aerial image.

/// One point of the process window: absolute defocus and relative dose.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessCondition {
    /// Defocus in nanometres (0 = best focus).
    pub defocus_nm: f64,
    /// Relative exposure dose (1 = nominal; must be positive).
    pub dose: f64,
}

impl ProcessCondition {
    /// Creates a condition.
    ///
    /// # Panics
    ///
    /// Panics if either value is non-finite or the dose is not positive.
    pub fn new(defocus_nm: f64, dose: f64) -> Self {
        let condition = Self { defocus_nm, dose };
        condition.validate();
        condition
    }

    /// The nominal process point: best focus, unit dose.
    pub fn nominal() -> Self {
        Self {
            defocus_nm: 0.0,
            dose: 1.0,
        }
    }

    /// `true` when this is exactly the nominal point.
    pub fn is_nominal(&self) -> bool {
        self.defocus_nm == 0.0 && self.dose == 1.0
    }

    /// Validates the condition.
    ///
    /// # Panics
    ///
    /// Panics if either value is non-finite or the dose is not positive.
    pub fn validate(&self) {
        assert!(
            self.defocus_nm.is_finite(),
            "defocus must be finite, got {}",
            self.defocus_nm
        );
        assert!(
            self.dose.is_finite() && self.dose > 0.0,
            "dose must be positive and finite, got {}",
            self.dose
        );
    }
}

impl Default for ProcessCondition {
    fn default() -> Self {
        Self::nominal()
    }
}

impl std::fmt::Display for ProcessCondition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Δz={}nm d={}", self.defocus_nm, self.dose)
    }
}

/// A rectangular focus × dose grid of process conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessWindow {
    focus_nm: Vec<f64>,
    dose: Vec<f64>,
}

impl ProcessWindow {
    /// Builds a window from explicit focus and dose axes.
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty, any value is non-finite, or any dose
    /// is not positive.
    pub fn new(focus_nm: Vec<f64>, dose: Vec<f64>) -> Self {
        assert!(
            !focus_nm.is_empty() && !dose.is_empty(),
            "process window axes cannot be empty"
        );
        for &f in &focus_nm {
            assert!(f.is_finite(), "defocus must be finite, got {f}");
        }
        for &d in &dose {
            assert!(
                d.is_finite() && d > 0.0,
                "dose must be positive and finite, got {d}"
            );
        }
        Self { focus_nm, dose }
    }

    /// A symmetric window: `focus_steps` focus values spanning
    /// `±focus_half_range_nm` and `dose_steps` dose values spanning
    /// `1 ± dose_half_range`, both including the nominal point when the step
    /// count is odd.
    ///
    /// # Panics
    ///
    /// Panics if either step count is zero or the dose half-range reaches 1.
    pub fn symmetric(
        focus_half_range_nm: f64,
        focus_steps: usize,
        dose_half_range: f64,
        dose_steps: usize,
    ) -> Self {
        assert!(
            focus_steps > 0 && dose_steps > 0,
            "process window needs at least one step per axis"
        );
        assert!(
            (0.0..1.0).contains(&dose_half_range),
            "dose half-range must lie in [0, 1)"
        );
        let axis = |half: f64, steps: usize, center: f64| -> Vec<f64> {
            if steps == 1 {
                return vec![center];
            }
            (0..steps)
                .map(|i| center - half + 2.0 * half * i as f64 / (steps - 1) as f64)
                .collect()
        };
        Self::new(
            axis(focus_half_range_nm, focus_steps, 0.0),
            axis(dose_half_range, dose_steps, 1.0),
        )
    }

    /// The focus axis in nanometres.
    pub fn focus_nm(&self) -> &[f64] {
        &self.focus_nm
    }

    /// The dose axis.
    pub fn dose(&self) -> &[f64] {
        &self.dose
    }

    /// Grid shape `(focus_steps, dose_steps)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.focus_nm.len(), self.dose.len())
    }

    /// Number of conditions in the grid.
    pub fn len(&self) -> usize {
        self.focus_nm.len() * self.dose.len()
    }

    /// `true` when the grid is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All conditions in row-major order (focus outer, dose inner) — the
    /// canonical traversal order used by training, serving and benches.
    pub fn conditions(&self) -> Vec<ProcessCondition> {
        let mut out = Vec::with_capacity(self.len());
        for &f in &self.focus_nm {
            for &d in &self.dose {
                out.push(ProcessCondition {
                    defocus_nm: f,
                    dose: d,
                });
            }
        }
        out
    }

    /// `true` when the grid contains the nominal point.
    pub fn contains_nominal(&self) -> bool {
        self.focus_nm.contains(&0.0) && self.dose.contains(&1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_condition() {
        let nominal = ProcessCondition::nominal();
        assert!(nominal.is_nominal());
        assert_eq!(nominal, ProcessCondition::default());
        assert_eq!(nominal, ProcessCondition::new(0.0, 1.0));
        assert!(!ProcessCondition::new(50.0, 1.0).is_nominal());
        assert!(!ProcessCondition::new(0.0, 1.05).is_nominal());
        assert_eq!(nominal.to_string(), "Δz=0nm d=1");
    }

    #[test]
    #[should_panic(expected = "dose must be positive")]
    fn zero_dose_panics() {
        let _ = ProcessCondition::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "defocus must be finite")]
    fn nan_defocus_panics() {
        let _ = ProcessCondition::new(f64::NAN, 1.0);
    }

    #[test]
    fn symmetric_window_includes_nominal_for_odd_steps() {
        let window = ProcessWindow::symmetric(60.0, 3, 0.05, 3);
        assert_eq!(window.shape(), (3, 3));
        assert_eq!(window.len(), 9);
        assert!(!window.is_empty());
        assert!(window.contains_nominal());
        assert_eq!(window.focus_nm(), &[-60.0, 0.0, 60.0]);
        let doses = window.dose();
        assert!((doses[0] - 0.95).abs() < 1e-12);
        assert!((doses[1] - 1.0).abs() < 1e-12);
        assert!((doses[2] - 1.05).abs() < 1e-12);
        let conditions = window.conditions();
        assert_eq!(conditions.len(), 9);
        // Row-major: focus outer, dose inner.
        assert_eq!(conditions[0].defocus_nm, -60.0);
        assert!((conditions[0].dose - 0.95).abs() < 1e-12);
        assert_eq!(conditions[4], ProcessCondition::nominal());
    }

    #[test]
    fn single_step_axes_collapse_to_center() {
        let window = ProcessWindow::symmetric(100.0, 1, 0.1, 1);
        assert_eq!(window.conditions(), vec![ProcessCondition::nominal()]);
    }

    #[test]
    fn explicit_axes_are_preserved() {
        let window = ProcessWindow::new(vec![0.0, 80.0], vec![1.0]);
        assert_eq!(window.shape(), (2, 1));
        assert!(window.contains_nominal());
        let off = ProcessWindow::new(vec![40.0], vec![0.9]);
        assert!(!off.contains_nominal());
    }

    #[test]
    #[should_panic(expected = "axes cannot be empty")]
    fn empty_axis_panics() {
        let _ = ProcessWindow::new(vec![], vec![1.0]);
    }
}
