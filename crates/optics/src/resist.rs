//! Constant-threshold resist development model.
//!
//! The paper obtains the binary resist image `Z` by applying an exposure-dose
//! dependent intensity threshold to the aerial image: `Z = H(I − I_thres)`.
//! A light Gaussian acid-diffusion blur can be enabled to mimic chemically
//! amplified resists; it defaults to off, matching the paper's constant
//! threshold model.
//!
//! Exposure dose `d` scales the delivered intensity, `I_exposed = d·I`. With
//! a constant threshold this commutes with development,
//! `H(d·I − t) = H(I − t/d)`, so the model folds the dose into an *effective
//! threshold* `t/d` and aerial images stay clear-field-normalized.

use litho_fft::{fft2_real, ifft2};
use litho_math::{Complex64, ComplexMatrix, RealMatrix};

/// A thresholded (optionally diffused) resist model.
#[derive(Debug, Clone, PartialEq)]
pub struct ResistModel {
    threshold: f64,
    diffusion_sigma_px: f64,
    dose: f64,
}

impl ResistModel {
    /// Creates a constant-threshold model (no diffusion, nominal dose).
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not in `(0, 1)`.
    pub fn new(threshold: f64) -> Self {
        Self::with_diffusion(threshold, 0.0)
    }

    /// Creates a model with Gaussian acid diffusion of the aerial image before
    /// thresholding (`sigma` in pixels, 0 disables diffusion).
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not in `(0, 1)` or `sigma` is negative.
    pub fn with_diffusion(threshold: f64, diffusion_sigma_px: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "resist threshold must lie in (0, 1)"
        );
        assert!(
            diffusion_sigma_px >= 0.0,
            "diffusion sigma must be non-negative"
        );
        Self {
            threshold,
            diffusion_sigma_px,
            dose: 1.0,
        }
    }

    /// Creates a constant-threshold model at a relative exposure dose.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not in `(0, 1)` or the dose is not positive
    /// and finite.
    pub fn with_dose(threshold: f64, dose: f64) -> Self {
        Self::new(threshold).at_dose(dose)
    }

    /// Returns this model re-exposed at a relative dose (thresholds and
    /// diffusion unchanged).
    ///
    /// # Panics
    ///
    /// Panics if the dose is not positive and finite.
    pub fn at_dose(mut self, dose: f64) -> Self {
        assert!(
            dose.is_finite() && dose > 0.0,
            "dose must be positive and finite"
        );
        self.dose = dose;
        self
    }

    /// The development threshold relative to clear-field intensity at nominal
    /// dose.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The relative exposure dose (1 = nominal).
    pub fn dose(&self) -> f64 {
        self.dose
    }

    /// The threshold actually applied to the clear-field-normalized aerial
    /// image: `t/d` (dose scales the exposure, equivalently lowers the
    /// threshold).
    pub fn effective_threshold(&self) -> f64 {
        self.threshold / self.dose
    }

    /// Develops an aerial image into a binary resist image (1 = resist
    /// printed/exposed region, 0 = unexposed).
    pub fn develop(&self, aerial: &RealMatrix) -> RealMatrix {
        let blurred;
        let image = if self.diffusion_sigma_px > 0.0 {
            blurred = gaussian_blur(aerial, self.diffusion_sigma_px);
            &blurred
        } else {
            aerial
        };
        image.threshold(self.effective_threshold())
    }
}

/// Periodic Gaussian blur implemented in the frequency domain.
///
/// # Panics
///
/// Panics if `sigma_px` is not positive.
pub fn gaussian_blur(image: &RealMatrix, sigma_px: f64) -> RealMatrix {
    assert!(sigma_px > 0.0, "sigma must be positive");
    let (rows, cols) = image.shape();
    let spectrum = fft2_real(image);
    let filtered = ComplexMatrix::from_fn(rows, cols, |i, j| {
        // Signed frequency indices.
        let fi = if i <= rows / 2 {
            i as f64
        } else {
            i as f64 - rows as f64
        } / rows as f64;
        let fj = if j <= cols / 2 {
            j as f64
        } else {
            j as f64 - cols as f64
        } / cols as f64;
        let attenuation = (-2.0
            * std::f64::consts::PI
            * std::f64::consts::PI
            * sigma_px
            * sigma_px
            * (fi * fi + fj * fj))
            .exp();
        spectrum[(i, j)].scale(attenuation)
    });
    ifft2(&filtered).map(|z: Complex64| z.re)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn threshold_splits_bright_and_dark() {
        let model = ResistModel::new(0.3);
        let aerial = RealMatrix::from_vec(1, 4, vec![0.0, 0.29, 0.31, 0.9]);
        let resist = model.develop(&aerial);
        assert_eq!(resist.as_slice(), &[0.0, 0.0, 1.0, 1.0]);
        assert_eq!(model.threshold(), 0.3);
    }

    #[test]
    fn diffusion_smooths_sharp_edges() {
        let aerial = RealMatrix::from_fn(32, 32, |_, j| if j < 16 { 1.0 } else { 0.0 });
        let blurred = gaussian_blur(&aerial, 2.0);
        // The edge column moves toward 0.5 after blurring.
        assert!(blurred[(16, 16)] > 0.05 && blurred[(16, 16)] < 0.95);
        // Mean is preserved by a normalized blur.
        assert!((blurred.mean() - aerial.mean()).abs() < 1e-9);
    }

    #[test]
    fn diffused_model_still_binary_output() {
        let model = ResistModel::with_diffusion(0.4, 1.5);
        let aerial = RealMatrix::from_fn(16, 16, |i, j| ((i + j) % 5) as f64 / 4.0);
        let resist = model.develop(&aerial);
        assert!(resist.iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    #[should_panic(expected = "threshold must lie")]
    fn invalid_threshold_panics() {
        let _ = ResistModel::new(0.0);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn blur_with_zero_sigma_panics() {
        let _ = gaussian_blur(&RealMatrix::zeros(4, 4), 0.0);
    }

    #[test]
    fn dose_lowers_the_effective_threshold() {
        let model = ResistModel::with_dose(0.3, 1.5);
        assert_eq!(model.threshold(), 0.3);
        assert_eq!(model.dose(), 1.5);
        assert!((model.effective_threshold() - 0.2).abs() < 1e-15);
        // Overdosing prints more, underdosing prints less.
        let aerial = RealMatrix::from_vec(1, 3, vec![0.15, 0.25, 0.45]);
        let nominal = ResistModel::new(0.3).develop(&aerial);
        let over = ResistModel::with_dose(0.3, 1.5).develop(&aerial);
        let under = ResistModel::with_dose(0.3, 0.7).develop(&aerial);
        assert!(over.sum() >= nominal.sum());
        assert!(under.sum() <= nominal.sum());
        assert_eq!(over.as_slice(), &[0.0, 1.0, 1.0]);
        assert_eq!(under.as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "dose must be positive")]
    fn non_positive_dose_panics() {
        let _ = ResistModel::with_dose(0.3, 0.0);
    }

    proptest! {
        #[test]
        fn prop_develop_is_monotone_in_threshold(t1 in 0.1..0.45f64, t2 in 0.5..0.9f64) {
            let aerial = RealMatrix::from_fn(8, 8, |i, j| ((i * 8 + j) as f64) / 63.0);
            let low = ResistModel::new(t1).develop(&aerial);
            let high = ResistModel::new(t2).develop(&aerial);
            // Raising the threshold can only shrink the printed region.
            prop_assert!(low.sum() >= high.sum());
        }

        #[test]
        fn prop_dose_commutes_with_thresholding(dose in 0.5..2.0f64, t in 0.1..0.9f64, seed in 0u64..50) {
            // resist(dose·I, t) == resist(I, t/dose): scaling the exposure is
            // exactly an effective-threshold change. Pixels within float
            // noise of the development boundary are excluded — there the two
            // float expressions (d·v ≥ t vs v ≥ t/d) may legitimately round
            // to opposite sides.
            let mut rng = litho_math::DeterministicRng::new(seed);
            let aerial = RealMatrix::from_fn(8, 8, |_, _| rng.uniform(0.0, 1.2));
            let scaled = aerial.scale(dose);
            let exposed = ResistModel::new(t).develop(&scaled);
            let dosed = ResistModel::with_dose(t, dose).develop(&aerial);
            for ((&a, &b), &v) in exposed.iter().zip(dosed.iter()).zip(aerial.iter()) {
                if (v * dose - t).abs() > 1e-9 {
                    prop_assert_eq!(a, b);
                }
            }
        }

        #[test]
        fn prop_dose_is_monotone_in_printed_area(d1 in 0.5..0.99f64, d2 in 1.01..2.0f64, seed in 0u64..50) {
            let mut rng = litho_math::DeterministicRng::new(seed);
            let aerial = RealMatrix::from_fn(8, 8, |_, _| rng.uniform(0.0, 1.0));
            let low = ResistModel::with_dose(0.4, d1).develop(&aerial);
            let high = ResistModel::with_dose(0.4, d2).develop(&aerial);
            // More dose can only grow the printed region.
            prop_assert!(high.sum() >= low.sum());
        }
    }
}
