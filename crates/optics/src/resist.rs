//! Constant-threshold resist development model.
//!
//! The paper obtains the binary resist image `Z` by applying an exposure-dose
//! dependent intensity threshold to the aerial image: `Z = H(I − I_thres)`.
//! A light Gaussian acid-diffusion blur can be enabled to mimic chemically
//! amplified resists; it defaults to off, matching the paper's constant
//! threshold model.

use litho_fft::{fft2_real, ifft2};
use litho_math::{Complex64, ComplexMatrix, RealMatrix};

/// A thresholded (optionally diffused) resist model.
#[derive(Debug, Clone, PartialEq)]
pub struct ResistModel {
    threshold: f64,
    diffusion_sigma_px: f64,
}

impl ResistModel {
    /// Creates a constant-threshold model (no diffusion).
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not in `(0, 1)`.
    pub fn new(threshold: f64) -> Self {
        Self::with_diffusion(threshold, 0.0)
    }

    /// Creates a model with Gaussian acid diffusion of the aerial image before
    /// thresholding (`sigma` in pixels, 0 disables diffusion).
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not in `(0, 1)` or `sigma` is negative.
    pub fn with_diffusion(threshold: f64, diffusion_sigma_px: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "resist threshold must lie in (0, 1)"
        );
        assert!(
            diffusion_sigma_px >= 0.0,
            "diffusion sigma must be non-negative"
        );
        Self {
            threshold,
            diffusion_sigma_px,
        }
    }

    /// The development threshold relative to clear-field intensity.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Develops an aerial image into a binary resist image (1 = resist
    /// printed/exposed region, 0 = unexposed).
    pub fn develop(&self, aerial: &RealMatrix) -> RealMatrix {
        let blurred;
        let image = if self.diffusion_sigma_px > 0.0 {
            blurred = gaussian_blur(aerial, self.diffusion_sigma_px);
            &blurred
        } else {
            aerial
        };
        image.threshold(self.threshold)
    }
}

/// Periodic Gaussian blur implemented in the frequency domain.
///
/// # Panics
///
/// Panics if `sigma_px` is not positive.
pub fn gaussian_blur(image: &RealMatrix, sigma_px: f64) -> RealMatrix {
    assert!(sigma_px > 0.0, "sigma must be positive");
    let (rows, cols) = image.shape();
    let spectrum = fft2_real(image);
    let filtered = ComplexMatrix::from_fn(rows, cols, |i, j| {
        // Signed frequency indices.
        let fi = if i <= rows / 2 {
            i as f64
        } else {
            i as f64 - rows as f64
        } / rows as f64;
        let fj = if j <= cols / 2 {
            j as f64
        } else {
            j as f64 - cols as f64
        } / cols as f64;
        let attenuation = (-2.0
            * std::f64::consts::PI
            * std::f64::consts::PI
            * sigma_px
            * sigma_px
            * (fi * fi + fj * fj))
            .exp();
        spectrum[(i, j)].scale(attenuation)
    });
    ifft2(&filtered).map(|z: Complex64| z.re)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn threshold_splits_bright_and_dark() {
        let model = ResistModel::new(0.3);
        let aerial = RealMatrix::from_vec(1, 4, vec![0.0, 0.29, 0.31, 0.9]);
        let resist = model.develop(&aerial);
        assert_eq!(resist.as_slice(), &[0.0, 0.0, 1.0, 1.0]);
        assert_eq!(model.threshold(), 0.3);
    }

    #[test]
    fn diffusion_smooths_sharp_edges() {
        let aerial = RealMatrix::from_fn(32, 32, |_, j| if j < 16 { 1.0 } else { 0.0 });
        let blurred = gaussian_blur(&aerial, 2.0);
        // The edge column moves toward 0.5 after blurring.
        assert!(blurred[(16, 16)] > 0.05 && blurred[(16, 16)] < 0.95);
        // Mean is preserved by a normalized blur.
        assert!((blurred.mean() - aerial.mean()).abs() < 1e-9);
    }

    #[test]
    fn diffused_model_still_binary_output() {
        let model = ResistModel::with_diffusion(0.4, 1.5);
        let aerial = RealMatrix::from_fn(16, 16, |i, j| ((i + j) % 5) as f64 / 4.0);
        let resist = model.develop(&aerial);
        assert!(resist.iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    #[should_panic(expected = "threshold must lie")]
    fn invalid_threshold_panics() {
        let _ = ResistModel::new(0.0);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn blur_with_zero_sigma_panics() {
        let _ = gaussian_blur(&RealMatrix::zeros(4, 4), 0.0);
    }

    proptest! {
        #[test]
        fn prop_develop_is_monotone_in_threshold(t1 in 0.1..0.45f64, t2 in 0.5..0.9f64) {
            let aerial = RealMatrix::from_fn(8, 8, |i, j| ((i * 8 + j) as f64) / 63.0);
            let low = ResistModel::new(t1).develop(&aerial);
            let high = ResistModel::new(t2).develop(&aerial);
            // Raising the threshold can only shrink the printed region.
            prop_assert!(low.sum() >= high.sum());
        }
    }
}
