//! Projector pupil (transfer) function.
//!
//! The pupil `H(f, g)` of the Hopkins model is an ideal circular low-pass
//! filter of radius `NA/λ`, optionally carrying a defocus phase. Coordinates
//! are pupil-normalized: `ρ = 1` corresponds to `NA/λ`.

use litho_math::Complex64;

use crate::config::OpticalConfig;

/// The projection-lens transfer function.
#[derive(Debug, Clone, PartialEq)]
pub struct Pupil {
    wavelength_nm: f64,
    numerical_aperture: f64,
    defocus_nm: f64,
}

impl Pupil {
    /// Builds the pupil described by an [`OpticalConfig`].
    pub fn new(config: &OpticalConfig) -> Self {
        Self {
            wavelength_nm: config.wavelength_nm,
            numerical_aperture: config.numerical_aperture,
            defocus_nm: config.defocus_nm,
        }
    }

    /// Builds an ideal in-focus pupil directly from `λ` and `NA`.
    pub fn ideal(wavelength_nm: f64, numerical_aperture: f64) -> Self {
        Self {
            wavelength_nm,
            numerical_aperture,
            defocus_nm: 0.0,
        }
    }

    /// Complex transmission at pupil-normalized coordinates `(fx, fy)`.
    ///
    /// Returns zero outside the unit circle. Inside, a paraxial defocus phase
    /// `exp(iπ·Δz·NA²·ρ²/λ)` is applied when the configuration has a non-zero
    /// defocus.
    pub fn transmission(&self, fx: f64, fy: f64) -> Complex64 {
        let rho_sq = fx * fx + fy * fy;
        if rho_sq > 1.0 + 1e-12 {
            return Complex64::ZERO;
        }
        if self.defocus_nm == 0.0 {
            return Complex64::ONE;
        }
        let phase = std::f64::consts::PI
            * self.defocus_nm
            * self.numerical_aperture
            * self.numerical_aperture
            * rho_sq
            / self.wavelength_nm;
        Complex64::cis(phase)
    }

    /// Pupil cutoff frequency `NA/λ` in cycles per nanometre.
    pub fn cutoff_frequency(&self) -> f64 {
        self.numerical_aperture / self.wavelength_nm
    }

    /// Defocus of this pupil in nanometres.
    pub fn defocus_nm(&self) -> f64 {
        self.defocus_nm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceShape;
    use proptest::prelude::*;

    #[test]
    fn ideal_pupil_is_a_disk() {
        let p = Pupil::ideal(193.0, 1.35);
        assert_eq!(p.transmission(0.0, 0.0), Complex64::ONE);
        assert_eq!(p.transmission(0.99, 0.0), Complex64::ONE);
        assert_eq!(p.transmission(1.2, 0.0), Complex64::ZERO);
        assert_eq!(p.transmission(0.8, 0.8), Complex64::ZERO);
        assert!((p.cutoff_frequency() - 1.35 / 193.0).abs() < 1e-12);
        assert_eq!(p.defocus_nm(), 0.0);
    }

    #[test]
    fn defocus_adds_phase_not_amplitude() {
        let config = OpticalConfig::builder().defocus_nm(50.0).build();
        let p = Pupil::new(&config);
        let t = p.transmission(0.5, 0.5);
        assert!((t.abs() - 1.0).abs() < 1e-12, "defocus must not attenuate");
        assert!(t.im.abs() > 1e-6, "defocus must introduce a phase");
        // No phase at the pupil center.
        assert_eq!(p.transmission(0.0, 0.0), Complex64::ONE);
    }

    #[test]
    fn pupil_from_config_matches_ideal_when_in_focus() {
        let config = OpticalConfig::builder()
            .wavelength_nm(248.0)
            .numerical_aperture(0.85)
            .source(SourceShape::Circular { sigma: 0.5 })
            .build();
        let a = Pupil::new(&config);
        let b = Pupil::ideal(248.0, 0.85);
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn prop_transmission_magnitude_bounded(fx in -2.0..2.0f64, fy in -2.0..2.0f64, defocus in 0.0..100.0f64) {
            let config = OpticalConfig::builder().defocus_nm(defocus).build();
            let p = Pupil::new(&config);
            let t = p.transmission(fx, fy);
            prop_assert!(t.abs() <= 1.0 + 1e-12);
            // Radially symmetric.
            prop_assert!((t.abs() - p.transmission(fy, fx).abs()).abs() < 1e-12);
        }
    }
}
