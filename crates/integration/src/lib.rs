//! Host crate for the cross-crate integration tests that live in the
//! workspace-level `/tests` directory (wired in via `[[test]]` path entries
//! so the repository keeps the conventional top-level layout).
//!
//! The library re-exports the crates under test so the test files can use a
//! single dependency root if they wish, and provides the [`scale`] module the
//! heavy tests use to stay CI-sized by default.

pub use litho_analysis as analysis;
pub use litho_autodiff as autodiff;
pub use litho_baselines as baselines;
pub use litho_bench as bench;
pub use litho_fft as fft;
pub use litho_masks as masks;
pub use litho_math as math;
pub use litho_metrics as metrics;
pub use litho_optics as optics;
pub use nitho as core;

pub mod scale {
    //! CI-safe workload sizing for the heavy integration tests.
    //!
    //! The tests honor the same environment knobs as the experiment binaries
    //! (`NITHO_TILE_PX`, `NITHO_TRAIN_TILES`, `NITHO_EPOCHS` — documented in
    //! [`litho_bench`]) but with small defaults chosen per test site, so a
    //! plain `cargo test -q` finishes in minutes while a scaled-up run is one
    //! environment variable away.

    use litho_optics::OpticalConfig;

    /// Physical tile extent shared by all integration tests, in nanometres —
    /// the same constant the experiment binaries use. Keeping it fixed while
    /// `NITHO_TILE_PX` varies means resolution knobs never change the physics
    /// (kernel dimensions, pass band, ...), only the sampling density.
    pub use litho_bench::TILE_NM;

    /// Test optics: a `TILE_NM`-wide tile at `NITHO_TILE_PX` pixels
    /// (defaulting to `default_tile_px`) with the given kernel count.
    ///
    /// # Panics
    ///
    /// Panics if `NITHO_TILE_PX` is below 32, the smallest tile the mask
    /// generators accept (and comfortably above the 15×15 resolution-limit
    /// kernel grids the tests pin).
    pub fn test_optics(default_tile_px: usize, kernel_count: usize) -> OpticalConfig {
        let tile_px = litho_bench::env_usize("NITHO_TILE_PX", default_tile_px);
        assert!(
            tile_px >= 32,
            "NITHO_TILE_PX={tile_px} is too small for the integration tests (minimum 32)"
        );
        OpticalConfig::builder()
            .tile_px(tile_px)
            .pixel_nm(TILE_NM / tile_px as f64)
            .kernel_count(kernel_count)
            .build()
    }

    /// Training-set size: `NITHO_TRAIN_TILES` or the per-site default.
    ///
    /// # Panics
    ///
    /// Panics if `NITHO_TRAIN_TILES` is below 2 (train/test splits need at
    /// least two samples).
    pub fn train_tiles(default: usize) -> usize {
        let tiles = litho_bench::env_usize("NITHO_TRAIN_TILES", default);
        assert!(
            tiles >= 2,
            "NITHO_TRAIN_TILES={tiles} is too small for the integration tests (minimum 2)"
        );
        tiles
    }

    /// Training epochs: `NITHO_EPOCHS` or the per-site default.
    pub fn epochs(default: usize) -> usize {
        litho_bench::env_usize("NITHO_EPOCHS", default)
    }
}
