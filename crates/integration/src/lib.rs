//! Host crate for the cross-crate integration tests that live in the
//! workspace-level `/tests` directory (wired in via `[[test]]` path entries
//! so the repository keeps the conventional top-level layout).
//!
//! The library itself only re-exports the crates under test so the test files
//! can use a single dependency root if they wish.

pub use litho_analysis as analysis;
pub use litho_autodiff as autodiff;
pub use litho_baselines as baselines;
pub use litho_fft as fft;
pub use litho_masks as masks;
pub use litho_math as math;
pub use litho_metrics as metrics;
pub use litho_optics as optics;
pub use nitho as core;
