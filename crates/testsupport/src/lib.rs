//! Shared test support: a counting [`GlobalAlloc`] wrapper around the system
//! allocator that tracks the **allocation count**, the **live heap bytes**
//! and the **high-water mark** (peak live bytes) of the whole process.
//!
//! Tests and benches that want to pin allocation behaviour declare it as
//! their global allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: litho_testsupport::CountingAllocator =
//!     litho_testsupport::CountingAllocator;
//! ```
//!
//! and then read [`allocations`] / [`live_bytes`] / [`peak_bytes`] around the
//! code under test. [`reset_peak`] rebases the high-water mark to the current
//! live set so a measurement window can be scoped to one operation.
//!
//! The counters are process-global atomics: a binary measuring peaks must
//! serialize the tests that touch them (Rust's test harness runs `#[test]`s
//! concurrently by default), e.g. behind a shared `Mutex`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`System`]-backed allocator that counts allocations and tracks the live
/// and peak heap footprint. Zero-sized type; all state lives in process-wide
/// statics so the counters work from any thread.
pub struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

fn track_grow(bytes: u64) {
    let live = LIVE_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            track_grow(layout.size() as u64);
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            track_grow(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            let old = layout.size() as u64;
            let new = new_size as u64;
            if new >= old {
                track_grow(new - old);
            } else {
                LIVE_BYTES.fetch_sub(old - new, Ordering::Relaxed);
            }
        }
        new_ptr
    }
}

/// Total number of successful `alloc`/`realloc` calls since process start.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Bytes currently live on the heap (allocated and not yet freed).
pub fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of [`live_bytes`] since process start (or since the last
/// [`reset_peak`]).
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Rebases the peak to the current live set, scoping the next [`peak_bytes`]
/// reading to allocations made after this call.
pub fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Peak heap growth of `f` relative to the live set at entry, in bytes.
///
/// Equivalent to `reset_peak(); f(); peak_bytes() - live_at_entry`. Only
/// meaningful when no other thread is allocating concurrently.
pub fn peak_growth_during<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let baseline = live_bytes();
    reset_peak();
    let result = f();
    (result, peak_bytes().saturating_sub(baseline))
}
