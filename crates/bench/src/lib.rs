//! Shared harness for the experiment binaries that regenerate the paper's
//! tables and figures (see DESIGN.md §3 for the experiment index).
//!
//! All experiment binaries read their workload size from environment
//! variables so the same code scales from a quick smoke run to an
//! overnight-quality reproduction:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `NITHO_TILE_PX` | tile edge in pixels (at 512 nm physical extent) | 128 |
//! | `NITHO_TRAIN_TILES` | training tiles per dataset | 16 |
//! | `NITHO_TEST_TILES` | test tiles per dataset | 6 |
//! | `NITHO_EPOCHS` | training epochs for every model | 30 |

use litho_baselines::{CnnLitho, FnoLitho, ImageRegressor, RegressorConfig, TargetStage};
use litho_masks::{Dataset, DatasetKind};
use litho_metrics::{AerialMetrics, ResistMetrics};
use litho_optics::{HopkinsSimulator, OpticalConfig};
use nitho::{NithoConfig, NithoModel};

/// Physical tile extent shared by every experiment and integration test,
/// in nanometres. Resolution knobs (`NITHO_TILE_PX`) change the sampling
/// density of this fixed extent, never the physics.
pub const TILE_NM: f64 = 512.0;

/// Reads a `usize` environment variable with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Experiment-wide settings resolved from the environment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Tile edge length in pixels.
    pub tile_px: usize,
    /// Training tiles per dataset family.
    pub train_tiles: usize,
    /// Test tiles per dataset family.
    pub test_tiles: usize,
    /// Training epochs for every model.
    pub epochs: usize,
}

impl ExperimentScale {
    /// Resolves the scale from the environment (see the crate docs).
    pub fn from_env() -> Self {
        Self {
            tile_px: env_usize("NITHO_TILE_PX", 128),
            train_tiles: env_usize("NITHO_TRAIN_TILES", 16),
            test_tiles: env_usize("NITHO_TEST_TILES", 6),
            epochs: env_usize("NITHO_EPOCHS", 30),
        }
    }

    /// The optical configuration used by every experiment: 193 nm immersion
    /// optics over a [`TILE_NM`] tile, rasterized at `TILE_NM / tile_px` nm
    /// per pixel.
    pub fn optics(&self) -> OpticalConfig {
        OpticalConfig::builder()
            .tile_px(self.tile_px)
            .pixel_nm(crate::TILE_NM / self.tile_px as f64)
            .kernel_count(8)
            .build()
    }
}

/// A labelled train/test pair for one dataset family.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Dataset alias (`B1`, `B2m`, `B2v`, `B2m+B2v`, …).
    pub name: String,
    /// Training split.
    pub train: Dataset,
    /// Test split.
    pub test: Dataset,
}

/// Generates the four benchmark families of Table II plus the merged
/// `B2m+B2v` mixture used in Table III.
pub fn standard_benchmarks(
    scale: &ExperimentScale,
    simulator: &HopkinsSimulator,
) -> Vec<Benchmark> {
    let gen = |kind: DatasetKind, seed: u64| {
        let train = Dataset::generate(kind, scale.train_tiles, simulator, seed);
        let test = Dataset::generate(kind, scale.test_tiles, simulator, seed + 1000);
        Benchmark {
            name: kind.alias().to_owned(),
            train,
            test,
        }
    };
    let b1 = gen(DatasetKind::B1, 101);
    let b2m = gen(DatasetKind::B2Metal, 103);
    let b2v = gen(DatasetKind::B2Via, 104);
    let merged = Benchmark {
        name: "B2m+B2v".to_owned(),
        train: b2m.train.merged(&b2v.train).shuffled(7),
        test: b2m.test.merged(&b2v.test),
    };
    vec![b1, b2m, b2v, merged]
}

/// Generates one dataset family (used by the OOD and ablation experiments).
pub fn single_benchmark(
    scale: &ExperimentScale,
    simulator: &HopkinsSimulator,
    kind: DatasetKind,
    seed: u64,
) -> Benchmark {
    Benchmark {
        name: kind.alias().to_owned(),
        train: Dataset::generate(kind, scale.train_tiles, simulator, seed),
        test: Dataset::generate(kind, scale.test_tiles, simulator, seed + 1000),
    }
}

/// Nitho configuration used by the experiments (moderate size; the unit tests
/// use `NithoConfig::fast`, this is one notch larger).
pub fn nitho_config(scale: &ExperimentScale) -> NithoConfig {
    NithoConfig {
        kernel_count: 8,
        hidden_dim: 48,
        hidden_blocks: 2,
        epochs: scale.epochs,
        ..NithoConfig::fast()
    }
}

/// Trains a Nitho model on a training set.
pub fn train_nitho(scale: &ExperimentScale, optics: &OpticalConfig, train: &Dataset) -> NithoModel {
    let mut model = NithoModel::new(nitho_config(scale), optics);
    model.train(train);
    model
}

/// Trains the TEMPO-like CNN baseline.
pub fn train_cnn(scale: &ExperimentScale, train: &Dataset, stage: TargetStage) -> CnnLitho {
    let config = RegressorConfig {
        working_resolution: (scale.tile_px / 4).max(16),
        stage,
        epochs: scale.epochs,
        ..RegressorConfig::default()
    };
    let mut model = CnnLitho::with_channels(config, 16);
    model.train(train);
    model
}

/// Trains the DOINN-like FNO baseline.
pub fn train_fno(scale: &ExperimentScale, train: &Dataset, stage: TargetStage) -> FnoLitho {
    let config = RegressorConfig {
        working_resolution: (scale.tile_px / 2).max(16),
        stage,
        epochs: scale.epochs,
        learning_rate: 4e-3,
        ..RegressorConfig::default()
    };
    let mut model = FnoLitho::with_layers(config, 3);
    model.train(train);
    model
}

/// One row of a Table III / Table IV style result table.
#[derive(Debug, Clone)]
pub struct ResultRow {
    /// Model name.
    pub model: String,
    /// Aerial-image metrics.
    pub aerial: AerialMetrics,
    /// Resist-image metrics.
    pub resist: ResistMetrics,
}

impl ResultRow {
    /// Formats the row in the paper's Table III column layout.
    pub fn formatted(&self) -> String {
        format!(
            "{:<18} MSE(x1e-5) {:>10.2}  ME(x1e-2) {:>7.2}  PSNR {:>6.2} dB  mPA {:>6.2}%  mIOU {:>6.2}%",
            self.model,
            self.aerial.mse_e5(),
            self.aerial.max_error_e2(),
            self.aerial.psnr_db,
            self.resist.mpa_percent,
            self.resist.miou_percent
        )
    }
}

/// Evaluates all three models on a test set, returning one row per model.
pub fn evaluate_all_models(
    nitho: &NithoModel,
    cnn: &CnnLitho,
    fno: &FnoLitho,
    test: &Dataset,
    resist_threshold: f64,
) -> Vec<ResultRow> {
    let nitho_eval = nitho.evaluate(test, resist_threshold);
    let (cnn_aerial, cnn_resist) = cnn.evaluate(test, resist_threshold, TargetStage::Aerial);
    let (fno_aerial, fno_resist) = fno.evaluate(test, resist_threshold, TargetStage::Aerial);
    vec![
        ResultRow {
            model: "TEMPO-like CNN".into(),
            aerial: cnn_aerial,
            resist: cnn_resist,
        },
        ResultRow {
            model: "DOINN-like FNO".into(),
            aerial: fno_aerial,
            resist: fno_resist,
        },
        ResultRow {
            model: "Nitho".into(),
            aerial: nitho_eval.aerial,
            resist: nitho_eval.resist,
        },
    ]
}

/// Renders a real image as a compact ASCII intensity map (used by the
/// qualitative figure binary).
pub fn ascii_image(image: &litho_math::RealMatrix, width: usize) -> String {
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let step = (image.cols() / width).max(1);
    let max = image.max().max(f64::MIN_POSITIVE);
    let mut out = String::new();
    let mut i = 0;
    while i < image.rows() {
        let mut j = 0;
        while j < image.cols() {
            let level = ((image[(i, j)] / max) * (glyphs.len() - 1) as f64).round() as usize;
            out.push(glyphs[level.min(glyphs.len() - 1)]);
            j += step;
        }
        out.push('\n');
        i += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_defaults() {
        assert_eq!(env_usize("NITHO_DOES_NOT_EXIST", 42), 42);
        std::env::set_var("NITHO_BENCH_TEST_VAR", "17");
        assert_eq!(env_usize("NITHO_BENCH_TEST_VAR", 42), 17);
        std::env::remove_var("NITHO_BENCH_TEST_VAR");
    }

    #[test]
    fn scale_builds_physical_optics() {
        let scale = ExperimentScale {
            tile_px: 64,
            train_tiles: 2,
            test_tiles: 1,
            epochs: 1,
        };
        let optics = scale.optics();
        assert_eq!(optics.tile_px, 64);
        assert!((optics.tile_nm() - 512.0).abs() < 1e-9);
    }

    #[test]
    fn benchmarks_cover_all_families() {
        let scale = ExperimentScale {
            tile_px: 64,
            train_tiles: 2,
            test_tiles: 2,
            epochs: 1,
        };
        let simulator = HopkinsSimulator::new(&scale.optics());
        let benchmarks = standard_benchmarks(&scale, &simulator);
        let names: Vec<&str> = benchmarks.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, vec!["B1", "B2m", "B2v", "B2m+B2v"]);
        assert_eq!(benchmarks[3].train.len(), 4);
    }

    #[test]
    fn ascii_image_renders() {
        let image = litho_math::RealMatrix::from_fn(16, 16, |i, j| (i + j) as f64);
        let art = ascii_image(&image, 8);
        assert!(art.lines().count() >= 8);
        // Bright pixels map to the dense end of the glyph ramp.
        assert!(art.contains('%') || art.contains('@'));
        assert!(art.contains(' '));
    }
}
