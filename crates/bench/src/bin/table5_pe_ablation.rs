//! Table V — positional-encoding ablation on the B1 dataset: no encoding vs
//! NeRF's axis-aligned encoding vs the complex Gaussian RFF mapping.

use litho_bench::{nitho_config, single_benchmark, ExperimentScale};
use litho_masks::DatasetKind;
use litho_optics::HopkinsSimulator;
use nitho::{NithoModel, PositionalEncoding};

fn main() {
    let scale = ExperimentScale::from_env();
    let optics = scale.optics();
    let simulator = HopkinsSimulator::new(&optics);
    let benchmark = single_benchmark(&scale, &simulator, DatasetKind::B1, 500);

    println!("Table V — positional encoding ablation on B1");
    println!(
        "{:<16} {:>14} {:>12} {:>10}",
        "encoding", "MSE (x1e-5)", "ME (x1e-2)", "PSNR (dB)"
    );
    for encoding in [
        PositionalEncoding::None,
        PositionalEncoding::Nerf { levels: 6 },
        PositionalEncoding::GaussianRff {
            features: 64,
            sigma: 3.0,
            seed: 0x4e49_5448,
        },
    ] {
        let label = encoding.label();
        let config = nitho::NithoConfig {
            encoding,
            ..nitho_config(&scale)
        };
        let mut model = NithoModel::new(config, &optics);
        model.train(&benchmark.train);
        let eval = model.evaluate(&benchmark.test, optics.resist_threshold);
        println!(
            "{:<16} {:>14.2} {:>12.2} {:>10.2}",
            label,
            eval.aerial.mse_e5(),
            eval.aerial.max_error_e2(),
            eval.aerial.psnr_db
        );
    }
}
