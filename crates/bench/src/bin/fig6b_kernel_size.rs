//! Fig. 6(b) — kernel-size ablation: PSNR versus the kernel side length
//! `m = n`, which flattens out at the resolution-limit dimension of Eq. (10).
//! Also sweeps the kernel order `r` (the SOCS truncation ablation called out
//! in DESIGN.md).

use litho_bench::{env_usize, nitho_config, single_benchmark, ExperimentScale};
use litho_masks::DatasetKind;
use litho_optics::config::kernel_side;
use litho_optics::HopkinsSimulator;
use nitho::NithoModel;

fn main() {
    let scale = ExperimentScale::from_env();
    let optics = scale.optics();
    let simulator = HopkinsSimulator::new(&optics);
    let max_side = env_usize("NITHO_MAX_KERNEL_SIDE", 15) | 1;

    let eq10 = kernel_side(
        optics.tile_nm(),
        optics.wavelength_nm,
        optics.numerical_aperture,
    );
    println!("Fig. 6(b) — PSNR (dB) vs kernel width/height (Eq. 10 optimum for this tile: {eq10})");

    let kinds = [DatasetKind::B1, DatasetKind::B2Metal, DatasetKind::B2Via];
    let sides: Vec<usize> = (5..=max_side).step_by(4).collect();
    print!("{:>6}", "side");
    for kind in kinds {
        print!(" {:>10}", kind.alias());
    }
    println!();

    for &side in &sides {
        print!("{:>6}", side);
        for (offset, kind) in kinds.into_iter().enumerate() {
            let benchmark = single_benchmark(&scale, &simulator, kind, 900 + offset as u64);
            let config = nitho::NithoConfig {
                kernel_side: Some(side),
                ..nitho_config(&scale)
            };
            let mut model = NithoModel::new(config, &optics);
            model.train(&benchmark.train);
            let psnr = model
                .evaluate(&benchmark.test, optics.resist_threshold)
                .aerial
                .psnr_db;
            print!(" {:>10.2}", psnr);
        }
        println!();
    }

    println!("\nkernel-order (r) ablation on B1, side fixed at the Eq. 10 optimum:");
    let benchmark = single_benchmark(&scale, &simulator, DatasetKind::B1, 950);
    for r in [2usize, 4, 8, 12] {
        let config = nitho::NithoConfig {
            kernel_count: r,
            ..nitho_config(&scale)
        };
        let mut model = NithoModel::new(config, &optics);
        model.train(&benchmark.train);
        let psnr = model
            .evaluate(&benchmark.test, optics.resist_threshold)
            .aerial
            .psnr_db;
        println!("  r = {r:>2}: PSNR {psnr:>6.2} dB");
    }
}
