//! Fig. 5 — throughput comparison (µm²/s) between the rigorous simulator, the
//! learned baselines and Nitho's stored-kernel fast-lithography path.

use std::time::Instant;

use litho_baselines::{ImageRegressor, TargetStage};
use litho_bench::{single_benchmark, train_cnn, train_fno, train_nitho, ExperimentScale};
use litho_masks::DatasetKind;
use litho_optics::{HopkinsSimulator, OpticalConfig};

fn main() {
    let scale = ExperimentScale::from_env();
    let optics = scale.optics();
    // The rigorous reference keeps many more SOCS kernels, as production TCC
    // decompositions do.
    let rigorous_optics = OpticalConfig {
        kernel_count: 40,
        ..optics.clone()
    };
    let simulator = HopkinsSimulator::new(&optics);
    let rigorous = HopkinsSimulator::new(&rigorous_optics);

    let train = single_benchmark(&scale, &simulator, DatasetKind::B2Metal, 600);
    let workload = single_benchmark(&scale, &simulator, DatasetKind::B2Via, 700).test;

    let nitho = train_nitho(&scale, &optics, &train.train);
    let cnn = train_cnn(&scale, &train.train, TargetStage::Aerial);
    let fno = train_fno(&scale, &train.train, TargetStage::Aerial);

    let area = optics.tile_area_um2() * workload.len() as f64;
    let mut timings: Vec<(String, f64)> = Vec::new();

    let time = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        f();
        start.elapsed().as_secs_f64()
    };

    timings.push((
        "rigorous simulator".into(),
        time(&mut || {
            for s in workload.samples() {
                let _ = rigorous.simulate(&s.mask);
            }
        }),
    ));
    timings.push((
        "TEMPO-like CNN".into(),
        time(&mut || {
            for s in workload.samples() {
                let _ = cnn.predict(&s.mask).threshold(optics.resist_threshold);
            }
        }),
    ));
    timings.push((
        "DOINN-like FNO".into(),
        time(&mut || {
            for s in workload.samples() {
                let _ = fno.predict(&s.mask).threshold(optics.resist_threshold);
            }
        }),
    ));
    timings.push((
        "Nitho".into(),
        time(&mut || {
            for s in workload.samples() {
                let _ = nitho.predict_resist(&s.mask, optics.resist_threshold);
            }
        }),
    ));

    println!(
        "Fig. 5 — throughput on {} tiles of {:.3} um^2 each",
        workload.len(),
        optics.tile_area_um2()
    );
    println!("{:<22} {:>12} {:>14}", "engine", "seconds", "um^2 / s");
    for (name, seconds) in &timings {
        println!("{:<22} {:>12.3} {:>14.4}", name, seconds, area / seconds);
    }
    let rigorous_s = timings[0].1;
    let nitho_s = timings[3].1;
    println!(
        "\nNitho speed-up over rigorous simulator: {:.1}x",
        rigorous_s / nitho_s
    );
}
