//! Fig. 6(a) — accuracy versus training-set size: Nitho reaches high PSNR
//! from a small fraction of the data the image-to-image baselines need.

use litho_baselines::{ImageRegressor, TargetStage};
use litho_bench::{single_benchmark, train_cnn, train_fno, train_nitho, ExperimentScale};
use litho_masks::DatasetKind;
use litho_optics::HopkinsSimulator;

fn main() {
    let scale = ExperimentScale::from_env();
    let optics = scale.optics();
    let simulator = HopkinsSimulator::new(&optics);
    let benchmark = single_benchmark(&scale, &simulator, DatasetKind::B1, 800);

    let fractions = [0.1, 0.25, 0.5, 1.0];
    println!("Fig. 6(a) — PSNR (dB) vs training-set fraction on B1");
    println!(
        "{:>9} {:>16} {:>16} {:>16}",
        "fraction", "TEMPO-like CNN", "DOINN-like FNO", "Nitho"
    );
    for fraction in fractions {
        let train = benchmark.train.subset_fraction(fraction);
        let nitho = train_nitho(&scale, &optics, &train);
        let cnn = train_cnn(&scale, &train, TargetStage::Aerial);
        let fno = train_fno(&scale, &train, TargetStage::Aerial);
        let nitho_psnr = nitho
            .evaluate(&benchmark.test, optics.resist_threshold)
            .aerial
            .psnr_db;
        let cnn_psnr = cnn
            .evaluate(
                &benchmark.test,
                optics.resist_threshold,
                TargetStage::Aerial,
            )
            .0
            .psnr_db;
        let fno_psnr = fno
            .evaluate(
                &benchmark.test,
                optics.resist_threshold,
                TargetStage::Aerial,
            )
            .0
            .psnr_db;
        println!(
            "{:>9.2} {:>16.2} {:>16.2} {:>16.2}",
            fraction, cnn_psnr, fno_psnr, nitho_psnr
        );
    }
}
