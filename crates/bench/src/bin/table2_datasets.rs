//! Table II — dataset inventory: the synthetic stand-ins for the paper's
//! ICCAD-2013 / ISPD-2019 benchmarks and their statistics.

use litho_bench::{standard_benchmarks, ExperimentScale};
use litho_optics::HopkinsSimulator;

fn main() {
    let scale = ExperimentScale::from_env();
    let optics = scale.optics();
    let simulator = HopkinsSimulator::new(&optics);
    let benchmarks = standard_benchmarks(&scale, &simulator);

    println!("Table II — dataset details (golden engine: rigorous Hopkins/SOCS simulator)");
    println!(
        "{:<10} {:>7} {:>7} {:>12} {:>16} {:>16}",
        "alias", "train", "test", "tile", "mask density", "resist coverage"
    );
    for benchmark in &benchmarks {
        let density: f64 = benchmark
            .train
            .samples()
            .iter()
            .map(|s| s.mask.mean())
            .sum::<f64>()
            / benchmark.train.len() as f64;
        let coverage: f64 = benchmark
            .train
            .samples()
            .iter()
            .map(|s| s.resist.mean())
            .sum::<f64>()
            / benchmark.train.len() as f64;
        println!(
            "{:<10} {:>7} {:>7} {:>9} px {:>15.1}% {:>15.1}%",
            benchmark.name,
            benchmark.train.len(),
            benchmark.test.len(),
            scale.tile_px,
            100.0 * density,
            100.0 * coverage
        );
    }
    println!();
    println!(
        "physical tile: {:.0} nm ({:.3} um^2), lambda 193 nm, NA 1.35, annular source",
        optics.tile_nm(),
        optics.tile_area_um2()
    );
}
