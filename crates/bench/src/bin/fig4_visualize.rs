//! Fig. 2(b) / Fig. 4 — qualitative comparison: golden aerial and resist
//! images versus Nitho's prediction, rendered as ASCII intensity maps.

use litho_bench::{ascii_image, standard_benchmarks, train_nitho, ExperimentScale};
use litho_optics::HopkinsSimulator;

fn main() {
    let scale = ExperimentScale::from_env();
    let optics = scale.optics();
    let simulator = HopkinsSimulator::new(&optics);
    let benchmarks = standard_benchmarks(&scale, &simulator);

    for benchmark in benchmarks.iter().take(3) {
        println!(
            "==================== {} ====================",
            benchmark.name
        );
        let nitho = train_nitho(&scale, &optics, &benchmark.train);
        let sample = &benchmark.test.samples()[0];
        let predicted_aerial = nitho.predict_aerial(&sample.mask);
        let predicted_resist = predicted_aerial.threshold(optics.resist_threshold);

        println!("-- mask --\n{}", ascii_image(&sample.mask, 48));
        println!("-- golden aerial --\n{}", ascii_image(&sample.aerial, 48));
        println!("-- Nitho aerial --\n{}", ascii_image(&predicted_aerial, 48));
        println!("-- golden resist --\n{}", ascii_image(&sample.resist, 48));
        println!("-- Nitho resist --\n{}", ascii_image(&predicted_resist, 48));
    }
}
