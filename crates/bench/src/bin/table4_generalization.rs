//! Table IV — out-of-distribution generalization: train on one mask family,
//! test on another, and report the accuracy drop relative to in-distribution
//! testing.

use litho_baselines::{ImageRegressor, TargetStage};
use litho_bench::{single_benchmark, train_cnn, train_fno, train_nitho, ExperimentScale};
use litho_masks::DatasetKind;
use litho_optics::HopkinsSimulator;

fn main() {
    let scale = ExperimentScale::from_env();
    let optics = scale.optics();
    let simulator = HopkinsSimulator::new(&optics);

    let pairs = [
        (DatasetKind::B1, DatasetKind::B1Opc),
        (DatasetKind::B2Metal, DatasetKind::B2Via),
        (DatasetKind::B2Via, DatasetKind::B2Metal),
    ];

    println!("Table IV — OOD generalization (mPA / mIOU in %, drop vs in-distribution)");
    for (train_kind, test_kind) in pairs {
        let train_bench = single_benchmark(&scale, &simulator, train_kind, 300);
        let ood_bench = single_benchmark(&scale, &simulator, test_kind, 400);

        let nitho = train_nitho(&scale, &optics, &train_bench.train);
        let cnn = train_cnn(&scale, &train_bench.train, TargetStage::Aerial);
        let fno = train_fno(&scale, &train_bench.train, TargetStage::Aerial);

        println!(
            "\n== train on {} / test on {} ==",
            train_kind.alias(),
            test_kind.alias()
        );
        let report = |name: &str, in_d: (f64, f64), ood: (f64, f64)| {
            println!(
                "  {name:<18} in-dist mPA {:>6.2}% mIOU {:>6.2}%   OOD mPA {:>6.2}% mIOU {:>6.2}%   drop {:>5.2} / {:>5.2}",
                in_d.0, in_d.1, ood.0, ood.1, in_d.0 - ood.0, in_d.1 - ood.1
            );
        };

        let n_in = nitho
            .evaluate(&train_bench.test, optics.resist_threshold)
            .resist;
        let n_ood = nitho
            .evaluate(&ood_bench.test, optics.resist_threshold)
            .resist;
        let c_in = cnn
            .evaluate(
                &train_bench.test,
                optics.resist_threshold,
                TargetStage::Aerial,
            )
            .1;
        let c_ood = cnn
            .evaluate(
                &ood_bench.test,
                optics.resist_threshold,
                TargetStage::Aerial,
            )
            .1;
        let f_in = fno
            .evaluate(
                &train_bench.test,
                optics.resist_threshold,
                TargetStage::Aerial,
            )
            .1;
        let f_ood = fno
            .evaluate(
                &ood_bench.test,
                optics.resist_threshold,
                TargetStage::Aerial,
            )
            .1;

        report(
            "TEMPO-like CNN",
            (c_in.mpa_percent, c_in.miou_percent),
            (c_ood.mpa_percent, c_ood.miou_percent),
        );
        report(
            "DOINN-like FNO",
            (f_in.mpa_percent, f_in.miou_percent),
            (f_ood.mpa_percent, f_ood.miou_percent),
        );
        report(
            "Nitho",
            (n_in.mpa_percent, n_in.miou_percent),
            (n_ood.mpa_percent, n_ood.miou_percent),
        );
    }
}
