//! Fig. 2(a) — t-SNE embedding of the four dataset families, demonstrating
//! that they occupy distinct regions of mask-shape space.

use litho_analysis::{mask_features, separation_score, tsne, TsneConfig};
use litho_bench::{standard_benchmarks, ExperimentScale};
use litho_math::RealMatrix;
use litho_optics::HopkinsSimulator;

fn main() {
    let scale = ExperimentScale::from_env();
    let optics = scale.optics();
    let simulator = HopkinsSimulator::new(&optics);
    let benchmarks = standard_benchmarks(&scale, &simulator);

    // Collect masks from the three primary families (the merged set is a
    // mixture and would overlap by construction).
    let mut masks: Vec<&RealMatrix> = Vec::new();
    let mut labels: Vec<&str> = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for benchmark in benchmarks.iter().take(3) {
        let mut group = Vec::new();
        for sample in benchmark.train.samples() {
            group.push(masks.len());
            masks.push(&sample.mask);
            labels.push(&benchmark.name);
        }
        groups.push(group);
    }

    let features = mask_features(&masks, 16);
    let embedding = tsne(&features, &TsneConfig::default());

    println!("Fig. 2(a) — t-SNE embedding of dataset distributions");
    println!("{:<8} {:>12} {:>12}", "dataset", "x", "y");
    for (idx, label) in labels.iter().enumerate() {
        println!(
            "{:<8} {:>12.4} {:>12.4}",
            label,
            embedding[(idx, 0)],
            embedding[(idx, 1)]
        );
    }

    println!("\npairwise separation scores (positive = clusters separated):");
    let names = ["B1", "B2m", "B2v"];
    for i in 0..3 {
        for j in (i + 1)..3 {
            let score = separation_score(&embedding, &groups[i], &groups[j]);
            println!("  {} vs {}: {:+.3}", names[i], names[j], score);
        }
    }
}
