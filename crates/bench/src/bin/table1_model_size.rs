//! Table I — model size comparison between the image-to-image baselines and
//! Nitho's coordinate-based CMLP.

use litho_baselines::{CnnLitho, FnoLitho, ImageRegressor, RegressorConfig};
use litho_bench::{nitho_config, ExperimentScale};
use nitho::NithoModel;

fn main() {
    let scale = ExperimentScale::from_env();
    let optics = scale.optics();

    let nitho = NithoModel::new(nitho_config(&scale), &optics);
    let cnn = CnnLitho::with_channels(
        RegressorConfig {
            working_resolution: (scale.tile_px / 4).max(16),
            ..RegressorConfig::default()
        },
        16,
    );
    let fno = FnoLitho::with_layers(
        RegressorConfig {
            working_resolution: (scale.tile_px / 2).max(16),
            ..RegressorConfig::default()
        },
        3,
    );

    println!(
        "Table I — model size comparison (tile {} px)",
        scale.tile_px
    );
    println!(
        "{:<18} {:>14} {:>14} {:>22}",
        "model", "parameters", "size (KB)", "network modeling"
    );
    let row = |name: &str, params: usize, bytes: usize, modeling: &str| {
        println!(
            "{name:<18} {params:>14} {:>14.1} {modeling:>22}",
            bytes as f64 / 1024.0
        );
    };
    row(
        "TEMPO-like CNN",
        cnn.num_parameters(),
        cnn.size_bytes(),
        "S(T*G(.))",
    );
    row(
        "DOINN-like FNO",
        fno.num_parameters(),
        fno.size_bytes(),
        "H(S(T*G(.)))",
    );
    row("Nitho", nitho.num_parameters(), nitho.size_bytes(), "F(T)");
    println!();
    println!(
        "Nitho kernel grid (Eq. 10): {}x{} with r = {}",
        nitho.kernel_dims().rows,
        nitho.kernel_dims().cols,
        nitho.kernel_dims().count
    );
}
