//! Table III — accuracy comparison of the three models on every dataset
//! family (aerial MSE/ME/PSNR, resist mPA/mIOU).

use litho_baselines::TargetStage;
use litho_bench::{
    evaluate_all_models, standard_benchmarks, train_cnn, train_fno, train_nitho, ExperimentScale,
};
use litho_optics::HopkinsSimulator;

fn main() {
    let scale = ExperimentScale::from_env();
    let optics = scale.optics();
    let simulator = HopkinsSimulator::new(&optics);
    let benchmarks = standard_benchmarks(&scale, &simulator);

    println!(
        "Table III — result comparison ({} train / {} test tiles per family, {} epochs)",
        scale.train_tiles, scale.test_tiles, scale.epochs
    );
    for benchmark in &benchmarks {
        println!("\n== {} ==", benchmark.name);
        let nitho = train_nitho(&scale, &optics, &benchmark.train);
        let cnn = train_cnn(&scale, &benchmark.train, TargetStage::Aerial);
        let fno = train_fno(&scale, &benchmark.train, TargetStage::Aerial);
        for row in evaluate_all_models(&nitho, &cnn, &fno, &benchmark.test, optics.resist_threshold)
        {
            println!("  {}", row.formatted());
        }
    }
}
