//! Microbenchmark: TCC assembly, SOCS eigendecomposition and aerial-image
//! synthesis of the rigorous golden engine (the paper's "traditional
//! lithography simulator" cost reference, Fig. 5).

use criterion::{criterion_group, criterion_main, Criterion};
use litho_masks::{Dataset, DatasetKind};
use litho_optics::source::SourceGrid;
use litho_optics::{HopkinsSimulator, OpticalConfig, SocsKernels, TccMatrix};

fn optics() -> OpticalConfig {
    OpticalConfig::builder()
        .tile_px(128)
        .pixel_nm(4.0)
        .kernel_count(8)
        .build()
}

fn bench_tcc_assembly(c: &mut Criterion) {
    let config = optics();
    let dims = config.kernel_dims_with_side(9);
    let grid = SourceGrid::sample(&config.source, 13);
    let mut group = c.benchmark_group("tcc");
    group.sample_size(10);
    group.bench_function("assemble_9x9", |b| {
        b.iter(|| TccMatrix::assemble(&config, dims, &grid));
    });
    let tcc = TccMatrix::assemble(&config, dims, &grid);
    group.bench_function("socs_decompose_9x9", |b| {
        b.iter(|| SocsKernels::from_tcc(&tcc));
    });
    group.finish();
}

fn bench_aerial_synthesis(c: &mut Criterion) {
    let config = optics();
    let simulator = HopkinsSimulator::new(&config);
    let dataset = Dataset::generate(DatasetKind::B2Metal, 1, &simulator, 1);
    let mask = dataset.samples()[0].mask.clone();
    let mut group = c.benchmark_group("aerial");
    group.sample_size(10);
    group.bench_function("rigorous_simulate_128", |b| {
        b.iter(|| simulator.simulate(&mask));
    });
    group.finish();
}

criterion_group!(benches, bench_tcc_assembly, bench_aerial_synthesis);
criterion_main!(benches);
