//! Fig. 5 counterpart: per-tile inference latency of the rigorous simulator
//! versus Nitho's stored-kernel path.

use criterion::{criterion_group, criterion_main, Criterion};
use litho_masks::{Dataset, DatasetKind};
use litho_optics::{HopkinsSimulator, OpticalConfig};
use nitho::{NithoConfig, NithoModel};

fn bench_throughput(c: &mut Criterion) {
    let optics = OpticalConfig::builder()
        .tile_px(128)
        .pixel_nm(4.0)
        .kernel_count(8)
        .build();
    let rigorous = HopkinsSimulator::new(&OpticalConfig {
        kernel_count: 40,
        ..optics.clone()
    });
    let labeller = HopkinsSimulator::new(&optics);
    let train = Dataset::generate(DatasetKind::B2Metal, 6, &labeller, 2);
    let mask = Dataset::generate(DatasetKind::B2Via, 1, &labeller, 3).samples()[0]
        .mask
        .clone();

    let mut model = NithoModel::new(
        NithoConfig {
            epochs: 10,
            ..NithoConfig::fast()
        },
        &optics,
    );
    model.train(&train);

    let threads = litho_parallel::max_threads();
    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);
    group.bench_function("rigorous_tile_128/1t", |b| {
        b.iter(|| litho_parallel::with_threads(1, || rigorous.simulate(&mask)));
    });
    group.bench_function("nitho_tile_128/1t", |b| {
        b.iter(|| {
            litho_parallel::with_threads(1, || model.predict_resist(&mask, optics.resist_threshold))
        });
    });
    // On a single-core runner these ids would collide with the "/1t" cases,
    // which real criterion rejects.
    if threads > 1 {
        group.bench_function(format!("rigorous_tile_128/{threads}t"), |b| {
            b.iter(|| litho_parallel::with_threads(threads, || rigorous.simulate(&mask)));
        });
        group.bench_function(format!("nitho_tile_128/{threads}t"), |b| {
            b.iter(|| {
                litho_parallel::with_threads(threads, || {
                    model.predict_resist(&mask, optics.resist_threshold)
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
