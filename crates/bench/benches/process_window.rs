//! Process-window throughput and memory residency: one conditioned Nitho
//! neural field vs. per-condition rigorous Hopkins re-decomposition on a
//! focus × dose grid.
//!
//! The rigorous path must rebuild its TCC and re-run the eigendecomposition
//! for *every* focus value (the expensive part of process-window analysis);
//! the conditioned field replaces that with a single CMLP inference per
//! condition followed by the same cheap SOCS synthesis. This bench times a
//! full ≥3×3 grid sweep of one chip tile through both engines.
//!
//! The whole binary also runs under the counting allocator, so the sweep is
//! run twice more — once folding each condition straight into a
//! [`StreamingPvb`] accumulator (the serving data path), once materializing
//! the full resist stack before reducing it (the pre-streaming data path) —
//! and the peak-heap growth of each is recorded. The emitted `BENCH_pw.json`
//! (written to the workspace root) carries both the speedup and the memory
//! cliff (`pvb_peak_ratio`) so they are tracked across commits.
//!
//! Knobs: `NITHO_PW_FOCUS_STEPS` / `NITHO_PW_DOSE_STEPS` (default 3×3) scale
//! the grid; `NITHO_PW_TILE_PX` (default 128, at 4 nm) scales the tile.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use litho_masks::{Dataset, DatasetKind, ProcessDataset};
use litho_math::RealMatrix;
use litho_metrics::{pvb_summary, StreamingPvb};
use litho_optics::{HopkinsSimulator, OpticalConfig, ProcessWindow};
use litho_testsupport::{peak_growth_during, CountingAllocator};
use nitho::{ConditionEncoding, NithoConfig, NithoModel};

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn optics(tile_px: usize) -> OpticalConfig {
    OpticalConfig::builder()
        .tile_px(tile_px)
        .pixel_nm(4.0)
        .kernel_count(8)
        .build()
}

/// Mean wall time per iteration in milliseconds (1 warm-up + `iters` timed).
fn time_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / iters as f64
}

/// Minimum single-iteration wall time in milliseconds (1 warm-up + `iters`
/// timed). The min is the right statistic for an overhead *ratio*: scheduler
/// noise only ever adds time, so the per-state minima compare the two
/// configurations at their least-perturbed.
fn min_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// Peak heap growth of one warm pass, in bytes (1 warm-up + 1 measured).
fn peak_bytes(mut f: impl FnMut()) -> u64 {
    f();
    peak_growth_during(f).1
}

fn bench_process_window(c: &mut Criterion) {
    let tile_px = litho_bench::env_usize("NITHO_PW_TILE_PX", 128);
    let optics = optics(tile_px);
    let focus_steps = litho_bench::env_usize("NITHO_PW_FOCUS_STEPS", 3);
    let dose_steps = litho_bench::env_usize("NITHO_PW_DOSE_STEPS", 3);
    let window = ProcessWindow::symmetric(80.0, focus_steps, 0.05, dose_steps);
    let conditions = window.conditions();

    eprintln!(
        "process_window bench: building the rigorous engine and training a \
         conditioned model on a {focus_steps}x{dose_steps} grid at {tile_px} px"
    );
    let simulator = HopkinsSimulator::new(&optics);
    let pd = ProcessDataset::generate(DatasetKind::B2Metal, 6, &simulator, &conditions, 17);
    let config = NithoConfig {
        kernel_side: Some(9),
        kernel_count: 8,
        epochs: litho_bench::env_usize("NITHO_EPOCHS", 12),
        condition: Some(ConditionEncoding {
            focus_span_nm: 80.0,
            dose_span: 0.05,
            ..ConditionEncoding::default()
        }),
        ..NithoConfig::fast()
    };
    let mut model = NithoModel::new(config, &optics);
    model.train_process_window(pd.groups());

    let mask = Dataset::generate(DatasetKind::B2Metal, 1, &simulator, 11).samples()[0]
        .mask
        .clone();

    // Full grid sweep through each engine. The conditioned sweep drives the
    // serving data path: the cropped mask spectrum is computed once
    // (condition-independent; pinned by tests/spectrum_reuse.rs), one scratch
    // plane is recycled across the grid and every condition's resist cut is
    // folded straight into the bit-packed PVB accumulator.
    let streamed_sweep = || {
        let mut scratch = RealMatrix::zeros(tile_px, tile_px);
        let mut fold = StreamingPvb::new();
        model.for_each_condition(&mask, &conditions, &mut scratch, |_, threshold, aerial| {
            fold.push_thresholded(aerial, threshold);
        });
        black_box(fold.finish(false).0);
    };
    // The pre-streaming data path: one resist plane per condition, reduced
    // only after the whole stack is resident. Same arithmetic, O(conditions)
    // planes — kept here purely to measure the memory cliff.
    let materialized_sweep = || {
        let spectrum = model.cropped_spectrum(&mask);
        let stack: Vec<RealMatrix> = conditions
            .iter()
            .map(|condition| {
                let frozen = model.at_condition(condition).expect("conditioned model");
                let aerial = frozen.predict_aerial_from_spectrum(&spectrum, mask.len(), tile_px);
                aerial.threshold(frozen.effective_resist_threshold())
            })
            .collect();
        black_box(pvb_summary(&stack));
    };
    let rigorous_sweep = || {
        for condition in &conditions {
            let rebuilt = simulator.at_condition(condition);
            let (aerial, resist) = rebuilt.simulate(&mask);
            black_box((aerial, resist));
        }
    };

    let mut group = c.benchmark_group(format!("process_window_{focus_steps}x{dose_steps}"));
    group.sample_size(10);
    group.bench_function("conditioned_nitho", |b| b.iter(streamed_sweep));
    group.bench_function("rigorous_redecomposition", |b| b.iter(rigorous_sweep));
    group.finish();

    // JSON summary for the README / CI perf tracking.
    let nitho_ms = time_ms(3, streamed_sweep);
    let rigorous_ms = time_ms(3, rigorous_sweep);
    let streamed_peak = peak_bytes(streamed_sweep);
    let materialized_peak = peak_bytes(materialized_sweep);

    // Instrumentation budget: the same streamed sweep with the metrics
    // registry enabled vs disabled. CI pins the ratio below 1.03.
    litho_obs::set_enabled(false);
    let obs_off_ms = min_ms(3, streamed_sweep);
    litho_obs::set_enabled(true);
    let obs_on_ms = min_ms(3, streamed_sweep);
    let obs_overhead_ratio = obs_on_ms / obs_off_ms;
    let json = format!(
        "{{\n  \"bench\": \"process_window\",\n  \"tile_px\": {tile_px},\n  \
         \"kernel_count\": 8,\n  \"focus_steps\": {focus_steps},\n  \
         \"dose_steps\": {dose_steps},\n  \"conditions\": {},\n  \
         \"conditioned_nitho_ms\": {nitho_ms:.3},\n  \
         \"rigorous_redecomposition_ms\": {rigorous_ms:.3},\n  \
         \"speedup\": {:.3},\n  \
         \"streamed_peak_bytes\": {streamed_peak},\n  \
         \"materialized_peak_bytes\": {materialized_peak},\n  \
         \"obs_on_ms\": {obs_on_ms:.3},\n  \
         \"obs_off_ms\": {obs_off_ms:.3},\n  \
         \"obs_overhead_ratio\": {obs_overhead_ratio:.3},\n  \
         \"pvb_peak_ratio\": {:.3}\n}}\n",
        conditions.len(),
        rigorous_ms / nitho_ms,
        materialized_peak as f64 / streamed_peak as f64,
    );
    // Cargo runs benches with the package directory as CWD; anchor the report
    // at the workspace root instead.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pw.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote BENCH_pw.json:\n{json}"),
        Err(err) => eprintln!("could not write BENCH_pw.json: {err}"),
    }
}

criterion_group!(benches, bench_process_window);
criterion_main!(benches);
