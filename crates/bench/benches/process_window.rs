//! Process-window throughput: one conditioned Nitho neural field vs.
//! per-condition rigorous Hopkins re-decomposition on a focus × dose grid.
//!
//! The rigorous path must rebuild its TCC and re-run the eigendecomposition
//! for *every* focus value (the expensive part of process-window analysis);
//! the conditioned field replaces that with a single CMLP inference per
//! condition followed by the same cheap SOCS synthesis. This bench times a
//! full ≥3×3 grid sweep of one chip tile through both engines and emits a
//! `BENCH_pw.json` summary (written to the workspace root) so the speedup is
//! tracked across commits.
//!
//! Knobs: `NITHO_PW_FOCUS_STEPS` / `NITHO_PW_DOSE_STEPS` (default 3×3) scale
//! the grid; the tile setup mirrors the socs bench (128 px at 4 nm).

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use litho_masks::{Dataset, DatasetKind, ProcessDataset};
use litho_optics::{HopkinsSimulator, OpticalConfig, ProcessWindow};
use nitho::{ConditionEncoding, NithoConfig, NithoModel};

const TILE_PX: usize = 128;

fn optics() -> OpticalConfig {
    OpticalConfig::builder()
        .tile_px(TILE_PX)
        .pixel_nm(4.0)
        .kernel_count(8)
        .build()
}

/// Mean wall time per iteration in milliseconds (1 warm-up + `iters` timed).
fn time_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / iters as f64
}

fn bench_process_window(c: &mut Criterion) {
    let optics = optics();
    let focus_steps = litho_bench::env_usize("NITHO_PW_FOCUS_STEPS", 3);
    let dose_steps = litho_bench::env_usize("NITHO_PW_DOSE_STEPS", 3);
    let window = ProcessWindow::symmetric(80.0, focus_steps, 0.05, dose_steps);
    let conditions = window.conditions();

    eprintln!(
        "process_window bench: building the rigorous engine and training a \
         conditioned model on a {focus_steps}x{dose_steps} grid"
    );
    let simulator = HopkinsSimulator::new(&optics);
    let pd = ProcessDataset::generate(DatasetKind::B2Metal, 6, &simulator, &conditions, 17);
    let config = NithoConfig {
        kernel_side: Some(9),
        kernel_count: 8,
        epochs: litho_bench::env_usize("NITHO_EPOCHS", 12),
        condition: Some(ConditionEncoding {
            focus_span_nm: 80.0,
            dose_span: 0.05,
            ..ConditionEncoding::default()
        }),
        ..NithoConfig::fast()
    };
    let mut model = NithoModel::new(config, &optics);
    model.train_process_window(pd.groups());

    let mask = Dataset::generate(DatasetKind::B2Metal, 1, &simulator, 11).samples()[0]
        .mask
        .clone();

    // Full grid sweep through each engine: aerial + resist per condition.
    // The cropped mask spectrum is condition-independent, so the conditioned
    // sweep computes it once per tile and reuses it across the whole grid
    // (the serving layer does the same; pinned by tests/spectrum_reuse.rs).
    let nitho_sweep = || {
        let spectrum = model.cropped_spectrum(&mask);
        for condition in &conditions {
            let frozen = model.at_condition(condition).expect("conditioned model");
            let aerial = frozen.predict_aerial_from_spectrum(&spectrum, mask.len(), TILE_PX);
            black_box(aerial.threshold(frozen.effective_resist_threshold()));
        }
    };
    let rigorous_sweep = || {
        for condition in &conditions {
            let rebuilt = simulator.at_condition(condition);
            let (aerial, resist) = rebuilt.simulate(&mask);
            black_box((aerial, resist));
        }
    };

    let mut group = c.benchmark_group(format!("process_window_{focus_steps}x{dose_steps}"));
    group.sample_size(10);
    group.bench_function("conditioned_nitho", |b| b.iter(nitho_sweep));
    group.bench_function("rigorous_redecomposition", |b| b.iter(rigorous_sweep));
    group.finish();

    // JSON summary for the README / CI perf tracking.
    let nitho_ms = time_ms(3, nitho_sweep);
    let rigorous_ms = time_ms(3, rigorous_sweep);
    let json = format!(
        "{{\n  \"bench\": \"process_window\",\n  \"tile_px\": {TILE_PX},\n  \
         \"kernel_count\": 8,\n  \"focus_steps\": {focus_steps},\n  \
         \"dose_steps\": {dose_steps},\n  \"conditions\": {},\n  \
         \"conditioned_nitho_ms\": {nitho_ms:.3},\n  \
         \"rigorous_redecomposition_ms\": {rigorous_ms:.3},\n  \
         \"speedup\": {:.3}\n}}\n",
        conditions.len(),
        rigorous_ms / nitho_ms,
    );
    // Cargo runs benches with the package directory as CWD; anchor the report
    // at the workspace root instead.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pw.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote BENCH_pw.json:\n{json}"),
        Err(err) => eprintln!("could not write BENCH_pw.json: {err}"),
    }
}

criterion_group!(benches, bench_process_window);
criterion_main!(benches);
