//! Serving-tier throughput: the event-loop tier (bounded queue + worker
//! pool + cross-request condition batching) versus the thread-per-connection
//! baseline, driven over real loopback sockets by the shared `loadgen`
//! client.
//!
//! The workload is a mixed request stream shaped like production serving
//! traffic: mostly cheap metadata probes (`/healthz`, `/v1/models` — the
//! kind of stream a health-checked load balancer sends), plus full-tile
//! `/v1/simulate` inference and a multi-focus `/v1/process_window` sweep
//! that exercises the condition batcher. Each (tier, concurrency) cell
//! reports completed-request throughput and bucketed p50/p95 latency.
//!
//! A separate micro-section times condition specialization solo
//! (`for_condition` per condition, one CMLP dispatch each) against the
//! batched plural path (`for_conditions`, one `infer_batch` for the lot) —
//! the amortization that cross-request batching buys under concurrent
//! process-window load.
//!
//! Emits `BENCH_serve.json` at the workspace root; `speedup_c8` carries the
//! CI floor. Knobs: `NITHO_SERVE_BENCH_REQUESTS` scales the per-cell
//! request count (default 192).

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use litho_optics::{HopkinsSimulator, OpticalConfig, ProcessCondition};
use litho_serve::{
    drive, HttpServer, LoadReport, ModelRegistry, RequestSpec, ServeConfig, Service,
};
use nitho::{ConditionEncoding, NithoConfig, NithoModel};

/// Both tiers get identically-seeded services (deterministic weights), but
/// only the event-loop tier keeps cross-request condition batching on — the
/// thread-per-connection baseline runs the pre-refactor solo specialization
/// path, so the A/B isolates what this tier adds.
fn build_service(cross_request_batching: bool) -> Arc<Service> {
    let optics = OpticalConfig::builder()
        .tile_px(64)
        .pixel_nm(8.0)
        .kernel_count(6)
        .build();
    // Untrained but kernel-refreshed: deterministic weights, full serving
    // data path (CMLP specialization + SOCS synthesis + metrology) without
    // minutes of training in a bench. Production-scale field (17² kernel
    // grid, default 64-wide × 2-block trunk) so per-condition CMLP
    // specialization carries a realistic share of the request — that is the
    // work the condition batcher dedupes across requests, while SOCS
    // synthesis cost is set by the tile FFT and stays per-request.
    let mut model = NithoModel::new(
        NithoConfig {
            kernel_side: Some(17),
            hidden_dim: 64,
            hidden_blocks: 2,
            condition: Some(ConditionEncoding::default()),
            ..NithoConfig::fast()
        },
        &optics,
    );
    model.refresh_kernels();
    let mut registry = ModelRegistry::new();
    registry.register_nitho("nitho", model);
    registry.register_hopkins("hopkins", HopkinsSimulator::new(&optics));
    Arc::new(Service::new(registry).with_cross_request_batching(cross_request_batching))
}

/// The mixed stream: process-window sweeps dominate (the OPC calibration
/// traffic this tier is built for — every sweep specializes a 9-point focus
/// ladder, which concurrent requests merge into one CMLP dispatch), cut
/// with tile simulations and cheap metadata probes (drive() cycles
/// `specs[index % len]`).
fn request_mix() -> Vec<RequestSpec> {
    let simulate = r#"{"model":"nitho","mask":{"rows":48,"cols":48,
        "rects":[[8,8,40,24]]},"outputs":["resist"]}"#;
    // Three *different* masks sweeping the *same* focus ladder — the
    // calibration-fleet shape the batcher is built for: each request still
    // pays its own SOCS synthesis and metrology, but concurrent requests
    // specialize each ladder point once instead of once per request.
    let windows = [
        r#"{"model":"nitho","mask":{"rows":48,"cols":48,
        "rects":[[8,24,40,40]]},
        "focus_nm":[-80,-60,-40,-20,0,20,40,60,80]}"#,
        r#"{"model":"nitho","mask":{"rows":48,"cols":48,
        "rects":[[4,8,44,20],[4,28,44,40]]},
        "focus_nm":[-80,-60,-40,-20,0,20,40,60,80]}"#,
        r#"{"model":"nitho","mask":{"rows":48,"cols":48,
        "rects":[[16,4,32,44]]},
        "focus_nm":[-80,-60,-40,-20,0,20,40,60,80]}"#,
    ];
    vec![
        RequestSpec::post("/v1/process_window", windows[0]),
        RequestSpec::get("/healthz"),
        RequestSpec::post("/v1/process_window", windows[1]),
        RequestSpec::post("/v1/simulate", simulate),
        RequestSpec::post("/v1/process_window", windows[2]),
        RequestSpec::get("/v1/models"),
    ]
}

enum Tier {
    ThreadPerConnection,
    EventLoop,
}

/// One (tier, concurrency) cell: start the tier, warm it up, drive the
/// timed run, shut down cleanly.
fn run_cell(
    service: &Arc<Service>,
    tier: &Tier,
    concurrency: usize,
    requests: usize,
    specs: &[RequestSpec],
) -> LoadReport {
    let server = HttpServer::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr: SocketAddr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let handler_service = Arc::clone(service);
    let join = match tier {
        Tier::ThreadPerConnection => std::thread::spawn(move || {
            server.serve(move |request| handler_service.handle(request));
        }),
        Tier::EventLoop => {
            // Enough workers that concurrent process-window requests meet
            // inside the condition batcher (idle workers sleep on the queue
            // or in the batcher, so oversubscribing a 1-core container is
            // cheap), even when NITHO_THREADS pins intra-tile parallelism
            // to 1.
            let config = ServeConfig {
                workers: litho_parallel::max_threads().max(8),
                queue_depth: 256,
                ..ServeConfig::default()
            };
            let metrics = Arc::clone(service.metrics());
            std::thread::spawn(move || {
                server.serve_event(&config, &metrics, move |request| {
                    handler_service.handle(request)
                });
            })
        }
    };

    let warmup = drive(addr, concurrency.min(4), specs.len() * 2, specs);
    assert_eq!(warmup.failed, 0, "warm-up must not fail");
    let report = drive(addr, concurrency, requests, specs);
    shutdown.shutdown();
    join.join().expect("serving tier exits cleanly");
    assert_eq!(report.failed, 0, "bench run must not fail");
    report
}

/// Mean wall time per iteration in milliseconds (1 warm-up + `iters` timed).
fn time_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / iters as f64
}

fn main() {
    let requests = litho_bench::env_usize("NITHO_SERVE_BENCH_REQUESTS", 192);
    let solo_service = build_service(false);
    let batched_service = build_service(true);
    let specs = request_mix();
    let concurrencies = [1usize, 8, 32];

    let mut cells = String::new();
    let mut speedups = Vec::new();
    for &concurrency in &concurrencies {
        let threaded = run_cell(
            &solo_service,
            &Tier::ThreadPerConnection,
            concurrency,
            requests,
            &specs,
        );
        let batched = run_cell(
            &batched_service,
            &Tier::EventLoop,
            concurrency,
            requests,
            &specs,
        );
        let speedup = batched.throughput_rps() / threaded.throughput_rps();
        speedups.push((concurrency, speedup));
        eprintln!(
            "c={concurrency}: threaded {:.0} req/s (p50 {} ms, p95 {} ms) | \
             batched {:.0} req/s (p50 {} ms, p95 {} ms) | {speedup:.2}x",
            threaded.throughput_rps(),
            threaded.p50_ms(),
            threaded.p95_ms(),
            batched.throughput_rps(),
            batched.p50_ms(),
            batched.p95_ms(),
        );
        cells.push_str(&format!(
            "    {{\"concurrency\": {concurrency},\n     \
             \"threaded_rps\": {:.1}, \"threaded_p50_ms\": {}, \"threaded_p95_ms\": {}, \
             \"batched_rps\": {:.1}, \"batched_p50_ms\": {}, \"batched_p95_ms\": {}, \
             \"speedup\": {speedup:.3}}},\n",
            threaded.throughput_rps(),
            threaded.p50_ms(),
            threaded.p95_ms(),
            batched.throughput_rps(),
            batched.p50_ms(),
            batched.p95_ms(),
        ));
    }
    let cells = cells.trim_end_matches(",\n").to_owned();

    // Micro-section: the amortization cross-request batching is built on.
    // 64 specializations dispatched one CMLP call at a time vs one
    // infer_batch; identical kernels either way (pinned by tests).
    let (_, engine) = batched_service
        .registry()
        .get("nitho")
        .expect("nitho registered above");
    let conditions: Vec<ProcessCondition> = (0..64)
        .map(|i| ProcessCondition::new(-60.0 + 2.0 * i as f64, 1.0))
        .collect();
    let solo_ms = time_ms(5, || {
        for condition in &conditions {
            std::hint::black_box(engine.for_condition(condition));
        }
    });
    let batched_ms = time_ms(5, || {
        std::hint::black_box(engine.for_conditions(&conditions));
    });
    let specialize_speedup = solo_ms / batched_ms;
    eprintln!(
        "specialize 64 conditions: solo {solo_ms:.2} ms, batched {batched_ms:.2} ms \
         ({specialize_speedup:.2}x)"
    );

    let speedup_c8 = speedups
        .iter()
        .find(|(c, _)| *c == 8)
        .map(|(_, s)| *s)
        .unwrap_or(0.0);
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"requests_per_cell\": {requests},\n  \
         \"mix\": \"3 process_window : 1 simulate : 2 metadata\",\n  \"cells\": [\n{cells}\n  ],\n  \
         \"speedup_c8\": {speedup_c8:.3},\n  \
         \"specialize_solo_ms\": {solo_ms:.3},\n  \
         \"specialize_batched_ms\": {batched_ms:.3},\n  \
         \"specialize_speedup\": {specialize_speedup:.3}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote BENCH_serve.json:\n{json}"),
        Err(err) => eprintln!("could not write BENCH_serve.json: {err}"),
    }
}
