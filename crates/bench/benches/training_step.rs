//! Microbenchmark: one full Nitho training epoch (Algorithm 1) on a small
//! dataset, the dominant cost of every table/figure experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use litho_masks::{Dataset, DatasetKind};
use litho_optics::{HopkinsSimulator, OpticalConfig};
use nitho::{NithoConfig, NithoModel};

fn bench_training(c: &mut Criterion) {
    let optics = OpticalConfig::builder()
        .tile_px(64)
        .pixel_nm(8.0)
        .kernel_count(6)
        .build();
    let simulator = HopkinsSimulator::new(&optics);
    let dataset = Dataset::generate(DatasetKind::B1, 4, &simulator, 1);
    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    group.bench_function("nitho_one_epoch_4_tiles", |b| {
        b.iter(|| {
            let config = NithoConfig {
                epochs: 1,
                ..NithoConfig::fast()
            };
            let mut model = NithoModel::new(config, &optics);
            model.train(&dataset)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
