//! Microbenchmark: CMLP forward pass (kernel regression from coordinates).

use criterion::{criterion_group, criterion_main, Criterion};
use litho_math::DeterministicRng;
use nitho::cmlp::{Cmlp, CmlpArchitecture};
use nitho::PositionalEncoding;

fn bench_cmlp(c: &mut Criterion) {
    let encoding = PositionalEncoding::default();
    let coords = encoding.encode_grid(15, 15);
    let mut rng = DeterministicRng::new(1);
    let cmlp = Cmlp::new(
        CmlpArchitecture {
            input_dim: encoding.output_dim(),
            hidden_dim: 64,
            hidden_blocks: 2,
            output_dim: 12,
        },
        &mut rng,
    );
    let mut group = c.benchmark_group("cmlp");
    group.sample_size(30);
    group.bench_function("infer_15x15_grid", |b| {
        b.iter(|| cmlp.infer(&coords));
    });
    group.finish();
}

criterion_group!(benches, bench_cmlp);
criterion_main!(benches);
