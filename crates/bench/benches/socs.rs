//! SOCS aerial-image throughput on a production-sized 64-kernel bank:
//! serial/unplanned baseline vs the planned engine at 1 and N threads.
//!
//! Besides the criterion-style console lines, this bench emits a
//! `BENCH_socs.json` summary (written to the workspace root) so the
//! speedups can be tracked across commits.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use litho_fft::ifftshift;
use litho_masks::{Dataset, DatasetKind};
use litho_math::util::center_pad;
use litho_math::{ComplexMatrix, RealMatrix};
use litho_optics::source::SourceGrid;
use litho_optics::{HopkinsSimulator, OpticalConfig, SocsKernels, TccMatrix};

/// Workload knobs (`NITHO_SOCS_TILE_PX`, `NITHO_SOCS_KERNELS`): the defaults
/// are the production-sized trajectory workload; CI's bench-smoke job runs a
/// reduced size and only checks the emitted speedup floor.
fn tile_px() -> usize {
    litho_bench::env_usize("NITHO_SOCS_TILE_PX", 128)
}
fn kernel_count() -> usize {
    litho_bench::env_usize("NITHO_SOCS_KERNELS", 64)
}

/// The pre-engine aerial synthesis: per-call twiddle recomputation, one
/// kernel at a time, no plan cache, no workers. Normalization is omitted —
/// it is a single DC lookup per kernel plus one matrix scale, noise compared
/// to the 2·r 2-D FFTs being timed.
fn unplanned_serial_aerial(socs: &SocsKernels, spectrum: &ComplexMatrix, out: usize) -> RealMatrix {
    let mut intensity = RealMatrix::zeros(out, out);
    for kernel in socs.kernels() {
        let product = kernel.hadamard(spectrum);
        let padded = center_pad(&product, out, out);
        let field = litho_fft::unplanned::ifft2(&ifftshift(&padded));
        intensity = intensity.zip_map(&field.abs_sq(), |acc, v| acc + v);
    }
    intensity
}

/// Mean wall time per iteration in milliseconds (1 warm-up + `iters` timed).
fn time_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / iters as f64
}

/// Minimum single-iteration wall time in milliseconds (1 warm-up + `iters`
/// timed). The min is the right statistic for an overhead *ratio*: scheduler
/// noise only ever adds time, so the per-state minima compare the two
/// configurations at their least-perturbed.
fn min_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

fn bench_socs(c: &mut Criterion) {
    let tile_px = tile_px();
    let kernel_count = kernel_count();
    let config = OpticalConfig::builder()
        .tile_px(tile_px)
        .pixel_nm(512.0 / tile_px as f64)
        .kernel_count(kernel_count)
        .build();
    let dims = config.kernel_dims_with_side(9);
    let grid = SourceGrid::sample(&config.source, 13);
    let tcc = TccMatrix::assemble(&config, dims, &grid);
    let socs = SocsKernels::from_tcc(&tcc);
    assert_eq!(socs.kernels().len(), kernel_count);

    let labeller = HopkinsSimulator::new(&config);
    let mask = Dataset::generate(DatasetKind::B2Metal, 1, &labeller, 11).samples()[0]
        .mask
        .clone();
    let spectrum = socs.cropped_mask_spectrum(&mask);
    let mask_pixels = mask.len();
    let threads = litho_parallel::max_threads();

    let mut group = c.benchmark_group(format!("socs_aerial_{kernel_count}_kernels"));
    group.sample_size(10);
    group.bench_function("unplanned_serial", |b| {
        b.iter(|| unplanned_serial_aerial(&socs, &spectrum, tile_px));
    });
    group.bench_function("planned_aos_1_thread", |b| {
        b.iter(|| {
            litho_parallel::with_threads(1, || {
                socs.aerial_from_cropped_spectrum_aos(&spectrum, mask_pixels, tile_px, tile_px)
            })
        });
    });
    group.bench_function("planned_1_thread", |b| {
        b.iter(|| {
            litho_parallel::with_threads(1, || {
                socs.aerial_from_cropped_spectrum(&spectrum, mask_pixels, tile_px, tile_px)
            })
        });
    });
    // Only meaningful (and unambiguous) when there is real parallelism.
    if threads > 1 {
        group.bench_function(format!("planned_{threads}_threads"), |b| {
            b.iter(|| {
                litho_parallel::with_threads(threads, || {
                    socs.aerial_from_cropped_spectrum(&spectrum, mask_pixels, tile_px, tile_px)
                })
            });
        });
    }
    group.finish();

    // JSON summary for the README / CI perf tracking.
    let iters = 5;
    let unplanned_ms = time_ms(iters, || {
        black_box(unplanned_serial_aerial(&socs, &spectrum, tile_px));
    });
    let planned_aos_ms = time_ms(iters, || {
        litho_parallel::with_threads(1, || {
            black_box(socs.aerial_from_cropped_spectrum_aos(
                &spectrum,
                mask_pixels,
                tile_px,
                tile_px,
            ));
        });
    });
    let planned_serial_ms = time_ms(iters, || {
        litho_parallel::with_threads(1, || {
            black_box(socs.aerial_from_cropped_spectrum(&spectrum, mask_pixels, tile_px, tile_px));
        });
    });
    let planned_parallel_ms = time_ms(iters, || {
        litho_parallel::with_threads(threads, || {
            black_box(socs.aerial_from_cropped_spectrum(&spectrum, mask_pixels, tile_px, tile_px));
        });
    });

    // Explicit-backend A/B of the fused SOCS accumulate (the kernel the
    // NITHO_SIMD / NITHO_PRECISION knobs actually dispatch): scalar f64 is
    // the pinned reference, the AVX2 and f32 rows isolate each knob.
    use litho_math::simd::{avx2_available, SimdBackend};
    let best = if avx2_available() {
        SimdBackend::Avx2
    } else {
        SimdBackend::Scalar
    };
    let mut acc = RealMatrix::zeros(tile_px, tile_px);
    let fused_scalar_ms = min_ms(iters, || {
        acc.as_mut_slice().fill(0.0);
        litho_fft::soa::accumulate_socs_intensity_with(
            SimdBackend::Scalar,
            socs.kernels(),
            &spectrum,
            &mut acc,
        );
        black_box(&acc);
    });
    let fused_simd_ms = min_ms(iters, || {
        acc.as_mut_slice().fill(0.0);
        litho_fft::soa::accumulate_socs_intensity_with(best, socs.kernels(), &spectrum, &mut acc);
        black_box(&acc);
    });
    let fused_f32_ms = min_ms(iters, || {
        acc.as_mut_slice().fill(0.0);
        litho_fft::soa::accumulate_socs_intensity_f32_with(
            best,
            socs.kernels(),
            &spectrum,
            &mut acc,
        );
        black_box(&acc);
    });

    // Instrumentation budget: the same serial synthesis with the metrics
    // registry enabled vs disabled. CI pins the ratio below 1.03.
    let one_pass = || {
        litho_parallel::with_threads(1, || {
            black_box(socs.aerial_from_cropped_spectrum(&spectrum, mask_pixels, tile_px, tile_px));
        });
    };
    litho_obs::set_enabled(false);
    let obs_off_ms = min_ms(iters, one_pass);
    litho_obs::set_enabled(true);
    let obs_on_ms = min_ms(iters, one_pass);
    let obs_overhead_ratio = obs_on_ms / obs_off_ms;

    let json = format!(
        "{{\n  \"bench\": \"socs_aerial\",\n  \"tile_px\": {tile_px},\n  \"kernel_count\": {kernel_count},\n  \"threads\": {threads},\n  \"unplanned_serial_ms\": {unplanned_ms:.3},\n  \"planned_aos_1_thread_ms\": {planned_aos_ms:.3},\n  \"planned_1_thread_ms\": {planned_serial_ms:.3},\n  \"planned_parallel_ms\": {planned_parallel_ms:.3},\n  \"planned_speedup\": {:.3},\n  \"soa_vs_aos_speedup\": {:.3},\n  \"parallel_speedup\": {:.3},\n  \"simd_backend\": \"{}\",\n  \"fused_scalar_ms\": {fused_scalar_ms:.3},\n  \"fused_simd_ms\": {fused_simd_ms:.3},\n  \"fused_f32_ms\": {fused_f32_ms:.3},\n  \"simd_speedup\": {:.3},\n  \"f32_speedup\": {:.3},\n  \"obs_on_ms\": {obs_on_ms:.3},\n  \"obs_off_ms\": {obs_off_ms:.3},\n  \"obs_overhead_ratio\": {obs_overhead_ratio:.3}\n}}\n",
        unplanned_ms / planned_serial_ms,
        planned_aos_ms / planned_serial_ms,
        unplanned_ms / planned_parallel_ms,
        best.label(),
        fused_scalar_ms / fused_simd_ms,
        fused_scalar_ms / fused_f32_ms,
    );
    // Cargo runs benches with the package directory as CWD; anchor the report
    // at the workspace root instead.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_socs.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote BENCH_socs.json:\n{json}"),
        Err(err) => eprintln!("could not write BENCH_socs.json: {err}"),
    }
}

criterion_group!(benches, bench_socs);
criterion_main!(benches);
