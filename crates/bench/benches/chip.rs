//! Stitched full-chip throughput through the `litho_serve` tiling engine:
//! Nitho's stored regressed kernels vs the rigorous Hopkins engine, at 1 and
//! N worker threads, on the same guard-band workload.
//!
//! Besides the criterion-style console lines, this bench emits a
//! `BENCH_chip.json` summary (written to the workspace root) so the
//! full-chip speed-up can be tracked across commits.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use litho_masks::{chip_mosaic, Dataset, DatasetKind, GeneratorConfig};
use litho_optics::{HopkinsSimulator, OpticalConfig};
use litho_serve::{ChipPipeline, Json, TileSimulator};
use nitho::{NithoConfig, NithoModel};

const TILE_PX: usize = 64;
const PIXEL_NM: f64 = 8.0;
/// Production TCC decompositions retain tens of kernels; Nitho regresses
/// an order of magnitude fewer (the source of the Fig. 5 speed-up).
const RIGOROUS_KERNELS: usize = 32;
const NITHO_KERNELS: usize = 6;
/// 4×4 mosaic by default: a 256-px chip, 16× the training-tile area.
/// `NITHO_CHIP_MOSAIC` scales it down for CI's bench-smoke job.
fn mosaic() -> usize {
    litho_bench::env_usize("NITHO_CHIP_MOSAIC", 4)
}

/// Mean wall time per iteration in milliseconds (1 warm-up + `iters` timed).
fn time_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / iters as f64
}

fn bench_chip(c: &mut Criterion) {
    let optics = OpticalConfig::builder()
        .tile_px(TILE_PX)
        .pixel_nm(PIXEL_NM)
        .kernel_count(NITHO_KERNELS)
        .build();
    let rigorous = HopkinsSimulator::new(&OpticalConfig {
        kernel_count: RIGOROUS_KERNELS,
        ..optics.clone()
    });

    let labeller = HopkinsSimulator::new(&optics);
    let train = Dataset::generate(DatasetKind::B2Metal, 6, &labeller, 21);
    let mut model = NithoModel::new(
        NithoConfig {
            epochs: 6,
            ..NithoConfig::fast()
        },
        &optics,
    );
    model.train(&train);

    let mosaic = mosaic();
    let chip = chip_mosaic(
        DatasetKind::B2Metal,
        mosaic,
        mosaic,
        &GeneratorConfig::new(TILE_PX, PIXEL_NM),
        22,
    );
    let mask = chip.rasterize();
    let threads = litho_parallel::max_threads();

    let mut group = c.benchmark_group("chip_stitched");
    group.sample_size(10);
    group.bench_function("hopkins_1_thread", |b| {
        b.iter(|| litho_parallel::with_threads(1, || ChipPipeline::new(&rigorous).aerial(&mask)));
    });
    group.bench_function("nitho_1_thread", |b| {
        b.iter(|| litho_parallel::with_threads(1, || ChipPipeline::new(&model).aerial(&mask)));
    });
    if threads > 1 {
        group.bench_function(format!("nitho_{threads}_threads"), |b| {
            b.iter(|| {
                litho_parallel::with_threads(threads, || ChipPipeline::new(&model).aerial(&mask))
            });
        });
    }
    group.finish();

    // JSON summary for the README / CI perf tracking.
    let iters = 3;
    let run = |sim: &dyn TileSimulator, threads: usize| {
        let pipeline = ChipPipeline::new(sim);
        time_ms(iters, || {
            litho_parallel::with_threads(threads, || {
                black_box(pipeline.simulate(&mask));
            })
        })
    };
    let hopkins_serial_ms = run(&rigorous, 1);
    let hopkins_parallel_ms = run(&rigorous, threads);
    let nitho_serial_ms = run(&model, 1);
    let nitho_parallel_ms = run(&model, threads);

    let tiles = ChipPipeline::new(&model)
        .plan(mask.rows(), mask.cols())
        .len();
    let area_um2 =
        (mask.rows() as f64 * PIXEL_NM / 1000.0) * (mask.cols() as f64 * PIXEL_NM / 1000.0);
    // The serving crate's insertion-ordered Json keeps the report fields
    // deterministic without hand-balancing braces and escapes.
    let round3 = |v: f64| (v * 1e3).round() / 1e3;
    let json = Json::object(vec![
        ("bench", Json::string("chip_stitched")),
        (
            "chip_px",
            Json::NumberArray(vec![mask.rows() as f64, mask.cols() as f64]),
        ),
        ("chip_um2", Json::Number(round3(area_um2))),
        ("tile_px", Json::Number(TILE_PX as f64)),
        ("tiles", Json::Number(tiles as f64)),
        ("rigorous_kernels", Json::Number(RIGOROUS_KERNELS as f64)),
        ("nitho_kernels", Json::Number(NITHO_KERNELS as f64)),
        ("threads", Json::Number(threads as f64)),
        (
            "hopkins_1_thread_ms",
            Json::Number(round3(hopkins_serial_ms)),
        ),
        (
            "hopkins_parallel_ms",
            Json::Number(round3(hopkins_parallel_ms)),
        ),
        ("nitho_1_thread_ms", Json::Number(round3(nitho_serial_ms))),
        ("nitho_parallel_ms", Json::Number(round3(nitho_parallel_ms))),
        (
            "nitho_tiles_per_s",
            Json::Number(round3(tiles as f64 / (nitho_parallel_ms / 1e3))),
        ),
        (
            "nitho_um2_per_s",
            Json::Number(round3(area_um2 / (nitho_parallel_ms / 1e3))),
        ),
        (
            "hopkins_um2_per_s",
            Json::Number(round3(area_um2 / (hopkins_parallel_ms / 1e3))),
        ),
        (
            "nitho_speedup_1_thread",
            Json::Number(round3(hopkins_serial_ms / nitho_serial_ms)),
        ),
        (
            "nitho_speedup_parallel",
            Json::Number(round3(hopkins_parallel_ms / nitho_parallel_ms)),
        ),
    ])
    .serialize()
    .expect("bench summary values are finite")
        + "\n";
    // Cargo runs benches with the package directory as CWD; anchor the report
    // at the workspace root instead.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chip.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote BENCH_chip.json:\n{json}"),
        Err(err) => eprintln!("could not write BENCH_chip.json: {err}"),
    }
}

criterion_group!(benches, bench_chip);
criterion_main!(benches);
