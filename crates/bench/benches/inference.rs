//! Frozen CMLP inference throughput: the retained tape-based evaluation vs
//! the tape-free blocked split-complex path that `kernels_at`/serving use.
//!
//! Emits `BENCH_infer.json` at the workspace root so the inference rewrite
//! has its own trajectory file, separate from the SOCS/chip numbers.
//!
//! Knobs: `NITHO_INFER_BATCH` (pixel rows per forward pass, default 2048).

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use litho_math::simd::{avx2_available, Precision, SimdBackend};
use litho_math::{Complex64, ComplexMatrix, DeterministicRng};
use nitho::{Cmlp, CmlpArchitecture};

/// The experiment-sized network (see `litho_bench::nitho_config`): 32 RFF
/// frequencies → 64 complex input features, two 48-wide hidden blocks, one
/// kernel value per output column.
fn architecture() -> CmlpArchitecture {
    CmlpArchitecture {
        input_dim: 64,
        hidden_dim: 48,
        hidden_blocks: 2,
        output_dim: 8,
    }
}

/// Mean wall time per iteration in milliseconds (1 warm-up + `iters` timed).
fn time_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / iters as f64
}

fn bench_inference(c: &mut Criterion) {
    let batch = litho_bench::env_usize("NITHO_INFER_BATCH", 2048);
    let mut rng = DeterministicRng::new(7);
    let mlp = Cmlp::new(architecture(), &mut rng);
    let input = ComplexMatrix::from_fn(batch, architecture().input_dim, |i, j| {
        Complex64::new(
            ((i * 13 + j) as f64 * 0.07).sin(),
            ((i + 5 * j) as f64 * 0.11).cos(),
        )
    });

    // The two paths must agree (the batched path's accumulation mirrors the
    // tape matmul), otherwise the comparison is meaningless.
    let a = mlp.infer(&input);
    let b = mlp.infer_tape(&input);
    let max_err = a
        .iter()
        .zip(b.iter())
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0f64, f64::max);
    assert!(max_err <= 1e-12, "tape/batched divergence {max_err}");

    let mut group = c.benchmark_group(format!("cmlp_frozen_inference_{batch}px"));
    group.sample_size(10);
    group.bench_function("tape", |b| b.iter(|| black_box(mlp.infer_tape(&input))));
    group.bench_function("batched_soa", |b| b.iter(|| black_box(mlp.infer(&input))));
    // Prepared once, inferred many — the serving shape (`kernels_at_batch`
    // prepares per sweep, not per condition), so the A/B isolates the
    // forward-pass arithmetic rather than the SoA weight split.
    group.bench_function("batched_scalar_f64", |b| {
        let mut prepared = mlp.prepare_with(SimdBackend::Scalar, Precision::F64);
        b.iter(|| black_box(prepared.infer(&input)))
    });
    if avx2_available() {
        group.bench_function("batched_avx2_f64", |b| {
            let mut prepared = mlp.prepare_with(SimdBackend::Avx2, Precision::F64);
            b.iter(|| black_box(prepared.infer(&input)))
        });
        group.bench_function("batched_avx2_f32", |b| {
            let mut prepared = mlp.prepare_with(SimdBackend::Avx2, Precision::F32);
            b.iter(|| black_box(prepared.infer(&input)))
        });
    }
    group.finish();

    let iters = 10;
    let tape_ms = time_ms(iters, || {
        black_box(mlp.infer_tape(&input));
    });
    let batched_ms = time_ms(iters, || {
        black_box(mlp.infer(&input));
    });
    // Explicit-backend A/B through the same prepared entry point the serving
    // path uses: scalar f64 is the pinned reference; the SIMD and f32 rows
    // quantify the NITHO_SIMD / NITHO_PRECISION knobs in isolation.
    let best = if avx2_available() {
        SimdBackend::Avx2
    } else {
        SimdBackend::Scalar
    };
    let mut prepared_scalar = mlp.prepare_with(SimdBackend::Scalar, Precision::F64);
    let scalar_ms = time_ms(iters, || {
        black_box(prepared_scalar.infer(&input));
    });
    let mut prepared_simd = mlp.prepare_with(best, Precision::F64);
    let simd_ms = time_ms(iters, || {
        black_box(prepared_simd.infer(&input));
    });
    let mut prepared_f32 = mlp.prepare_with(best, Precision::F32);
    let f32_ms = time_ms(iters, || {
        black_box(prepared_f32.infer(&input));
    });

    let arch = architecture();
    let json = format!(
        "{{\n  \"bench\": \"cmlp_inference\",\n  \"batch\": {batch},\n  \
         \"input_dim\": {},\n  \"hidden_dim\": {},\n  \"hidden_blocks\": {},\n  \
         \"output_dim\": {},\n  \"tape_ms\": {tape_ms:.3},\n  \
         \"batched_ms\": {batched_ms:.3},\n  \
         \"tape_pixels_per_s\": {:.0},\n  \"batched_pixels_per_s\": {:.0},\n  \
         \"speedup\": {:.3},\n  \
         \"simd_backend\": \"{}\",\n  \"scalar_f64_ms\": {scalar_ms:.3},\n  \
         \"simd_f64_ms\": {simd_ms:.3},\n  \"simd_f32_ms\": {f32_ms:.3},\n  \
         \"simd_speedup\": {:.3},\n  \"f32_speedup\": {:.3}\n}}\n",
        arch.input_dim,
        arch.hidden_dim,
        arch.hidden_blocks,
        arch.output_dim,
        batch as f64 / (tape_ms / 1e3),
        batch as f64 / (batched_ms / 1e3),
        tape_ms / batched_ms,
        best.label(),
        scalar_ms / simd_ms,
        scalar_ms / f32_ms,
    );
    // Cargo runs benches with the package directory as CWD; anchor the report
    // at the workspace root instead.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_infer.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote BENCH_infer.json:\n{json}"),
        Err(err) => eprintln!("could not write BENCH_infer.json: {err}"),
    }
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
