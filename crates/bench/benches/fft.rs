//! Microbenchmark: 2-D FFTs at the sizes used by the training loop and the
//! full-resolution SOCS synthesis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use litho_fft::{fft2, FftPlan};
use litho_math::{ComplexMatrix, DeterministicRng};

fn bench_fft2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft2");
    group.sample_size(20);
    for &n in &[32usize, 64, 128] {
        let mut rng = DeterministicRng::new(n as u64);
        let m = ComplexMatrix::from_fn(n, n, |_, _| rng.normal_complex(0.0, 1.0));
        group.bench_with_input(BenchmarkId::new("direct", n), &m, |b, m| {
            b.iter(|| fft2(m));
        });
        let plan = FftPlan::new(n);
        group.bench_with_input(BenchmarkId::new("planned", n), &m, |b, m| {
            b.iter(|| plan.forward2(m));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft2);
criterion_main!(benches);
