//! Microbenchmark: 2-D FFTs at the sizes used by the training loop and the
//! full-resolution SOCS synthesis.
//!
//! Three execution strategies are compared at each size:
//! `unplanned` (per-call twiddle recomputation, serial — the pre-engine
//! baseline), `planned/1t` (cached plans, single thread) and `planned/Nt`
//! (cached plans, row/column passes over `litho_parallel` workers), plus the
//! explicit [`FftPlan`] 2-D entry point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use litho_fft::{fft2, unplanned, FftPlan};
use litho_math::{ComplexMatrix, DeterministicRng};

fn bench_fft2(c: &mut Criterion) {
    let threads = litho_parallel::max_threads();
    let mut group = c.benchmark_group("fft2");
    group.sample_size(20);
    for &n in &[32usize, 64, 128, 256] {
        let mut rng = DeterministicRng::new(n as u64);
        let m = ComplexMatrix::from_fn(n, n, |_, _| rng.normal_complex(0.0, 1.0));
        group.bench_with_input(BenchmarkId::new("unplanned", n), &m, |b, m| {
            b.iter(|| unplanned::fft2(m));
        });
        group.bench_with_input(BenchmarkId::new("planned/1t", n), &m, |b, m| {
            b.iter(|| litho_parallel::with_threads(1, || fft2(m)));
        });
        // On a single-core runner this id would collide with "planned/1t",
        // which real criterion rejects.
        if threads > 1 {
            group.bench_with_input(
                BenchmarkId::new(format!("planned/{threads}t"), n),
                &m,
                |b, m| {
                    b.iter(|| litho_parallel::with_threads(threads, || fft2(m)));
                },
            );
        }
        let plan = FftPlan::new(n);
        group.bench_with_input(BenchmarkId::new("explicit_plan", n), &m, |b, m| {
            b.iter(|| plan.forward2(m));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft2);
criterion_main!(benches);
