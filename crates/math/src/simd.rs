//! Runtime SIMD backend and precision selection, plus the explicit AVX2
//! kernels behind [`crate::soa`].
//!
//! The workspace builds with `-C target-cpu=native`, which lets LLVM
//! autovectorize the scalar split-complex loops — but rustc never contracts
//! `a*b + c` into a fused multiply-add on its own, so the remaining headroom
//! on AVX2+FMA hardware is explicit `std::arch` intrinsics. This module owns
//! that dispatch decision:
//!
//! * [`SimdBackend`] — `Scalar` (the pinned bit-identical reference; exactly
//!   the pre-SIMD arithmetic in the same order) or `Avx2` (explicit 256-bit
//!   FMA kernels). Resolved once per process from `NITHO_SIMD`
//!   (`scalar|avx2|auto`, default `auto` = use AVX2 when the CPU has
//!   AVX2+FMA).
//! * [`Precision`] — `F64` (default) or `F32`, resolved from
//!   `NITHO_PRECISION` (`f64|f32`). Consumed by the frozen-inference paths
//!   (CMLP inference, SOCS |field|² accumulate); training and the rigorous
//!   Hopkins reference always stay `f64`.
//!
//! Because FMA fuses the multiply and add into one rounding, the AVX2
//! kernels are *not* bit-identical to scalar: the contract (pinned by the
//! `simd_equivalence` proptests) is agreement within 1e-12 relative, with
//! the scalar backend remaining the bit-exact determinism reference.
//!
//! # Safety
//!
//! The `avx2` submodule holds the repo's only `unsafe` code. Every function
//! there is an `unsafe fn` whose single obligation is **the caller proved
//! AVX2+FMA are available** (via [`simd_backend`]`() == Avx2`, which implies
//! [`avx2_available`], or a direct feature check). Slice-length agreement is
//! re-asserted inside each kernel, so out-of-bounds access is impossible
//! even on contract violation — the only UB hazard is executing AVX2/FMA
//! instructions on a CPU without them.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation the fused SoA entry points dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdBackend {
    /// Portable scalar loops — the bit-identical pinned reference.
    Scalar,
    /// Explicit 256-bit AVX2+FMA intrinsics (x86_64 only, runtime-detected).
    Avx2,
}

impl SimdBackend {
    /// Stable lowercase label for logs, metrics and `/healthz`.
    pub fn label(self) -> &'static str {
        match self {
            SimdBackend::Scalar => "scalar",
            SimdBackend::Avx2 => "avx2",
        }
    }
}

/// Arithmetic width of the frozen-inference paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// Double precision — the default; bit-compatible with every
    /// pre-existing pin.
    F64,
    /// Single precision — opt-in; validated against the paper's accuracy
    /// bar (PSNR > 24 dB, mIOU > 88%) rather than bit-identity.
    F32,
}

impl Precision {
    /// Stable lowercase label for logs, metrics and `/healthz`.
    pub fn label(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }
}

const UNRESOLVED: u8 = 0;
const BACKEND_SCALAR: u8 = 1;
const BACKEND_AVX2: u8 = 2;
const PRECISION_F64: u8 = 1;
const PRECISION_F32: u8 = 2;

static BACKEND: AtomicU8 = AtomicU8::new(UNRESOLVED);
static PRECISION: AtomicU8 = AtomicU8::new(UNRESOLVED);

/// `true` when this process can execute the AVX2+FMA kernels.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The process-wide SIMD backend, resolved once from `NITHO_SIMD`.
///
/// # Panics
///
/// Panics on first call if `NITHO_SIMD` is set to an unknown value, or to
/// `avx2` on hardware without AVX2+FMA.
#[inline]
pub fn simd_backend() -> SimdBackend {
    match BACKEND.load(Ordering::Relaxed) {
        BACKEND_SCALAR => SimdBackend::Scalar,
        BACKEND_AVX2 => SimdBackend::Avx2,
        _ => resolve_backend(),
    }
}

#[cold]
fn resolve_backend() -> SimdBackend {
    let requested = std::env::var("NITHO_SIMD").unwrap_or_default();
    let backend = match requested.as_str() {
        "scalar" => SimdBackend::Scalar,
        "avx2" => {
            assert!(
                avx2_available(),
                "NITHO_SIMD=avx2 requested but this CPU/arch lacks AVX2+FMA; \
                 use NITHO_SIMD=auto or NITHO_SIMD=scalar"
            );
            SimdBackend::Avx2
        }
        "" | "auto" => {
            if avx2_available() {
                SimdBackend::Avx2
            } else {
                SimdBackend::Scalar
            }
        }
        other => panic!("NITHO_SIMD must be one of scalar|avx2|auto, got {other:?}"),
    };
    force_simd_backend(backend);
    backend
}

/// Overrides the resolved SIMD backend for the rest of the process.
///
/// Intended for benches and equivalence tests that A/B the backends in one
/// process; production code should rely on `NITHO_SIMD`.
///
/// # Panics
///
/// Panics if `Avx2` is forced on hardware without AVX2+FMA (forcing an
/// unexecutable backend would be undefined behaviour at the first kernel).
pub fn force_simd_backend(backend: SimdBackend) {
    let tag = match backend {
        SimdBackend::Scalar => BACKEND_SCALAR,
        SimdBackend::Avx2 => {
            assert!(
                avx2_available(),
                "cannot force the AVX2 backend: this CPU/arch lacks AVX2+FMA"
            );
            BACKEND_AVX2
        }
    };
    BACKEND.store(tag, Ordering::Relaxed);
}

/// The process-wide inference precision, resolved once from
/// `NITHO_PRECISION`.
///
/// # Panics
///
/// Panics on first call if `NITHO_PRECISION` is set to an unknown value.
#[inline]
pub fn precision() -> Precision {
    match PRECISION.load(Ordering::Relaxed) {
        PRECISION_F64 => Precision::F64,
        PRECISION_F32 => Precision::F32,
        _ => resolve_precision(),
    }
}

#[cold]
fn resolve_precision() -> Precision {
    let requested = std::env::var("NITHO_PRECISION").unwrap_or_default();
    let precision = match requested.as_str() {
        "" | "f64" => Precision::F64,
        "f32" => Precision::F32,
        other => panic!("NITHO_PRECISION must be one of f64|f32, got {other:?}"),
    };
    force_precision(precision);
    precision
}

/// Overrides the resolved inference precision for the rest of the process.
///
/// Intended for the accuracy-bar harness and benches; production code
/// should rely on `NITHO_PRECISION`.
pub fn force_precision(precision: Precision) {
    let tag = match precision {
        Precision::F64 => PRECISION_F64,
        Precision::F32 => PRECISION_F32,
    };
    PRECISION.store(tag, Ordering::Relaxed);
}

/// Explicit AVX2+FMA kernels. See the module-level safety discussion.
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    #![deny(unsafe_op_in_unsafe_fn)]

    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_add_ps, _mm256_fmadd_pd, _mm256_fmadd_ps, _mm256_fmsub_pd,
        _mm256_fmsub_ps, _mm256_fnmadd_pd, _mm256_fnmadd_ps, _mm256_loadu_pd, _mm256_loadu_ps,
        _mm256_mul_pd, _mm256_mul_ps, _mm256_set1_pd, _mm256_set1_ps, _mm256_storeu_pd,
        _mm256_storeu_ps, _mm256_sub_pd, _mm256_sub_ps,
    };

    /// f64 lanes per 256-bit register.
    const L64: usize = 4;
    /// f32 lanes per 256-bit register.
    const L32: usize = 8;

    macro_rules! assert_lengths {
        ($kernel:literal, $n:expr, $($name:literal = $slice:expr),+ $(,)?) => {
            $(assert!(
                $slice.len() == $n,
                concat!("soa::", $kernel, ": slice `", $name,
                        "` has length {} but expected {}"),
                $slice.len(),
                $n,
            );)+
        };
    }

    /// `out ← a ⊙ b` (element-wise complex product), AVX2+FMA.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 and FMA ([`super::avx2_available`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn mul_into(
        ar: &[f64],
        ai: &[f64],
        br: &[f64],
        bi: &[f64],
        out_re: &mut [f64],
        out_im: &mut [f64],
    ) {
        let n = ar.len();
        assert_lengths!(
            "mul_into",
            n,
            "ai" = ai,
            "br" = br,
            "bi" = bi,
            "out_re" = out_re,
            "out_im" = out_im
        );
        let mut k = 0;
        while k + L64 <= n {
            // SAFETY: `k + L64 <= n` bounds every 4-lane load and store, and
            // all six slices have length `n` (asserted above).
            unsafe {
                let are = _mm256_loadu_pd(ar.as_ptr().add(k));
                let aim = _mm256_loadu_pd(ai.as_ptr().add(k));
                let bre = _mm256_loadu_pd(br.as_ptr().add(k));
                let bim = _mm256_loadu_pd(bi.as_ptr().add(k));
                let re = _mm256_fmsub_pd(are, bre, _mm256_mul_pd(aim, bim));
                let im = _mm256_fmadd_pd(are, bim, _mm256_mul_pd(aim, bre));
                _mm256_storeu_pd(out_re.as_mut_ptr().add(k), re);
                _mm256_storeu_pd(out_im.as_mut_ptr().add(k), im);
            }
            k += L64;
        }
        while k < n {
            out_re[k] = ar[k] * br[k] - ai[k] * bi[k];
            out_im[k] = ar[k] * bi[k] + ai[k] * br[k];
            k += 1;
        }
    }

    /// f32 variant of [`mul_into`].
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 and FMA ([`super::avx2_available`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn mul_into_f32(
        ar: &[f32],
        ai: &[f32],
        br: &[f32],
        bi: &[f32],
        out_re: &mut [f32],
        out_im: &mut [f32],
    ) {
        let n = ar.len();
        assert_lengths!(
            "mul_into_f32",
            n,
            "ai" = ai,
            "br" = br,
            "bi" = bi,
            "out_re" = out_re,
            "out_im" = out_im
        );
        let mut k = 0;
        while k + L32 <= n {
            // SAFETY: `k + L32 <= n` bounds every 8-lane load and store, and
            // all six slices have length `n` (asserted above).
            unsafe {
                let are = _mm256_loadu_ps(ar.as_ptr().add(k));
                let aim = _mm256_loadu_ps(ai.as_ptr().add(k));
                let bre = _mm256_loadu_ps(br.as_ptr().add(k));
                let bim = _mm256_loadu_ps(bi.as_ptr().add(k));
                let re = _mm256_fmsub_ps(are, bre, _mm256_mul_ps(aim, bim));
                let im = _mm256_fmadd_ps(are, bim, _mm256_mul_ps(aim, bre));
                _mm256_storeu_ps(out_re.as_mut_ptr().add(k), re);
                _mm256_storeu_ps(out_im.as_mut_ptr().add(k), im);
            }
            k += L32;
        }
        while k < n {
            out_re[k] = ar[k] * br[k] - ai[k] * bi[k];
            out_im[k] = ar[k] * bi[k] + ai[k] * br[k];
            k += 1;
        }
    }

    /// `y ← y + α·x` for a complex scalar `α`, AVX2+FMA.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 and FMA ([`super::avx2_available`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy_in_place(
        alpha_re: f64,
        alpha_im: f64,
        xr: &[f64],
        xi: &[f64],
        yr: &mut [f64],
        yi: &mut [f64],
    ) {
        let n = xr.len();
        assert_lengths!("axpy_in_place", n, "xi" = xi, "yr" = yr, "yi" = yi);
        let va_re = _mm256_set1_pd(alpha_re);
        let va_im = _mm256_set1_pd(alpha_im);
        let mut k = 0;
        while k + L64 <= n {
            // SAFETY: `k + L64 <= n` bounds every 4-lane load and store, and
            // all four slices have length `n` (asserted above).
            unsafe {
                let xre = _mm256_loadu_pd(xr.as_ptr().add(k));
                let xim = _mm256_loadu_pd(xi.as_ptr().add(k));
                let yre = _mm256_loadu_pd(yr.as_ptr().add(k));
                let yim = _mm256_loadu_pd(yi.as_ptr().add(k));
                let re = _mm256_fnmadd_pd(va_im, xim, _mm256_fmadd_pd(va_re, xre, yre));
                let im = _mm256_fmadd_pd(va_im, xre, _mm256_fmadd_pd(va_re, xim, yim));
                _mm256_storeu_pd(yr.as_mut_ptr().add(k), re);
                _mm256_storeu_pd(yi.as_mut_ptr().add(k), im);
            }
            k += L64;
        }
        while k < n {
            yr[k] += alpha_re * xr[k] - alpha_im * xi[k];
            yi[k] += alpha_re * xi[k] + alpha_im * xr[k];
            k += 1;
        }
    }

    /// f32 variant of [`axpy_in_place`].
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 and FMA ([`super::avx2_available`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy_in_place_f32(
        alpha_re: f32,
        alpha_im: f32,
        xr: &[f32],
        xi: &[f32],
        yr: &mut [f32],
        yi: &mut [f32],
    ) {
        let n = xr.len();
        assert_lengths!("axpy_in_place_f32", n, "xi" = xi, "yr" = yr, "yi" = yi);
        let va_re = _mm256_set1_ps(alpha_re);
        let va_im = _mm256_set1_ps(alpha_im);
        let mut k = 0;
        while k + L32 <= n {
            // SAFETY: `k + L32 <= n` bounds every 8-lane load and store, and
            // all four slices have length `n` (asserted above).
            unsafe {
                let xre = _mm256_loadu_ps(xr.as_ptr().add(k));
                let xim = _mm256_loadu_ps(xi.as_ptr().add(k));
                let yre = _mm256_loadu_ps(yr.as_ptr().add(k));
                let yim = _mm256_loadu_ps(yi.as_ptr().add(k));
                let re = _mm256_fnmadd_ps(va_im, xim, _mm256_fmadd_ps(va_re, xre, yre));
                let im = _mm256_fmadd_ps(va_im, xre, _mm256_fmadd_ps(va_re, xim, yim));
                _mm256_storeu_ps(yr.as_mut_ptr().add(k), re);
                _mm256_storeu_ps(yi.as_mut_ptr().add(k), im);
            }
            k += L32;
        }
        while k < n {
            yr[k] += alpha_re * xr[k] - alpha_im * xi[k];
            yi[k] += alpha_re * xi[k] + alpha_im * xr[k];
            k += 1;
        }
    }

    /// Scales both planes by a real factor in place, AVX2.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 and FMA ([`super::avx2_available`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn scale_in_place(re: &mut [f64], im: &mut [f64], s: f64) {
        let vs = _mm256_set1_pd(s);
        for plane in [re, im] {
            let n = plane.len();
            let mut k = 0;
            while k + L64 <= n {
                // SAFETY: `k + L64 <= n` bounds the 4-lane load and store.
                unsafe {
                    let v = _mm256_loadu_pd(plane.as_ptr().add(k));
                    _mm256_storeu_pd(plane.as_mut_ptr().add(k), _mm256_mul_pd(v, vs));
                }
                k += L64;
            }
            while k < n {
                plane[k] *= s;
                k += 1;
            }
        }
    }

    /// f32 variant of [`scale_in_place`].
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 and FMA ([`super::avx2_available`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn scale_in_place_f32(re: &mut [f32], im: &mut [f32], s: f32) {
        let vs = _mm256_set1_ps(s);
        for plane in [re, im] {
            let n = plane.len();
            let mut k = 0;
            while k + L32 <= n {
                // SAFETY: `k + L32 <= n` bounds the 8-lane load and store.
                unsafe {
                    let v = _mm256_loadu_ps(plane.as_ptr().add(k));
                    _mm256_storeu_ps(plane.as_mut_ptr().add(k), _mm256_mul_ps(v, vs));
                }
                k += L32;
            }
            while k < n {
                plane[k] *= s;
                k += 1;
            }
        }
    }

    /// `acc[k] += re[k]² + im[k]²`, AVX2+FMA.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 and FMA ([`super::avx2_available`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn accumulate_abs_sq(re: &[f64], im: &[f64], acc: &mut [f64]) {
        let n = re.len();
        assert_lengths!("accumulate_abs_sq", n, "im" = im, "acc" = acc);
        let mut k = 0;
        while k + L64 <= n {
            // SAFETY: `k + L64 <= n` bounds every 4-lane load and store, and
            // all three slices have length `n` (asserted above).
            unsafe {
                let vre = _mm256_loadu_pd(re.as_ptr().add(k));
                let vim = _mm256_loadu_pd(im.as_ptr().add(k));
                let vacc = _mm256_loadu_pd(acc.as_ptr().add(k));
                let sum = _mm256_fmadd_pd(vre, vre, _mm256_fmadd_pd(vim, vim, vacc));
                _mm256_storeu_pd(acc.as_mut_ptr().add(k), sum);
            }
            k += L64;
        }
        while k < n {
            acc[k] += re[k] * re[k] + im[k] * im[k];
            k += 1;
        }
    }

    /// f32-field variant of [`accumulate_abs_sq`]: the accumulator stays
    /// `f32` (the caller folds into `f64` once per plane).
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 and FMA ([`super::avx2_available`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn accumulate_abs_sq_f32(re: &[f32], im: &[f32], acc: &mut [f32]) {
        let n = re.len();
        assert_lengths!("accumulate_abs_sq_f32", n, "im" = im, "acc" = acc);
        let mut k = 0;
        while k + L32 <= n {
            // SAFETY: `k + L32 <= n` bounds every 8-lane load and store, and
            // all three slices have length `n` (asserted above).
            unsafe {
                let vre = _mm256_loadu_ps(re.as_ptr().add(k));
                let vim = _mm256_loadu_ps(im.as_ptr().add(k));
                let vacc = _mm256_loadu_ps(acc.as_ptr().add(k));
                let sum = _mm256_fmadd_ps(vre, vre, _mm256_fmadd_ps(vim, vim, vacc));
                _mm256_storeu_ps(acc.as_mut_ptr().add(k), sum);
            }
            k += L32;
        }
        while k < n {
            acc[k] += re[k] * re[k] + im[k] * im[k];
            k += 1;
        }
    }

    /// One Stockham radix-2 butterfly over contiguous runs:
    /// `d0 ← a + b`, `d1 ← (a − b)·w` with a broadcast twiddle `w`, AVX2+FMA.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 and FMA ([`super::avx2_available`]).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn stockham_butterfly(
        ar: &[f64],
        ai: &[f64],
        br: &[f64],
        bi: &[f64],
        d0r: &mut [f64],
        d0i: &mut [f64],
        d1r: &mut [f64],
        d1i: &mut [f64],
        wr: f64,
        wi: f64,
    ) {
        let n = ar.len();
        assert_lengths!(
            "stockham_butterfly",
            n,
            "ai" = ai,
            "br" = br,
            "bi" = bi,
            "d0r" = d0r,
            "d0i" = d0i,
            "d1r" = d1r,
            "d1i" = d1i
        );
        let vwr = _mm256_set1_pd(wr);
        let vwi = _mm256_set1_pd(wi);
        let mut k = 0;
        while k + L64 <= n {
            // SAFETY: `k + L64 <= n` bounds every 4-lane load and store, and
            // all eight slices have length `n` (asserted above).
            unsafe {
                let are = _mm256_loadu_pd(ar.as_ptr().add(k));
                let aim = _mm256_loadu_pd(ai.as_ptr().add(k));
                let bre = _mm256_loadu_pd(br.as_ptr().add(k));
                let bim = _mm256_loadu_pd(bi.as_ptr().add(k));
                _mm256_storeu_pd(d0r.as_mut_ptr().add(k), _mm256_add_pd(are, bre));
                _mm256_storeu_pd(d0i.as_mut_ptr().add(k), _mm256_add_pd(aim, bim));
                let tre = _mm256_sub_pd(are, bre);
                let tim = _mm256_sub_pd(aim, bim);
                let re = _mm256_fmsub_pd(tre, vwr, _mm256_mul_pd(tim, vwi));
                let im = _mm256_fmadd_pd(tre, vwi, _mm256_mul_pd(tim, vwr));
                _mm256_storeu_pd(d1r.as_mut_ptr().add(k), re);
                _mm256_storeu_pd(d1i.as_mut_ptr().add(k), im);
            }
            k += L64;
        }
        while k < n {
            let tre = ar[k] - br[k];
            let tim = ai[k] - bi[k];
            d0r[k] = ar[k] + br[k];
            d0i[k] = ai[k] + bi[k];
            d1r[k] = tre * wr - tim * wi;
            d1i[k] = tre * wi + tim * wr;
            k += 1;
        }
    }

    /// f32 variant of [`stockham_butterfly`].
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 and FMA ([`super::avx2_available`]).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn stockham_butterfly_f32(
        ar: &[f32],
        ai: &[f32],
        br: &[f32],
        bi: &[f32],
        d0r: &mut [f32],
        d0i: &mut [f32],
        d1r: &mut [f32],
        d1i: &mut [f32],
        wr: f32,
        wi: f32,
    ) {
        let n = ar.len();
        assert_lengths!(
            "stockham_butterfly_f32",
            n,
            "ai" = ai,
            "br" = br,
            "bi" = bi,
            "d0r" = d0r,
            "d0i" = d0i,
            "d1r" = d1r,
            "d1i" = d1i
        );
        let vwr = _mm256_set1_ps(wr);
        let vwi = _mm256_set1_ps(wi);
        let mut k = 0;
        while k + L32 <= n {
            // SAFETY: `k + L32 <= n` bounds every 8-lane load and store, and
            // all eight slices have length `n` (asserted above).
            unsafe {
                let are = _mm256_loadu_ps(ar.as_ptr().add(k));
                let aim = _mm256_loadu_ps(ai.as_ptr().add(k));
                let bre = _mm256_loadu_ps(br.as_ptr().add(k));
                let bim = _mm256_loadu_ps(bi.as_ptr().add(k));
                _mm256_storeu_ps(d0r.as_mut_ptr().add(k), _mm256_add_ps(are, bre));
                _mm256_storeu_ps(d0i.as_mut_ptr().add(k), _mm256_add_ps(aim, bim));
                let tre = _mm256_sub_ps(are, bre);
                let tim = _mm256_sub_ps(aim, bim);
                let re = _mm256_fmsub_ps(tre, vwr, _mm256_mul_ps(tim, vwi));
                let im = _mm256_fmadd_ps(tre, vwi, _mm256_mul_ps(tim, vwr));
                _mm256_storeu_ps(d1r.as_mut_ptr().add(k), re);
                _mm256_storeu_ps(d1i.as_mut_ptr().add(k), im);
            }
            k += L32;
        }
        while k < n {
            let tre = ar[k] - br[k];
            let tim = ai[k] - bi[k];
            d0r[k] = ar[k] + br[k];
            d0i[k] = ai[k] + bi[k];
            d1r[k] = tre * wr - tim * wi;
            d1i[k] = tre * wi + tim * wr;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(SimdBackend::Scalar.label(), "scalar");
        assert_eq!(SimdBackend::Avx2.label(), "avx2");
        assert_eq!(Precision::F64.label(), "f64");
        assert_eq!(Precision::F32.label(), "f32");
    }

    #[test]
    fn backend_resolves_to_a_supported_backend() {
        let backend = simd_backend();
        if backend == SimdBackend::Avx2 {
            assert!(avx2_available());
        }
        // Resolution is sticky: a second read agrees.
        assert_eq!(simd_backend(), backend);
    }

    #[test]
    fn precision_defaults_resolve() {
        // Whatever the environment picked, the resolution is sticky.
        let p = precision();
        assert_eq!(precision(), p);
    }
}
