//! A from-scratch double-precision complex number.
//!
//! The workspace deliberately avoids external numerics crates, so the complex
//! type used by the FFT, the Hopkins imaging model and the complex-valued
//! neural network all live here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` with `f64` components.
///
/// The type is `Copy` and implements the full set of arithmetic operators as
/// well as mixed `Complex64 ⊕ f64` operations, which keeps the numerical code
/// readable.
///
/// # Example
///
/// ```
/// use litho_math::Complex64;
///
/// let a = Complex64::new(1.0, 2.0);
/// let b = Complex64::new(3.0, -1.0);
/// assert_eq!(a * b, Complex64::new(5.0, 5.0));
/// assert_eq!((a * a.conj()).re, a.abs_sq());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    ///
    /// ```
    /// use litho_math::Complex64;
    /// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-12);
    /// assert!((z.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Euler's formula: `e^{iθ}` for a real phase `θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate `re - i·im`.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²` (avoids the square root of [`abs`]).
    ///
    /// [`abs`]: Complex64::abs
    #[inline]
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns NaN components when `self` is zero, mirroring `1.0 / 0.0`
    /// semantics for floats.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.abs_sq();
        Self::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Raises the number to a real power using polar form.
    #[inline]
    pub fn powf(self, p: f64) -> Self {
        if self == Self::ZERO {
            return Self::ZERO;
        }
        Self::from_polar(self.abs().powf(p), self.arg() * p)
    }

    /// Multiplies by the imaginary unit (a 90° rotation), cheaper than a full
    /// complex multiply.
    #[inline]
    pub fn mul_i(self) -> Self {
        Self::new(-self.im, self.re)
    }

    /// Scales both components by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// Returns `true` when either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl From<(f64, f64)> for Complex64 {
    fn from((re, im): (f64, f64)) -> Self {
        Self::new(re, im)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal is the intent
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.recip()
    }
}

impl Add<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Add<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        rhs + self
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |acc, z| acc + z)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |acc, z| acc + *z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn constructors_and_constants() {
        assert_eq!(Complex64::ZERO + Complex64::ONE, Complex64::new(1.0, 0.0));
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
        assert_eq!(Complex64::from_real(2.5).im, 0.0);
        assert_eq!(Complex64::from((1.0, 2.0)), Complex64::new(1.0, 2.0));
        assert_eq!(Complex64::from(3.0), Complex64::new(3.0, 0.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.25, 4.0);
        assert!(close(a + b - b, a, 1e-12));
        assert!(close(a * b / b, a, 1e-12));
        assert!(close(a * a.recip(), Complex64::ONE, 1e-12));
        assert!(close(-(-a), a, 0.0));
    }

    #[test]
    fn conjugate_and_magnitude() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.abs_sq(), 25.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        assert!(close(z * z.conj(), Complex64::from_real(25.0), 1e-12));
    }

    #[test]
    fn exp_and_cis() {
        let theta = 1.1;
        assert!(close(
            Complex64::cis(theta),
            Complex64::new(0.0, theta).exp(),
            1e-12
        ));
        // e^{iπ} = -1
        assert!(close(
            Complex64::cis(std::f64::consts::PI),
            Complex64::new(-1.0, 0.0),
            1e-12
        ));
    }

    #[test]
    fn sqrt_and_powf() {
        let z = Complex64::new(-4.0, 0.0);
        let r = z.sqrt();
        assert!(close(r * r, z, 1e-12));
        assert!(close(z.powf(0.5), r, 1e-12));
        assert_eq!(Complex64::ZERO.powf(2.0), Complex64::ZERO);
    }

    #[test]
    fn mul_i_is_rotation() {
        let z = Complex64::new(2.0, 3.0);
        assert_eq!(z.mul_i(), z * Complex64::I);
    }

    #[test]
    fn mixed_real_operations() {
        let z = Complex64::new(1.0, 1.0);
        assert_eq!(z + 1.0, Complex64::new(2.0, 1.0));
        assert_eq!(z - 1.0, Complex64::new(0.0, 1.0));
        assert_eq!(z * 2.0, Complex64::new(2.0, 2.0));
        assert_eq!(z / 2.0, Complex64::new(0.5, 0.5));
        assert_eq!(2.0 * z, z * 2.0);
        assert_eq!(1.0 + z, z + 1.0);
    }

    #[test]
    fn assign_operators() {
        let mut z = Complex64::new(1.0, 2.0);
        z += Complex64::ONE;
        z -= Complex64::I;
        z *= Complex64::new(0.0, 1.0);
        z /= Complex64::new(0.0, 1.0);
        z *= 2.0;
        assert_eq!(z, Complex64::new(4.0, 2.0));
    }

    #[test]
    fn sum_iterator() {
        let values = [Complex64::ONE, Complex64::I, Complex64::new(1.0, 1.0)];
        let owned: Complex64 = values.iter().copied().sum();
        let borrowed: Complex64 = values.iter().sum();
        assert_eq!(owned, Complex64::new(2.0, 2.0));
        assert_eq!(owned, borrowed);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn nan_and_finite_checks() {
        assert!(Complex64::new(f64::NAN, 0.0).is_nan());
        assert!(!Complex64::ONE.is_nan());
        assert!(Complex64::ONE.is_finite());
        assert!(!Complex64::new(f64::INFINITY, 0.0).is_finite());
    }

    proptest! {
        #[test]
        fn prop_mul_commutative(ar in -1e3..1e3f64, ai in -1e3..1e3f64,
                                br in -1e3..1e3f64, bi in -1e3..1e3f64) {
            let a = Complex64::new(ar, ai);
            let b = Complex64::new(br, bi);
            prop_assert!(close(a * b, b * a, 1e-9));
        }

        #[test]
        fn prop_distributive(ar in -1e2..1e2f64, ai in -1e2..1e2f64,
                             br in -1e2..1e2f64, bi in -1e2..1e2f64,
                             cr in -1e2..1e2f64, ci in -1e2..1e2f64) {
            let a = Complex64::new(ar, ai);
            let b = Complex64::new(br, bi);
            let c = Complex64::new(cr, ci);
            prop_assert!(close(a * (b + c), a * b + a * c, 1e-7));
        }

        #[test]
        fn prop_conj_multiplicative(ar in -1e3..1e3f64, ai in -1e3..1e3f64,
                                    br in -1e3..1e3f64, bi in -1e3..1e3f64) {
            let a = Complex64::new(ar, ai);
            let b = Complex64::new(br, bi);
            prop_assert!(close((a * b).conj(), a.conj() * b.conj(), 1e-6));
        }

        #[test]
        fn prop_abs_multiplicative(ar in -1e3..1e3f64, ai in -1e3..1e3f64,
                                   br in -1e3..1e3f64, bi in -1e3..1e3f64) {
            let a = Complex64::new(ar, ai);
            let b = Complex64::new(br, bi);
            prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-6 * (1.0 + a.abs() * b.abs()));
        }
    }
}
