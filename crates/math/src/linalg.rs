//! Dense linear-algebra kernels: matrix products, Gram–Schmidt QR and small
//! helpers shared by the eigensolvers and the neural-network layers.

use crate::complex::Complex64;
use crate::matrix::{ComplexMatrix, Matrix, RealMatrix};

/// Real matrix product `A · B`.
///
/// # Panics
///
/// Panics if `A.cols() != B.rows()`.
///
/// ```
/// use litho_math::{RealMatrix, linalg::matmul};
/// let a = RealMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let id = RealMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
/// assert_eq!(matmul(&a, &id), a);
/// ```
pub fn matmul(a: &RealMatrix, b: &RealMatrix) -> RealMatrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = RealMatrix::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let aip = a[(i, p)];
            if aip == 0.0 {
                continue;
            }
            for j in 0..n {
                out[(i, j)] += aip * b[(p, j)];
            }
        }
    }
    out
}

/// Complex matrix product `A · B`.
///
/// # Panics
///
/// Panics if `A.cols() != B.rows()`.
pub fn cmatmul(a: &ComplexMatrix, b: &ComplexMatrix) -> ComplexMatrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = ComplexMatrix::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let aip = a[(i, p)];
            if aip == Complex64::ZERO {
                continue;
            }
            for j in 0..n {
                out[(i, j)] += aip * b[(p, j)];
            }
        }
    }
    out
}

/// Complex matrix–vector product `A · x`.
///
/// # Panics
///
/// Panics if `A.cols() != x.len()`.
pub fn cmatvec(a: &ComplexMatrix, x: &[Complex64]) -> Vec<Complex64> {
    assert_eq!(a.cols(), x.len(), "dimension mismatch in matvec");
    (0..a.rows())
        .map(|i| {
            a.row(i)
                .iter()
                .zip(x.iter())
                .map(|(&aij, &xj)| aij * xj)
                .sum()
        })
        .collect()
}

/// Hermitian inner product `⟨x, y⟩ = Σ conj(xᵢ)·yᵢ`.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn cdot(x: &[Complex64], y: &[Complex64]) -> Complex64 {
    assert_eq!(x.len(), y.len(), "dimension mismatch in dot product");
    x.iter().zip(y.iter()).map(|(&a, &b)| a.conj() * b).sum()
}

/// Euclidean norm of a complex vector.
pub fn cnorm(x: &[Complex64]) -> f64 {
    x.iter().map(|z| z.abs_sq()).sum::<f64>().sqrt()
}

/// Identity matrix of size `n × n`.
pub fn identity(n: usize) -> RealMatrix {
    RealMatrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
}

/// Complex identity matrix of size `n × n`.
pub fn cidentity(n: usize) -> ComplexMatrix {
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            Complex64::ONE
        } else {
            Complex64::ZERO
        }
    })
}

/// Orthonormalizes the columns of `a` in place using modified Gram–Schmidt
/// with the Hermitian inner product.
///
/// Columns that become numerically zero (linearly dependent on previous
/// columns) are replaced by zero vectors; the function returns the number of
/// independent columns kept.
pub fn gram_schmidt_columns(a: &mut ComplexMatrix) -> usize {
    let (rows, cols) = a.shape();
    let mut kept = 0;
    for j in 0..cols {
        let mut col: Vec<Complex64> = (0..rows).map(|i| a[(i, j)]).collect();
        for p in 0..j {
            let prev: Vec<Complex64> = (0..rows).map(|i| a[(i, p)]).collect();
            let proj = cdot(&prev, &col);
            for i in 0..rows {
                col[i] -= prev[i] * proj;
            }
        }
        let norm = cnorm(&col);
        if norm > 1e-12 {
            kept += 1;
            for i in 0..rows {
                a[(i, j)] = col[i] / norm;
            }
        } else {
            for i in 0..rows {
                a[(i, j)] = Complex64::ZERO;
            }
        }
    }
    kept
}

/// Builds the real symmetric embedding of a Hermitian matrix `H = A + iB`:
/// `[[A, -B], [B, A]]`.
///
/// Every eigenvalue of `H` appears twice in the embedding; eigenvectors
/// `[u; v]` of the embedding map to complex eigenvectors `u + iv` of `H`.
///
/// # Panics
///
/// Panics if `h` is not square.
pub fn hermitian_real_embedding(h: &ComplexMatrix) -> RealMatrix {
    assert_eq!(h.rows(), h.cols(), "matrix must be square");
    let n = h.rows();
    RealMatrix::from_fn(2 * n, 2 * n, |i, j| {
        let (bi, bj) = (i / n, j / n);
        let z = h[(i % n, j % n)];
        match (bi, bj) {
            (0, 0) | (1, 1) => z.re,
            (0, 1) => -z.im,
            (1, 0) => z.im,
            _ => unreachable!(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn real_matmul_identity_and_associativity() {
        let a = RealMatrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let b = RealMatrix::from_fn(3, 3, |i, j| (i as f64) - (j as f64));
        let id = identity(3);
        assert_eq!(matmul(&a, &id), a);
        assert_eq!(matmul(&id, &a), a);
        let c = RealMatrix::from_fn(3, 3, |i, j| ((i + 1) * (j + 2)) as f64);
        let lhs = matmul(&matmul(&a, &b), &c);
        let rhs = matmul(&a, &matmul(&b, &c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn complex_matmul_matches_manual() {
        let a = ComplexMatrix::from_fn(2, 2, |i, j| Complex64::new((i + j) as f64, i as f64));
        let id = cidentity(2);
        assert_eq!(cmatmul(&a, &id), a);
        let b = a.adjoint();
        let prod = cmatmul(&a, &b);
        // (A A^H) is Hermitian.
        assert!((prod[(0, 1)] - prod[(1, 0)].conj()).abs() < 1e-12);
    }

    #[test]
    fn matvec_and_dot() {
        let a = cidentity(3).scale(Complex64::new(2.0, 0.0));
        let x = vec![Complex64::ONE, Complex64::I, Complex64::new(1.0, 1.0)];
        let y = cmatvec(&a, &x);
        assert_eq!(y[2], Complex64::new(2.0, 2.0));
        let d = cdot(&x, &x);
        assert!((d.re - 4.0).abs() < 1e-12);
        assert!(d.im.abs() < 1e-12);
        assert!((cnorm(&x) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gram_schmidt_produces_orthonormal_columns() {
        let mut rng = crate::rng::DeterministicRng::new(42);
        let mut a = ComplexMatrix::from_fn(4, 3, |_, _| rng.normal_complex(0.0, 1.0));
        let kept = gram_schmidt_columns(&mut a);
        assert_eq!(kept, 3);
        for p in 0..3 {
            for q in 0..3 {
                let cp: Vec<_> = (0..4).map(|i| a[(i, p)]).collect();
                let cq: Vec<_> = (0..4).map(|i| a[(i, q)]).collect();
                let d = cdot(&cp, &cq);
                let expected = if p == q { 1.0 } else { 0.0 };
                assert!((d.re - expected).abs() < 1e-10, "p={p} q={q} d={d}");
                assert!(d.im.abs() < 1e-10);
            }
        }
    }

    #[test]
    fn gram_schmidt_detects_dependent_columns() {
        // Second column is a multiple of the first.
        let mut a = ComplexMatrix::from_fn(3, 2, |i, j| {
            let base = Complex64::new(1.0 + i as f64, 0.5 * i as f64);
            if j == 0 {
                base
            } else {
                base * Complex64::new(2.0, 1.0)
            }
        });
        let kept = gram_schmidt_columns(&mut a);
        assert_eq!(kept, 1);
    }

    #[test]
    fn embedding_is_symmetric() {
        let h = ComplexMatrix::from_fn(3, 3, |i, j| {
            if i == j {
                Complex64::from_real((i + 1) as f64)
            } else {
                Complex64::new(0.3, if i < j { 0.7 } else { -0.7 })
            }
        });
        let m = hermitian_real_embedding(&h);
        assert_eq!(m.shape(), (6, 6));
        for i in 0..6 {
            for j in 0..6 {
                assert!((m[(i, j)] - m[(j, i)]).abs() < 1e-12);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_matmul_distributes_over_addition(n in 1usize..4) {
            let a = RealMatrix::from_fn(n, n, |i, j| (i as f64) + 0.5 * j as f64);
            let b = RealMatrix::from_fn(n, n, |i, j| (j as f64) - 0.25 * i as f64);
            let c = RealMatrix::from_fn(n, n, |i, j| ((i * j) as f64).sin());
            let lhs = matmul(&a, &(&b + &c));
            let rhs = &matmul(&a, &b) + &matmul(&a, &c);
            for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }
}
