//! Grid, cropping and padding helpers shared by the FFT and optics crates.
//!
//! The Hopkins imaging pipeline constantly moves between a full-resolution
//! mask spectrum and a small, centered "kernel-sized" spectrum (Algorithm 1,
//! lines 6–7 of the paper), so the centered crop / zero-pad pair lives here
//! and is unit-tested once for every consumer.

use crate::complex::Complex64;
use crate::matrix::{ComplexMatrix, Matrix, RealMatrix};

/// Returns `count` evenly spaced values from `start` to `end` inclusive.
///
/// # Panics
///
/// Panics if `count == 0`.
///
/// ```
/// let v = litho_math::util::linspace(0.0, 1.0, 5);
/// assert_eq!(v, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
pub fn linspace(start: f64, end: f64, count: usize) -> Vec<f64> {
    assert!(count > 0, "linspace needs at least one point");
    if count == 1 {
        return vec![start];
    }
    let step = (end - start) / (count - 1) as f64;
    (0..count).map(|i| start + step * i as f64).collect()
}

/// Centered frequency coordinates for an `n`-point DFT, matching the
/// convention of `fftshift`: for even `n` the range is `-n/2 ..= n/2 - 1`,
/// for odd `n` it is `-(n-1)/2 ..= (n-1)/2`.
pub fn centered_freqs(n: usize) -> Vec<i64> {
    let offset = (n / 2) as i64;
    (0..n as i64).map(|i| i - offset).collect()
}

/// Extracts the centered `out_rows × out_cols` region of a matrix.
///
/// Used to crop a shifted mask spectrum down to the optical-kernel dimensions
/// (paper Algorithm 1, line 7).
///
/// # Panics
///
/// Panics if the requested output is larger than the input.
pub fn center_crop<T: Copy>(m: &Matrix<T>, out_rows: usize, out_cols: usize) -> Matrix<T> {
    assert!(
        out_rows <= m.rows() && out_cols <= m.cols(),
        "center_crop output {}x{} exceeds input {}x{}",
        out_rows,
        out_cols,
        m.rows(),
        m.cols()
    );
    // Align the DC bins: after `fftshift`, DC sits at index n/2 for both the
    // input and the output grid, so the crop offset is the difference of the
    // two DC positions (not simply (in - out) / 2, which would shift the DC
    // bin when the parities differ).
    let r0 = m.rows() / 2 - out_rows / 2;
    let c0 = m.cols() / 2 - out_cols / 2;
    m.submatrix(r0, c0, out_rows, out_cols)
}

/// Zero-pads a matrix to `out_rows × out_cols`, keeping the input centered.
///
/// This is the inverse of [`center_crop`] for the region that survives the
/// crop and is how a band-limited kernel-resolution field is interpolated
/// back to image resolution.
///
/// # Panics
///
/// Panics if the requested output is smaller than the input.
pub fn center_pad(m: &ComplexMatrix, out_rows: usize, out_cols: usize) -> ComplexMatrix {
    assert!(
        out_rows >= m.rows() && out_cols >= m.cols(),
        "center_pad output {}x{} smaller than input {}x{}",
        out_rows,
        out_cols,
        m.rows(),
        m.cols()
    );
    let mut out = ComplexMatrix::zeros(out_rows, out_cols);
    let r0 = out_rows / 2 - m.rows() / 2;
    let c0 = out_cols / 2 - m.cols() / 2;
    out.set_submatrix(r0, c0, m);
    out
}

/// Zero-pads a real matrix to `out_rows × out_cols`, keeping it centered.
///
/// # Panics
///
/// Panics if the requested output is smaller than the input.
pub fn center_pad_real(m: &RealMatrix, out_rows: usize, out_cols: usize) -> RealMatrix {
    assert!(
        out_rows >= m.rows() && out_cols >= m.cols(),
        "center_pad output smaller than input"
    );
    let mut out = RealMatrix::zeros(out_rows, out_cols);
    let r0 = out_rows / 2 - m.rows() / 2;
    let c0 = out_cols / 2 - m.cols() / 2;
    out.set_submatrix(r0, c0, m);
    out
}

/// Downsamples a real matrix by integer `factor` using block averaging.
///
/// Used to build low-dimensional feature vectors of masks for the t-SNE
/// dataset-distribution figure and for the CNN/FNO baselines.
///
/// # Panics
///
/// Panics if `factor` is zero or does not divide both dimensions.
pub fn block_downsample(m: &RealMatrix, factor: usize) -> RealMatrix {
    assert!(factor > 0, "factor must be positive");
    assert!(
        m.rows().is_multiple_of(factor) && m.cols().is_multiple_of(factor),
        "factor {} must divide the {}x{} matrix",
        factor,
        m.rows(),
        m.cols()
    );
    let rows = m.rows() / factor;
    let cols = m.cols() / factor;
    let norm = (factor * factor) as f64;
    RealMatrix::from_fn(rows, cols, |i, j| {
        let mut acc = 0.0;
        for di in 0..factor {
            for dj in 0..factor {
                acc += m[(i * factor + di, j * factor + dj)];
            }
        }
        acc / norm
    })
}

/// Upsamples a real matrix by integer `factor` using nearest-neighbour
/// replication (used by the CNN baseline decoder).
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn nearest_upsample(m: &RealMatrix, factor: usize) -> RealMatrix {
    assert!(factor > 0, "factor must be positive");
    RealMatrix::from_fn(m.rows() * factor, m.cols() * factor, |i, j| {
        m[(i / factor, j / factor)]
    })
}

/// Converts a complex matrix to interleaved real storage `[re, im, re, im…]`.
pub fn complex_to_interleaved(m: &ComplexMatrix) -> Vec<f64> {
    let mut out = Vec::with_capacity(m.len() * 2);
    for z in m.iter() {
        out.push(z.re);
        out.push(z.im);
    }
    out
}

/// Rebuilds a complex matrix from interleaved real storage.
///
/// # Panics
///
/// Panics if `data.len() != rows * cols * 2`.
pub fn interleaved_to_complex(rows: usize, cols: usize, data: &[f64]) -> ComplexMatrix {
    assert_eq!(
        data.len(),
        rows * cols * 2,
        "interleaved buffer length mismatch"
    );
    ComplexMatrix::from_fn(rows, cols, |i, j| {
        let k = (i * cols + j) * 2;
        Complex64::new(data[k], data[k + 1])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linspace_endpoints_and_spacing() {
        let v = linspace(-1.0, 1.0, 5);
        assert_eq!(v, vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
        assert_eq!(linspace(3.0, 9.0, 1), vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn linspace_zero_points_panics() {
        let _ = linspace(0.0, 1.0, 0);
    }

    #[test]
    fn centered_freqs_even_and_odd() {
        assert_eq!(centered_freqs(4), vec![-2, -1, 0, 1]);
        assert_eq!(centered_freqs(5), vec![-2, -1, 0, 1, 2]);
    }

    #[test]
    fn crop_then_pad_roundtrip_preserves_center() {
        let m = ComplexMatrix::from_fn(8, 8, |i, j| Complex64::new((i * 8 + j) as f64, 0.0));
        let cropped = center_crop(&m, 4, 4);
        assert_eq!(cropped[(0, 0)].re, m[(2, 2)].re);
        let padded = center_pad(&cropped, 8, 8);
        for i in 0..8 {
            for j in 0..8 {
                let inside = (2..6).contains(&i) && (2..6).contains(&j);
                if inside {
                    assert_eq!(padded[(i, j)], m[(i, j)]);
                } else {
                    assert_eq!(padded[(i, j)], Complex64::ZERO);
                }
            }
        }
    }

    #[test]
    fn crop_odd_sizes_keep_dc_bin() {
        // After fftshift, DC lives at index n/2. Cropping 8 -> 5 should keep
        // the DC bin at the new center (index 2).
        let m = ComplexMatrix::from_fn(8, 8, |i, j| {
            if i == 4 && j == 4 {
                Complex64::ONE
            } else {
                Complex64::ZERO
            }
        });
        let cropped = center_crop(&m, 5, 5);
        assert_eq!(cropped[(5 / 2 + 1, 5 / 2 + 1)], Complex64::ZERO);
        assert_eq!(cropped[(2, 2)], Complex64::ONE);
    }

    #[test]
    #[should_panic(expected = "exceeds input")]
    fn crop_larger_than_input_panics() {
        let m = ComplexMatrix::zeros(4, 4);
        let _ = center_crop(&m, 5, 5);
    }

    #[test]
    fn pad_real_and_block_downsample() {
        let m = RealMatrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let padded = center_pad_real(&m, 6, 6);
        assert_eq!(padded[(1, 1)], m[(0, 0)]);
        assert_eq!(padded[(0, 0)], 0.0);
        // DC alignment: input DC bin (2,2) lands on output DC bin (3,3).
        assert_eq!(padded[(3, 3)], m[(2, 2)]);

        let ds = block_downsample(&m, 2);
        assert_eq!(ds.shape(), (2, 2));
        assert_eq!(ds[(0, 0)], (0.0 + 1.0 + 4.0 + 5.0) / 4.0);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn block_downsample_bad_factor_panics() {
        let m = RealMatrix::zeros(4, 4);
        let _ = block_downsample(&m, 3);
    }

    #[test]
    fn nearest_upsample_replicates_blocks() {
        let m = RealMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let up = nearest_upsample(&m, 3);
        assert_eq!(up.shape(), (6, 6));
        assert_eq!(up[(0, 0)], 1.0);
        assert_eq!(up[(2, 2)], 1.0);
        assert_eq!(up[(3, 3)], 4.0);
        // Downsample inverts upsample exactly for block-constant data.
        assert_eq!(block_downsample(&up, 3), m);
    }

    #[test]
    fn interleaved_roundtrip() {
        let m = ComplexMatrix::from_fn(3, 2, |i, j| Complex64::new(i as f64, j as f64));
        let flat = complex_to_interleaved(&m);
        assert_eq!(flat.len(), 12);
        let back = interleaved_to_complex(3, 2, &flat);
        assert_eq!(back, m);
    }

    proptest! {
        #[test]
        fn prop_crop_pad_roundtrip(rows in 2usize..10, cols in 2usize..10,
                                   dr in 0usize..4, dc in 0usize..4) {
            let m = ComplexMatrix::from_fn(rows, cols, |i, j| {
                Complex64::new((i * cols + j) as f64, (i + j) as f64)
            });
            let big = center_pad(&m, rows + dr, cols + dc);
            let back = center_crop(&big, rows, cols);
            prop_assert_eq!(back, m);
        }

        #[test]
        fn prop_downsample_preserves_mean(factor in 1usize..4, blocks in 1usize..5) {
            let n = factor * blocks;
            let m = RealMatrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 11) as f64);
            let ds = block_downsample(&m, factor);
            prop_assert!((ds.mean() - m.mean()).abs() < 1e-9);
        }
    }
}
