//! Split-complex (structure-of-arrays) storage and fused numeric kernels.
//!
//! The hot numeric paths of the workspace — planned FFT passes, SOCS
//! aerial synthesis, frozen CMLP inference — are dense sweeps over complex
//! data. The array-of-structs [`Complex64`](crate::Complex64) layout
//! interleaves real and imaginary lanes, which defeats autovectorization of
//! the independent per-lane arithmetic. This module provides the
//! split-complex alternative: real and imaginary parts live in two separate
//! `f64` arrays, so every fused kernel below compiles to straight-line loops
//! over contiguous `f64` slices.
//!
//! Each kernel dispatches through [`crate::simd::simd_backend`] (the
//! `NITHO_SIMD` knob): the **scalar** backend performs *exactly* the same
//! floating-point operations in the same order as its AoS counterpart
//! (`(a·b).re = a.re·b.re − a.im·b.im`, `(a·b).im = a.re·b.im + a.im·b.re`,
//! sums accumulated left to right), so switching a call site between
//! layouts is bit-exact under `NITHO_SIMD=scalar` — the equivalence pins in
//! `litho_fft` and `litho_optics` rely on this. The **avx2** backend uses
//! explicit FMA intrinsics ([`crate::simd::avx2`]), which fuse one rounding
//! per multiply-add; it agrees with scalar within 1e-12 relative (pinned by
//! the `simd_equivalence` proptests) but not bitwise. Every kernel also has
//! a `_with` variant taking an explicit [`SimdBackend`] so tests and benches
//! can A/B the backends without touching process-global state, plus an
//! `_f32` variant for the opt-in reduced-precision inference path.
//!
//! All length mismatches panic with a message naming the kernel and the
//! offending slice — the SIMD tail loops make empty, length-1 and
//! odd-remainder slices load-bearing, so the checks are unconditional
//! (`assert!`, not `debug_assert!`).

use crate::complex::Complex64;
use crate::matrix::ComplexMatrix;
use crate::simd::{self, SimdBackend};

/// A dense row-major complex matrix in split-complex (SoA) layout.
///
/// # Example
///
/// ```
/// use litho_math::soa::ComplexSoa;
/// use litho_math::{Complex64, ComplexMatrix};
///
/// let m = ComplexMatrix::from_fn(2, 3, |i, j| Complex64::new(i as f64, j as f64));
/// let soa = ComplexSoa::from_matrix(&m);
/// assert_eq!(soa.shape(), (2, 3));
/// assert_eq!(soa.to_matrix(), m);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexSoa {
    rows: usize,
    cols: usize,
    /// Real parts, row-major.
    pub re: Vec<f64>,
    /// Imaginary parts, row-major.
    pub im: Vec<f64>,
}

impl ComplexSoa {
    /// Creates a zero-filled SoA matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            re: vec![0.0; rows * cols],
            im: vec![0.0; rows * cols],
        }
    }

    /// Converts an AoS matrix into split-complex layout.
    pub fn from_matrix(m: &ComplexMatrix) -> Self {
        let (rows, cols) = m.shape();
        let mut re = Vec::with_capacity(rows * cols);
        let mut im = Vec::with_capacity(rows * cols);
        for z in m.iter() {
            re.push(z.re);
            im.push(z.im);
        }
        Self { rows, cols, re, im }
    }

    /// Converts back to the AoS matrix layout.
    pub fn to_matrix(&self) -> ComplexMatrix {
        ComplexMatrix::from_vec(
            self.rows,
            self.cols,
            self.re
                .iter()
                .zip(self.im.iter())
                .map(|(&r, &i)| Complex64::new(r, i))
                .collect(),
        )
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of complex elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// Always `false`: dimensions are non-zero by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Borrows one row as a `(re, im)` slice pair.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    #[inline]
    pub fn row(&self, row: usize) -> (&[f64], &[f64]) {
        assert!(row < self.rows, "row {row} out of bounds");
        let start = row * self.cols;
        (
            &self.re[start..start + self.cols],
            &self.im[start..start + self.cols],
        )
    }

    /// Mutably borrows one row as a `(re, im)` slice pair.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> (&mut [f64], &mut [f64]) {
        assert!(row < self.rows, "row {row} out of bounds");
        let start = row * self.cols;
        (
            &mut self.re[start..start + self.cols],
            &mut self.im[start..start + self.cols],
        )
    }

    /// Mutably borrows both planes at once.
    #[inline]
    pub fn parts_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.re, &mut self.im)
    }
}

/// A dense row-major complex matrix in single-precision split-complex
/// layout — the storage behind the opt-in `NITHO_PRECISION=f32` inference
/// path. Construction narrows from `f64`; [`ComplexSoa32::to_matrix`]
/// widens back for interop with the `f64` world.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexSoa32 {
    rows: usize,
    cols: usize,
    /// Real parts, row-major.
    pub re: Vec<f32>,
    /// Imaginary parts, row-major.
    pub im: Vec<f32>,
}

impl ComplexSoa32 {
    /// Creates a zero-filled SoA matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            re: vec![0.0; rows * cols],
            im: vec![0.0; rows * cols],
        }
    }

    /// Converts (narrows) an AoS `f64` matrix into single-precision
    /// split-complex layout.
    pub fn from_matrix(m: &ComplexMatrix) -> Self {
        let (rows, cols) = m.shape();
        let mut re = Vec::with_capacity(rows * cols);
        let mut im = Vec::with_capacity(rows * cols);
        for z in m.iter() {
            re.push(z.re as f32);
            im.push(z.im as f32);
        }
        Self { rows, cols, re, im }
    }

    /// Converts (widens) back to the AoS `f64` matrix layout.
    pub fn to_matrix(&self) -> ComplexMatrix {
        ComplexMatrix::from_vec(
            self.rows,
            self.cols,
            self.re
                .iter()
                .zip(self.im.iter())
                .map(|(&r, &i)| Complex64::new(f64::from(r), f64::from(i)))
                .collect(),
        )
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of complex elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// Always `false`: dimensions are non-zero by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Borrows one row as a `(re, im)` slice pair.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    #[inline]
    pub fn row(&self, row: usize) -> (&[f32], &[f32]) {
        assert!(row < self.rows, "row {row} out of bounds");
        let start = row * self.cols;
        (
            &self.re[start..start + self.cols],
            &self.im[start..start + self.cols],
        )
    }

    /// Mutably borrows one row as a `(re, im)` slice pair.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> (&mut [f32], &mut [f32]) {
        assert!(row < self.rows, "row {row} out of bounds");
        let start = row * self.cols;
        (
            &mut self.re[start..start + self.cols],
            &mut self.im[start..start + self.cols],
        )
    }

    /// Mutably borrows both planes at once.
    #[inline]
    pub fn parts_mut(&mut self) -> (&mut [f32], &mut [f32]) {
        (&mut self.re, &mut self.im)
    }
}

/// Unconditional length checks with a message naming the kernel and the
/// offending slice — the error a caller sees on a mismatched call like
/// `soa::mul_into: slice `br` has length 7 but expected 8`.
macro_rules! check_lengths {
    ($kernel:literal, $n:expr, $($name:literal = $slice:expr),+ $(,)?) => {
        $(assert!(
            $slice.len() == $n,
            concat!("soa::", $kernel, ": slice `", $name,
                    "` has length {} but expected {}"),
            $slice.len(),
            $n,
        );)+
    };
}

/// Dispatches a pre-length-checked kernel body to the selected backend.
/// The AVX2 arm only exists on x86_64; the backend enum cannot resolve (or
/// be forced) to `Avx2` anywhere else, so the other-arch arm is
/// unreachable.
macro_rules! dispatch {
    ($backend:expr, $scalar:expr, $avx2:expr) => {
        match $backend {
            SimdBackend::Scalar => $scalar,
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `SimdBackend::Avx2` is only resolvable/forcible when
            // `simd::avx2_available()` holds (asserted at resolution), which
            // is exactly the safety contract of the intrinsic kernels.
            SimdBackend::Avx2 => unsafe { $avx2 },
            #[cfg(not(target_arch = "x86_64"))]
            SimdBackend::Avx2 => {
                unreachable!("AVX2 backend selected on a non-x86_64 target")
            }
        }
    };
}

/// Stamps the scalar reference loops for one element type. These are the
/// exact pre-SIMD arithmetic — same operations, same order — and double as
/// the bit-identical reference the `NITHO_SIMD=scalar` determinism pins
/// compare against.
macro_rules! scalar_kernels {
    ($t:ty, $mul:ident, $axpy:ident, $scale:ident, $abs:ident, $bfly:ident) => {
        #[inline]
        #[allow(clippy::too_many_arguments)]
        fn $mul(ar: &[$t], ai: &[$t], br: &[$t], bi: &[$t], out_re: &mut [$t], out_im: &mut [$t]) {
            for k in 0..ar.len() {
                out_re[k] = ar[k] * br[k] - ai[k] * bi[k];
                out_im[k] = ar[k] * bi[k] + ai[k] * br[k];
            }
        }

        #[inline]
        fn $axpy(alpha_re: $t, alpha_im: $t, xr: &[$t], xi: &[$t], yr: &mut [$t], yi: &mut [$t]) {
            for k in 0..xr.len() {
                yr[k] += alpha_re * xr[k] - alpha_im * xi[k];
                yi[k] += alpha_re * xi[k] + alpha_im * xr[k];
            }
        }

        #[inline]
        fn $scale(re: &mut [$t], im: &mut [$t], s: $t) {
            for v in re.iter_mut() {
                *v *= s;
            }
            for v in im.iter_mut() {
                *v *= s;
            }
        }

        #[inline]
        fn $abs(re: &[$t], im: &[$t], acc: &mut [$t]) {
            for k in 0..re.len() {
                acc[k] += re[k] * re[k] + im[k] * im[k];
            }
        }

        #[inline]
        #[allow(clippy::too_many_arguments)]
        fn $bfly(
            ar: &[$t],
            ai: &[$t],
            br: &[$t],
            bi: &[$t],
            d0r: &mut [$t],
            d0i: &mut [$t],
            d1r: &mut [$t],
            d1i: &mut [$t],
            wr: $t,
            wi: $t,
        ) {
            for k in 0..ar.len() {
                let tre = ar[k] - br[k];
                let tim = ai[k] - bi[k];
                d0r[k] = ar[k] + br[k];
                d0i[k] = ai[k] + bi[k];
                d1r[k] = tre * wr - tim * wi;
                d1i[k] = tre * wi + tim * wr;
            }
        }
    };
}

scalar_kernels!(
    f64,
    scalar_mul_into,
    scalar_axpy_in_place,
    scalar_scale_in_place,
    scalar_accumulate_abs_sq,
    scalar_stockham_butterfly
);
scalar_kernels!(
    f32,
    scalar_mul_into_f32,
    scalar_axpy_in_place_f32,
    scalar_scale_in_place_f32,
    scalar_accumulate_abs_sq_f32,
    scalar_stockham_butterfly_f32
);

/// `out ← a ⊙ b` (element-wise complex product), all operands
/// split-complex. Dispatches on the process-wide [`simd_backend`].
///
/// # Panics
///
/// Panics if the slice lengths disagree.
#[inline]
pub fn mul_into(
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    out_re: &mut [f64],
    out_im: &mut [f64],
) {
    mul_into_with(simd::simd_backend(), ar, ai, br, bi, out_re, out_im)
}

/// [`mul_into`] with an explicit backend.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
#[allow(clippy::too_many_arguments)]
pub fn mul_into_with(
    backend: SimdBackend,
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    out_re: &mut [f64],
    out_im: &mut [f64],
) {
    let n = ar.len();
    check_lengths!(
        "mul_into",
        n,
        "ai" = ai,
        "br" = br,
        "bi" = bi,
        "out_re" = out_re,
        "out_im" = out_im
    );
    dispatch!(
        backend,
        scalar_mul_into(ar, ai, br, bi, out_re, out_im),
        simd::avx2::mul_into(ar, ai, br, bi, out_re, out_im)
    )
}

/// f32 variant of [`mul_into_with`].
///
/// # Panics
///
/// Panics if the slice lengths disagree.
#[allow(clippy::too_many_arguments)]
pub fn mul_into_f32_with(
    backend: SimdBackend,
    ar: &[f32],
    ai: &[f32],
    br: &[f32],
    bi: &[f32],
    out_re: &mut [f32],
    out_im: &mut [f32],
) {
    let n = ar.len();
    check_lengths!(
        "mul_into_f32",
        n,
        "ai" = ai,
        "br" = br,
        "bi" = bi,
        "out_re" = out_re,
        "out_im" = out_im
    );
    dispatch!(
        backend,
        scalar_mul_into_f32(ar, ai, br, bi, out_re, out_im),
        simd::avx2::mul_into_f32(ar, ai, br, bi, out_re, out_im)
    )
}

/// `y ← y + α·x` for a complex scalar `α = (alpha_re, alpha_im)` — the fused
/// complex axpy at the heart of the batched CMLP matmul. Dispatches on the
/// process-wide [`simd_backend`].
///
/// # Panics
///
/// Panics if the slice lengths disagree.
#[inline]
pub fn axpy_in_place(
    alpha_re: f64,
    alpha_im: f64,
    xr: &[f64],
    xi: &[f64],
    yr: &mut [f64],
    yi: &mut [f64],
) {
    axpy_in_place_with(simd::simd_backend(), alpha_re, alpha_im, xr, xi, yr, yi)
}

/// [`axpy_in_place`] with an explicit backend.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
#[allow(clippy::too_many_arguments)]
pub fn axpy_in_place_with(
    backend: SimdBackend,
    alpha_re: f64,
    alpha_im: f64,
    xr: &[f64],
    xi: &[f64],
    yr: &mut [f64],
    yi: &mut [f64],
) {
    let n = xr.len();
    check_lengths!("axpy_in_place", n, "xi" = xi, "yr" = yr, "yi" = yi);
    dispatch!(
        backend,
        scalar_axpy_in_place(alpha_re, alpha_im, xr, xi, yr, yi),
        simd::avx2::axpy_in_place(alpha_re, alpha_im, xr, xi, yr, yi)
    )
}

/// f32 variant of [`axpy_in_place_with`].
///
/// # Panics
///
/// Panics if the slice lengths disagree.
#[allow(clippy::too_many_arguments)]
pub fn axpy_in_place_f32_with(
    backend: SimdBackend,
    alpha_re: f32,
    alpha_im: f32,
    xr: &[f32],
    xi: &[f32],
    yr: &mut [f32],
    yi: &mut [f32],
) {
    let n = xr.len();
    check_lengths!("axpy_in_place_f32", n, "xi" = xi, "yr" = yr, "yi" = yi);
    dispatch!(
        backend,
        scalar_axpy_in_place_f32(alpha_re, alpha_im, xr, xi, yr, yi),
        simd::avx2::axpy_in_place_f32(alpha_re, alpha_im, xr, xi, yr, yi)
    )
}

/// Scales both planes by a real factor in place. Dispatches on the
/// process-wide [`simd_backend`]. The planes may have different lengths
/// (each is scaled independently).
#[inline]
pub fn scale_in_place(re: &mut [f64], im: &mut [f64], s: f64) {
    scale_in_place_with(simd::simd_backend(), re, im, s)
}

/// [`scale_in_place`] with an explicit backend.
pub fn scale_in_place_with(backend: SimdBackend, re: &mut [f64], im: &mut [f64], s: f64) {
    dispatch!(
        backend,
        scalar_scale_in_place(re, im, s),
        simd::avx2::scale_in_place(re, im, s)
    )
}

/// f32 variant of [`scale_in_place_with`].
pub fn scale_in_place_f32_with(backend: SimdBackend, re: &mut [f32], im: &mut [f32], s: f32) {
    dispatch!(
        backend,
        scalar_scale_in_place_f32(re, im, s),
        simd::avx2::scale_in_place_f32(re, im, s)
    )
}

/// `acc[k] += re[k]² + im[k]²` — the fused `|z|²`-accumulate of the SOCS
/// intensity sum, writing straight into the aerial accumulator without
/// materializing a per-kernel magnitude matrix. Dispatches on the
/// process-wide [`simd_backend`].
///
/// # Panics
///
/// Panics if the slice lengths disagree.
#[inline]
pub fn accumulate_abs_sq(re: &[f64], im: &[f64], acc: &mut [f64]) {
    accumulate_abs_sq_with(simd::simd_backend(), re, im, acc)
}

/// [`accumulate_abs_sq`] with an explicit backend.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
pub fn accumulate_abs_sq_with(backend: SimdBackend, re: &[f64], im: &[f64], acc: &mut [f64]) {
    let n = re.len();
    check_lengths!("accumulate_abs_sq", n, "im" = im, "acc" = acc);
    dispatch!(
        backend,
        scalar_accumulate_abs_sq(re, im, acc),
        simd::avx2::accumulate_abs_sq(re, im, acc)
    )
}

/// f32 variant of [`accumulate_abs_sq_with`] — the accumulator stays `f32`
/// (callers fold into `f64` once per plane, not per kernel).
///
/// # Panics
///
/// Panics if the slice lengths disagree.
pub fn accumulate_abs_sq_f32_with(backend: SimdBackend, re: &[f32], im: &[f32], acc: &mut [f32]) {
    let n = re.len();
    check_lengths!("accumulate_abs_sq_f32", n, "im" = im, "acc" = acc);
    dispatch!(
        backend,
        scalar_accumulate_abs_sq_f32(re, im, acc),
        simd::avx2::accumulate_abs_sq_f32(re, im, acc)
    )
}

/// One Stockham radix-2 butterfly over contiguous runs of length `s`:
/// `d0 ← a + b`, `d1 ← (a − b)·w` for a broadcast twiddle
/// `w = (wr, wi)` — the inner loop of every planned FFT stage with
/// stride ≥ 2.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
#[allow(clippy::too_many_arguments)]
pub fn stockham_butterfly_with(
    backend: SimdBackend,
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    d0r: &mut [f64],
    d0i: &mut [f64],
    d1r: &mut [f64],
    d1i: &mut [f64],
    wr: f64,
    wi: f64,
) {
    let n = ar.len();
    check_lengths!(
        "stockham_butterfly",
        n,
        "ai" = ai,
        "br" = br,
        "bi" = bi,
        "d0r" = d0r,
        "d0i" = d0i,
        "d1r" = d1r,
        "d1i" = d1i
    );
    // Early FFT stages call this with very short runs (s = 2, 4, 8, …). The
    // intrinsics live behind a `#[target_feature]` boundary the compiler
    // cannot inline through, so below a few vectors of work the call
    // overhead outweighs the lanes — and the scalar loop auto-vectorizes
    // well on contiguous runs anyway. Short runs therefore always take the
    // scalar reference path, on every backend.
    if n < 16 {
        return scalar_stockham_butterfly(ar, ai, br, bi, d0r, d0i, d1r, d1i, wr, wi);
    }
    dispatch!(
        backend,
        scalar_stockham_butterfly(ar, ai, br, bi, d0r, d0i, d1r, d1i, wr, wi),
        simd::avx2::stockham_butterfly(ar, ai, br, bi, d0r, d0i, d1r, d1i, wr, wi)
    )
}

/// f32 variant of [`stockham_butterfly_with`].
///
/// # Panics
///
/// Panics if the slice lengths disagree.
#[allow(clippy::too_many_arguments)]
pub fn stockham_butterfly_f32_with(
    backend: SimdBackend,
    ar: &[f32],
    ai: &[f32],
    br: &[f32],
    bi: &[f32],
    d0r: &mut [f32],
    d0i: &mut [f32],
    d1r: &mut [f32],
    d1i: &mut [f32],
    wr: f32,
    wi: f32,
) {
    let n = ar.len();
    check_lengths!(
        "stockham_butterfly_f32",
        n,
        "ai" = ai,
        "br" = br,
        "bi" = bi,
        "d0r" = d0r,
        "d0i" = d0i,
        "d1r" = d1r,
        "d1i" = d1i
    );
    // Same short-run policy as the f64 butterfly, scaled to the 8-lane f32
    // registers.
    if n < 32 {
        return scalar_stockham_butterfly_f32(ar, ai, br, bi, d0r, d0i, d1r, d1i, wr, wi);
    }
    dispatch!(
        backend,
        scalar_stockham_butterfly_f32(ar, ai, br, bi, d0r, d0i, d1r, d1i, wr, wi),
        simd::avx2::stockham_butterfly_f32(ar, ai, br, bi, d0r, d0i, d1r, d1i, wr, wi)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeterministicRng;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> ComplexMatrix {
        let mut rng = DeterministicRng::new(seed);
        ComplexMatrix::from_fn(rows, cols, |_, _| rng.normal_complex(0.0, 1.0))
    }

    fn random_planes(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = DeterministicRng::new(seed);
        (
            (0..n).map(|_| rng.normal(0.0, 1.0)).collect(),
            (0..n).map(|_| rng.normal(0.0, 1.0)).collect(),
        )
    }

    #[test]
    fn roundtrip_preserves_bits() {
        let m = random_matrix(5, 7, 1);
        let soa = ComplexSoa::from_matrix(&m);
        let back = soa.to_matrix();
        for (a, b) in m.iter().zip(back.iter()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        assert_eq!(soa.len(), 35);
        assert!(!soa.is_empty());
        assert_eq!(soa.rows(), 5);
        assert_eq!(soa.cols(), 7);
    }

    #[test]
    fn row_accessors_expose_row_major_planes() {
        let m = random_matrix(3, 4, 2);
        let mut soa = ComplexSoa::from_matrix(&m);
        let (re, im) = soa.row(1);
        for j in 0..4 {
            assert_eq!(re[j], m[(1, j)].re);
            assert_eq!(im[j], m[(1, j)].im);
        }
        {
            let (re_mut, _) = soa.row_mut(2);
            re_mut[0] = 42.0;
        }
        assert_eq!(soa.to_matrix()[(2, 0)].re, 42.0);
        let (re_all, im_all) = soa.parts_mut();
        assert_eq!(re_all.len(), 12);
        assert_eq!(im_all.len(), 12);
    }

    #[test]
    fn soa32_roundtrip_narrows_then_widens() {
        let m = random_matrix(3, 5, 11);
        let soa = ComplexSoa32::from_matrix(&m);
        assert_eq!(soa.shape(), (3, 5));
        assert_eq!(soa.rows(), 3);
        assert_eq!(soa.cols(), 5);
        assert_eq!(soa.len(), 15);
        assert!(!soa.is_empty());
        let back = soa.to_matrix();
        for (a, b) in m.iter().zip(back.iter()) {
            assert_eq!((a.re as f32).to_bits(), (b.re as f32).to_bits());
            assert_eq!((a.im as f32).to_bits(), (b.im as f32).to_bits());
        }
        let z = ComplexSoa32::zeros(2, 2);
        assert!(z.re.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn soa32_row_accessors() {
        let m = random_matrix(2, 4, 12);
        let mut soa = ComplexSoa32::from_matrix(&m);
        let (re, im) = soa.row(1);
        for j in 0..4 {
            assert_eq!(re[j], m[(1, j)].re as f32);
            assert_eq!(im[j], m[(1, j)].im as f32);
        }
        {
            let (re_mut, _) = soa.row_mut(0);
            re_mut[0] = 42.0;
        }
        let (re_all, im_all) = soa.parts_mut();
        assert_eq!(re_all[0], 42.0);
        assert_eq!(im_all.len(), 8);
    }

    #[test]
    fn mul_into_matches_aos_product_bitwise() {
        let a = random_matrix(4, 4, 3);
        let b = random_matrix(4, 4, 4);
        let (sa, sb) = (ComplexSoa::from_matrix(&a), ComplexSoa::from_matrix(&b));
        let mut out = ComplexSoa::zeros(4, 4);
        mul_into_with(
            SimdBackend::Scalar,
            &sa.re,
            &sa.im,
            &sb.re,
            &sb.im,
            &mut out.re,
            &mut out.im,
        );
        let aos = a.hadamard(&b);
        for (x, y) in out.to_matrix().iter().zip(aos.iter()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn axpy_matches_aos_bitwise() {
        let x = random_matrix(1, 16, 5);
        let y = random_matrix(1, 16, 6);
        let alpha = Complex64::new(0.7, -1.3);
        let sx = ComplexSoa::from_matrix(&x);
        let mut sy = ComplexSoa::from_matrix(&y);
        axpy_in_place_with(
            SimdBackend::Scalar,
            alpha.re,
            alpha.im,
            &sx.re,
            &sx.im,
            &mut sy.re,
            &mut sy.im,
        );
        for j in 0..16 {
            let expect = y[(0, j)] + alpha * x[(0, j)];
            let got = sy.to_matrix()[(0, j)];
            assert_eq!(expect.re.to_bits(), got.re.to_bits());
            assert_eq!(expect.im.to_bits(), got.im.to_bits());
        }
    }

    #[test]
    fn scale_and_abs_sq_accumulate() {
        let m = random_matrix(2, 8, 7);
        let mut soa = ComplexSoa::from_matrix(&m);
        scale_in_place(&mut soa.re, &mut soa.im, 2.0);
        let scaled = soa.to_matrix();
        for (a, b) in scaled.iter().zip(m.iter()) {
            assert_eq!(a.re, b.re * 2.0);
            assert_eq!(a.im, b.im * 2.0);
        }
        let mut acc = vec![1.0; 16];
        accumulate_abs_sq_with(SimdBackend::Scalar, &soa.re, &soa.im, &mut acc);
        for (k, v) in acc.iter().enumerate() {
            let z = scaled[(k / 8, k % 8)];
            assert_eq!(*v, 1.0 + (z.re * z.re + z.im * z.im));
        }
    }

    /// The SIMD tail loops make short slices load-bearing: every kernel
    /// must handle empty, length-1 and odd-remainder (len 3, 5, 7) inputs.
    #[test]
    fn kernels_handle_edge_lengths() {
        for backend in available_backends() {
            for n in [0usize, 1, 3, 5, 7] {
                let (ar, ai) = random_planes(n, 100 + n as u64);
                let (br, bi) = random_planes(n, 200 + n as u64);
                let mut out_re = vec![0.0; n];
                let mut out_im = vec![0.0; n];
                mul_into_with(backend, &ar, &ai, &br, &bi, &mut out_re, &mut out_im);
                for k in 0..n {
                    let expect_re = ar[k] * br[k] - ai[k] * bi[k];
                    let expect_im = ar[k] * bi[k] + ai[k] * br[k];
                    assert!((out_re[k] - expect_re).abs() <= 1e-12);
                    assert!((out_im[k] - expect_im).abs() <= 1e-12);
                }

                let mut yr = br.clone();
                let mut yi = bi.clone();
                axpy_in_place_with(backend, 0.5, -0.25, &ar, &ai, &mut yr, &mut yi);
                for k in 0..n {
                    let expect_re = br[k] + 0.5 * ar[k] + 0.25 * ai[k];
                    let expect_im = bi[k] + 0.5 * ai[k] - 0.25 * ar[k];
                    assert!((yr[k] - expect_re).abs() <= 1e-12);
                    assert!((yi[k] - expect_im).abs() <= 1e-12);
                }

                let mut sr = ar.clone();
                let mut si = ai.clone();
                scale_in_place_with(backend, &mut sr, &mut si, 3.0);
                for k in 0..n {
                    assert_eq!(sr[k], ar[k] * 3.0);
                    assert_eq!(si[k], ai[k] * 3.0);
                }

                let mut acc = vec![1.0; n];
                accumulate_abs_sq_with(backend, &ar, &ai, &mut acc);
                for k in 0..n {
                    let expect = 1.0 + ar[k] * ar[k] + ai[k] * ai[k];
                    assert!((acc[k] - expect).abs() <= 1e-12);
                }

                let mut d0r = vec![0.0; n];
                let mut d0i = vec![0.0; n];
                let mut d1r = vec![0.0; n];
                let mut d1i = vec![0.0; n];
                stockham_butterfly_with(
                    backend, &ar, &ai, &br, &bi, &mut d0r, &mut d0i, &mut d1r, &mut d1i, 0.6, -0.8,
                );
                for k in 0..n {
                    let tre = ar[k] - br[k];
                    let tim = ai[k] - bi[k];
                    assert_eq!(d0r[k], ar[k] + br[k]);
                    assert_eq!(d0i[k], ai[k] + bi[k]);
                    assert!((d1r[k] - (tre * 0.6 - tim * -0.8)).abs() <= 1e-12);
                    assert!((d1i[k] - (tre * -0.8 + tim * 0.6)).abs() <= 1e-12);
                }
            }
        }
    }

    /// Same edge sweep for the f32 kernels.
    #[test]
    fn f32_kernels_handle_edge_lengths() {
        for backend in available_backends() {
            for n in [0usize, 1, 3, 5, 7, 9] {
                let (ar64, ai64) = random_planes(n, 300 + n as u64);
                let ar: Vec<f32> = ar64.iter().map(|&v| v as f32).collect();
                let ai: Vec<f32> = ai64.iter().map(|&v| v as f32).collect();
                let mut out_re = vec![0.0f32; n];
                let mut out_im = vec![0.0f32; n];
                mul_into_f32_with(backend, &ar, &ai, &ar, &ai, &mut out_re, &mut out_im);
                let mut yr = vec![0.0f32; n];
                let mut yi = vec![0.0f32; n];
                axpy_in_place_f32_with(backend, 1.0, 0.0, &ar, &ai, &mut yr, &mut yi);
                for k in 0..n {
                    assert!((f64::from(yr[k]) - f64::from(ar[k])).abs() <= 1e-6);
                    let expect_re = ar[k] * ar[k] - ai[k] * ai[k];
                    assert!((f64::from(out_re[k]) - f64::from(expect_re)).abs() <= 1e-5);
                }
                let mut sr = ar.clone();
                let mut si = ai.clone();
                scale_in_place_f32_with(backend, &mut sr, &mut si, 2.0);
                let mut acc = vec![0.0f32; n];
                accumulate_abs_sq_f32_with(backend, &ar, &ai, &mut acc);
                let mut d0r = vec![0.0f32; n];
                let mut d0i = vec![0.0f32; n];
                let mut d1r = vec![0.0f32; n];
                let mut d1i = vec![0.0f32; n];
                stockham_butterfly_f32_with(
                    backend, &ar, &ai, &ar, &ai, &mut d0r, &mut d0i, &mut d1r, &mut d1i, 1.0, 0.0,
                );
                for k in 0..n {
                    assert_eq!(sr[k], ar[k] * 2.0);
                    let expect = ar[k] * ar[k] + ai[k] * ai[k];
                    assert!((f64::from(acc[k]) - f64::from(expect)).abs() <= 1e-5);
                    assert_eq!(d0r[k], 2.0 * ar[k]);
                    assert_eq!(d1r[k], 0.0);
                }
            }
        }
    }

    fn available_backends() -> Vec<SimdBackend> {
        let mut backends = vec![SimdBackend::Scalar];
        if simd::avx2_available() {
            backends.push(SimdBackend::Avx2);
        }
        backends
    }

    #[test]
    #[should_panic(expected = "soa::mul_into: slice `br` has length 7 but expected 8")]
    fn mul_into_mismatch_panics_with_clear_message() {
        let a = vec![0.0; 8];
        let b = vec![0.0; 7];
        let mut out = vec![0.0; 8];
        let mut out_im = vec![0.0; 8];
        mul_into(&a, &a.clone(), &b, &b.clone(), &mut out, &mut out_im);
    }

    #[test]
    #[should_panic(expected = "soa::axpy_in_place: slice `yr` has length 3 but expected 4")]
    fn axpy_mismatch_panics_with_clear_message() {
        let x = vec![0.0; 4];
        let mut yr = vec![0.0; 3];
        let mut yi = vec![0.0; 4];
        axpy_in_place(1.0, 0.0, &x, &x.clone(), &mut yr, &mut yi);
    }

    #[test]
    #[should_panic(expected = "soa::accumulate_abs_sq: slice `acc` has length 2 but expected 1")]
    fn abs_sq_mismatch_panics_with_clear_message() {
        let re = vec![0.0; 1];
        let mut acc = vec![0.0; 2];
        accumulate_abs_sq(&re, &re.clone(), &mut acc);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = ComplexSoa::zeros(0, 3);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn soa32_zero_dimension_panics() {
        let _ = ComplexSoa32::zeros(3, 0);
    }
}
