//! Split-complex (structure-of-arrays) storage and fused numeric kernels.
//!
//! The hot numeric paths of the workspace — planned FFT passes, SOCS
//! aerial synthesis, frozen CMLP inference — are dense sweeps over complex
//! data. The array-of-structs [`Complex64`](crate::Complex64) layout
//! interleaves real and imaginary lanes, which defeats autovectorization of
//! the independent per-lane arithmetic. This module provides the
//! split-complex alternative: real and imaginary parts live in two separate
//! `f64` arrays, so every fused kernel below compiles to straight-line loops
//! over contiguous `f64` slices that the compiler vectorizes.
//!
//! Every kernel performs *exactly* the same floating-point operations in the
//! same order as its AoS counterpart (`(a·b).re = a.re·b.re − a.im·b.im`,
//! `(a·b).im = a.re·b.im + a.im·b.re`, sums accumulated left to right), so
//! switching a call site between layouts is bit-exact, not merely
//! approximately equal. The equivalence pins in `litho_fft` and
//! `litho_optics` rely on this.

use crate::complex::Complex64;
use crate::matrix::ComplexMatrix;

/// A dense row-major complex matrix in split-complex (SoA) layout.
///
/// # Example
///
/// ```
/// use litho_math::soa::ComplexSoa;
/// use litho_math::{Complex64, ComplexMatrix};
///
/// let m = ComplexMatrix::from_fn(2, 3, |i, j| Complex64::new(i as f64, j as f64));
/// let soa = ComplexSoa::from_matrix(&m);
/// assert_eq!(soa.shape(), (2, 3));
/// assert_eq!(soa.to_matrix(), m);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexSoa {
    rows: usize,
    cols: usize,
    /// Real parts, row-major.
    pub re: Vec<f64>,
    /// Imaginary parts, row-major.
    pub im: Vec<f64>,
}

impl ComplexSoa {
    /// Creates a zero-filled SoA matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            re: vec![0.0; rows * cols],
            im: vec![0.0; rows * cols],
        }
    }

    /// Converts an AoS matrix into split-complex layout.
    pub fn from_matrix(m: &ComplexMatrix) -> Self {
        let (rows, cols) = m.shape();
        let mut re = Vec::with_capacity(rows * cols);
        let mut im = Vec::with_capacity(rows * cols);
        for z in m.iter() {
            re.push(z.re);
            im.push(z.im);
        }
        Self { rows, cols, re, im }
    }

    /// Converts back to the AoS matrix layout.
    pub fn to_matrix(&self) -> ComplexMatrix {
        ComplexMatrix::from_vec(
            self.rows,
            self.cols,
            self.re
                .iter()
                .zip(self.im.iter())
                .map(|(&r, &i)| Complex64::new(r, i))
                .collect(),
        )
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of complex elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// Always `false`: dimensions are non-zero by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Borrows one row as a `(re, im)` slice pair.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    #[inline]
    pub fn row(&self, row: usize) -> (&[f64], &[f64]) {
        assert!(row < self.rows, "row {row} out of bounds");
        let start = row * self.cols;
        (
            &self.re[start..start + self.cols],
            &self.im[start..start + self.cols],
        )
    }

    /// Mutably borrows one row as a `(re, im)` slice pair.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> (&mut [f64], &mut [f64]) {
        assert!(row < self.rows, "row {row} out of bounds");
        let start = row * self.cols;
        (
            &mut self.re[start..start + self.cols],
            &mut self.im[start..start + self.cols],
        )
    }

    /// Mutably borrows both planes at once.
    #[inline]
    pub fn parts_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.re, &mut self.im)
    }
}

/// `out ← a ⊙ b` (element-wise complex product), all operands split-complex.
///
/// # Panics
///
/// Panics (in debug builds) if the slice lengths disagree.
#[inline]
pub fn mul_into(
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
    out_re: &mut [f64],
    out_im: &mut [f64],
) {
    debug_assert!(
        ar.len() == ai.len()
            && ar.len() == br.len()
            && ar.len() == bi.len()
            && ar.len() == out_re.len()
            && ar.len() == out_im.len(),
        "mul_into length mismatch"
    );
    for k in 0..ar.len() {
        out_re[k] = ar[k] * br[k] - ai[k] * bi[k];
        out_im[k] = ar[k] * bi[k] + ai[k] * br[k];
    }
}

/// `y ← y + α·x` for a complex scalar `α = (alpha_re, alpha_im)` — the fused
/// complex axpy at the heart of the batched CMLP matmul.
///
/// # Panics
///
/// Panics (in debug builds) if the slice lengths disagree.
#[inline]
pub fn axpy_in_place(
    alpha_re: f64,
    alpha_im: f64,
    xr: &[f64],
    xi: &[f64],
    yr: &mut [f64],
    yi: &mut [f64],
) {
    debug_assert!(
        xr.len() == xi.len() && xr.len() == yr.len() && xr.len() == yi.len(),
        "axpy length mismatch"
    );
    for k in 0..xr.len() {
        yr[k] += alpha_re * xr[k] - alpha_im * xi[k];
        yi[k] += alpha_re * xi[k] + alpha_im * xr[k];
    }
}

/// Scales both planes by a real factor in place.
#[inline]
pub fn scale_in_place(re: &mut [f64], im: &mut [f64], s: f64) {
    for v in re.iter_mut() {
        *v *= s;
    }
    for v in im.iter_mut() {
        *v *= s;
    }
}

/// `acc[k] += re[k]² + im[k]²` — the fused `|z|²`-accumulate of the SOCS
/// intensity sum, writing straight into the aerial accumulator without
/// materializing a per-kernel magnitude matrix.
///
/// # Panics
///
/// Panics (in debug builds) if the slice lengths disagree.
#[inline]
pub fn accumulate_abs_sq(re: &[f64], im: &[f64], acc: &mut [f64]) {
    debug_assert!(
        re.len() == im.len() && re.len() == acc.len(),
        "accumulate_abs_sq length mismatch"
    );
    for k in 0..re.len() {
        acc[k] += re[k] * re[k] + im[k] * im[k];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeterministicRng;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> ComplexMatrix {
        let mut rng = DeterministicRng::new(seed);
        ComplexMatrix::from_fn(rows, cols, |_, _| rng.normal_complex(0.0, 1.0))
    }

    #[test]
    fn roundtrip_preserves_bits() {
        let m = random_matrix(5, 7, 1);
        let soa = ComplexSoa::from_matrix(&m);
        let back = soa.to_matrix();
        for (a, b) in m.iter().zip(back.iter()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        assert_eq!(soa.len(), 35);
        assert!(!soa.is_empty());
        assert_eq!(soa.rows(), 5);
        assert_eq!(soa.cols(), 7);
    }

    #[test]
    fn row_accessors_expose_row_major_planes() {
        let m = random_matrix(3, 4, 2);
        let mut soa = ComplexSoa::from_matrix(&m);
        let (re, im) = soa.row(1);
        for j in 0..4 {
            assert_eq!(re[j], m[(1, j)].re);
            assert_eq!(im[j], m[(1, j)].im);
        }
        {
            let (re_mut, _) = soa.row_mut(2);
            re_mut[0] = 42.0;
        }
        assert_eq!(soa.to_matrix()[(2, 0)].re, 42.0);
        let (re_all, im_all) = soa.parts_mut();
        assert_eq!(re_all.len(), 12);
        assert_eq!(im_all.len(), 12);
    }

    #[test]
    fn mul_into_matches_aos_product_bitwise() {
        let a = random_matrix(4, 4, 3);
        let b = random_matrix(4, 4, 4);
        let (sa, sb) = (ComplexSoa::from_matrix(&a), ComplexSoa::from_matrix(&b));
        let mut out = ComplexSoa::zeros(4, 4);
        mul_into(&sa.re, &sa.im, &sb.re, &sb.im, &mut out.re, &mut out.im);
        let aos = a.hadamard(&b);
        for (x, y) in out.to_matrix().iter().zip(aos.iter()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn axpy_matches_aos_bitwise() {
        let x = random_matrix(1, 16, 5);
        let y = random_matrix(1, 16, 6);
        let alpha = Complex64::new(0.7, -1.3);
        let sx = ComplexSoa::from_matrix(&x);
        let mut sy = ComplexSoa::from_matrix(&y);
        axpy_in_place(alpha.re, alpha.im, &sx.re, &sx.im, &mut sy.re, &mut sy.im);
        for j in 0..16 {
            let expect = y[(0, j)] + alpha * x[(0, j)];
            let got = sy.to_matrix()[(0, j)];
            assert_eq!(expect.re.to_bits(), got.re.to_bits());
            assert_eq!(expect.im.to_bits(), got.im.to_bits());
        }
    }

    #[test]
    fn scale_and_abs_sq_accumulate() {
        let m = random_matrix(2, 8, 7);
        let mut soa = ComplexSoa::from_matrix(&m);
        scale_in_place(&mut soa.re, &mut soa.im, 2.0);
        let scaled = soa.to_matrix();
        for (a, b) in scaled.iter().zip(m.iter()) {
            assert_eq!(a.re, b.re * 2.0);
            assert_eq!(a.im, b.im * 2.0);
        }
        let mut acc = vec![1.0; 16];
        accumulate_abs_sq(&soa.re, &soa.im, &mut acc);
        for (k, v) in acc.iter().enumerate() {
            let z = scaled[(k / 8, k % 8)];
            assert_eq!(*v, 1.0 + (z.re * z.re + z.im * z.im));
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = ComplexSoa::zeros(0, 3);
    }
}
