//! Dense row-major 2-D matrices used throughout the lithography stack.
//!
//! Masks, aerial images, spectra and optical kernels are all plain dense
//! matrices, so a single generic container with real and complex aliases is
//! all we need.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

use crate::complex::Complex64;

/// A dense, row-major matrix with `rows × cols` elements of type `T`.
///
/// Indexing uses `(row, col)` tuples; the element at row `i`, column `j`
/// lives at flat offset `i * cols + j`.
///
/// # Example
///
/// ```
/// use litho_math::Matrix;
///
/// let mut m = Matrix::zeros(2, 3);
/// m[(1, 2)] = 5.0;
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(1, 2)], 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

/// A real-valued matrix (`f64` elements).
pub type RealMatrix = Matrix<f64>;
/// A complex-valued matrix ([`Complex64`] elements).
pub type ComplexMatrix = Matrix<Complex64>;

impl<T: Copy + Default> Matrix<T> {
    /// Creates a matrix filled with `T::default()`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

impl<T: Copy> Matrix<T> {
    /// Creates a matrix filled with a constant value.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always `false`: matrices have non-zero dimensions by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Flat row-major view of the elements.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat row-major view of the elements.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning the flat row-major buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Returns the element at `(row, col)` or `None` when out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Option<&T> {
        if row < self.rows && col < self.cols {
            Some(&self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Returns one full row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    #[inline]
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.rows, "row {row} out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Returns one full row as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [T] {
        assert!(row < self.rows, "row {row} out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Copies one column into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `col >= cols`.
    pub fn col(&self, col: usize) -> Vec<T> {
        assert!(col < self.cols, "column {col} out of bounds");
        (0..self.rows)
            .map(|i| self.data[i * self.cols + col])
            .collect()
    }

    /// Applies `f` element-wise, producing a new matrix (possibly of a
    /// different element type).
    pub fn map<U: Copy>(&self, mut f: impl FnMut(T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f(row, col, value)` element-wise, producing a new matrix.
    pub fn map_indexed<U: Copy>(&self, mut f: impl FnMut(usize, usize, T) -> U) -> Matrix<U> {
        let mut data = Vec::with_capacity(self.data.len());
        for i in 0..self.rows {
            for j in 0..self.cols {
                data.push(f(i, j, self.data[i * self.cols + j]));
            }
        }
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Combines two equally shaped matrices element-wise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map<U: Copy, V: Copy>(
        &self,
        other: &Matrix<U>,
        mut f: impl FnMut(T, U) -> V,
    ) -> Matrix<V> {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in zip_map");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Transposes the matrix.
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.data[j * self.cols + i])
    }

    /// Iterates over elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Mutable iteration over elements in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }

    /// Extracts a rectangular sub-matrix starting at `(row0, col0)`.
    ///
    /// # Panics
    ///
    /// Panics if the requested region does not fit inside the matrix.
    pub fn submatrix(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> Matrix<T> {
        assert!(
            row0 + rows <= self.rows && col0 + cols <= self.cols,
            "submatrix out of bounds"
        );
        Matrix::from_fn(rows, cols, |i, j| {
            self.data[(row0 + i) * self.cols + (col0 + j)]
        })
    }

    /// Writes `block` into this matrix with its top-left corner at
    /// `(row0, col0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit.
    pub fn set_submatrix(&mut self, row0: usize, col0: usize, block: &Matrix<T>) {
        assert!(
            row0 + block.rows <= self.rows && col0 + block.cols <= self.cols,
            "set_submatrix out of bounds"
        );
        for i in 0..block.rows {
            for j in 0..block.cols {
                self.data[(row0 + i) * self.cols + (col0 + j)] = block.data[i * block.cols + j];
            }
        }
    }
}

impl<T: Copy> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (row, col): (usize, usize)) -> &T {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        &self.data[row * self.cols + col]
    }
}

impl<T: Copy> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut T {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        &mut self.data[row * self.cols + col]
    }
}

impl<T: Copy + Add<Output = T>> Add<&Matrix<T>> for &Matrix<T> {
    type Output = Matrix<T>;
    fn add(self, rhs: &Matrix<T>) -> Matrix<T> {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl<T: Copy + Sub<Output = T>> Sub<&Matrix<T>> for &Matrix<T> {
    type Output = Matrix<T>;
    fn sub(self, rhs: &Matrix<T>) -> Matrix<T> {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl<T: Copy + AddAssign> AddAssign<&Matrix<T>> for Matrix<T> {
    fn add_assign(&mut self, rhs: &Matrix<T>) {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in +=");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += *b;
        }
    }
}

impl RealMatrix {
    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements.
    pub fn mean(&self) -> f64 {
        self.sum() / self.len() as f64
    }

    /// Maximum element (NaN-free inputs assumed).
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum element (NaN-free inputs assumed).
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Element-wise scaling by a scalar.
    pub fn scale(&self, s: f64) -> RealMatrix {
        self.map(|v| v * s)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Lifts into a complex matrix with zero imaginary part.
    pub fn to_complex(&self) -> ComplexMatrix {
        self.map(Complex64::from_real)
    }

    /// Binarizes with `>= threshold` (resist development model).
    pub fn threshold(&self, threshold: f64) -> RealMatrix {
        self.map(|v| if v >= threshold { 1.0 } else { 0.0 })
    }
}

impl Mul<f64> for &RealMatrix {
    type Output = RealMatrix;
    fn mul(self, rhs: f64) -> RealMatrix {
        self.scale(rhs)
    }
}

impl ComplexMatrix {
    /// Element-wise complex conjugate.
    pub fn conj(&self) -> ComplexMatrix {
        self.map(Complex64::conj)
    }

    /// Element-wise squared magnitude as a real matrix.
    pub fn abs_sq(&self) -> RealMatrix {
        self.map(Complex64::abs_sq)
    }

    /// Element-wise magnitude as a real matrix.
    pub fn abs(&self) -> RealMatrix {
        self.map(Complex64::abs)
    }

    /// Real parts as a real matrix.
    pub fn re(&self) -> RealMatrix {
        self.map(|z| z.re)
    }

    /// Imaginary parts as a real matrix.
    pub fn im(&self) -> RealMatrix {
        self.map(|z| z.im)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hadamard(&self, other: &ComplexMatrix) -> ComplexMatrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// Element-wise scaling by a complex scalar.
    pub fn scale(&self, s: Complex64) -> ComplexMatrix {
        self.map(|z| z * s)
    }

    /// Element-wise scaling by a real scalar.
    pub fn scale_re(&self, s: f64) -> ComplexMatrix {
        self.map(|z| z.scale(s))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> Complex64 {
        self.data.iter().copied().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.abs_sq()).sum::<f64>().sqrt()
    }

    /// Conjugate transpose (Hermitian adjoint).
    pub fn adjoint(&self) -> ComplexMatrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| {
            self.data[j * self.cols + i].conj()
        })
    }

    /// Builds a complex matrix from separate real and imaginary parts.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn from_parts(re: &RealMatrix, im: &RealMatrix) -> ComplexMatrix {
        re.zip_map(im, Complex64::new)
    }
}

impl fmt::Display for RealMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RealMatrix {}x{}", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        let show_cols = self.cols.min(8);
        for i in 0..show_rows {
            for j in 0..show_cols {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > show_cols { "…" } else { "" })?;
        }
        if self.rows > show_rows {
            writeln!(f, "…")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_indexing() {
        let mut m = RealMatrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(!m.is_empty());
        m[(2, 3)] = 7.0;
        assert_eq!(m[(2, 3)], 7.0);
        assert_eq!(m.get(2, 3), Some(&7.0));
        assert_eq!(m.get(3, 0), None);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = RealMatrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = RealMatrix::zeros(0, 3);
    }

    #[test]
    fn from_vec_and_from_fn() {
        let a = RealMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = RealMatrix::from_fn(2, 2, |i, j| (i * 2 + j + 1) as f64);
        assert_eq!(a, b);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(1), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_wrong_len_panics() {
        let _ = RealMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn map_and_zip() {
        let a = RealMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = a.map(|v| v * 2.0);
        assert_eq!(b.as_slice(), &[2.0, 4.0, 6.0, 8.0]);
        let c = a.zip_map(&b, |x, y| x + y);
        assert_eq!(c.as_slice(), &[3.0, 6.0, 9.0, 12.0]);
        let d = a.map_indexed(|i, j, v| v + (i + j) as f64);
        assert_eq!(d.as_slice(), &[1.0, 3.0, 4.0, 6.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = RealMatrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(4, 2)], a[(2, 4)]);
    }

    #[test]
    fn arithmetic_operators() {
        let a = RealMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = RealMatrix::filled(2, 2, 1.0);
        let sum = &a + &b;
        let diff = &sum - &b;
        assert_eq!(diff, a);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c, sum);
    }

    #[test]
    fn real_matrix_statistics() {
        let a = RealMatrix::from_vec(2, 2, vec![1.0, -2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 6.0);
        assert_eq!(a.mean(), 1.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), -2.0);
        assert!((a.frobenius_norm() - (30.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(a.threshold(2.5).as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn complex_matrix_operations() {
        let re = RealMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let im = RealMatrix::from_vec(2, 2, vec![0.0, 1.0, -1.0, 0.0]);
        let z = ComplexMatrix::from_parts(&re, &im);
        assert_eq!(z.re(), re);
        assert_eq!(z.im(), im);
        assert_eq!(z.conj().im().as_slice(), &[0.0, -1.0, 1.0, 0.0]);
        assert_eq!(z.abs_sq().as_slice(), &[1.0, 1.0, 1.0, 1.0]);
        let h = z.hadamard(&z.conj());
        assert_eq!(h.re().as_slice(), &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(z.adjoint()[(1, 0)], z[(0, 1)].conj());
        assert!((z.frobenius_norm() - 2.0).abs() < 1e-12);
        assert_eq!(z.sum(), Complex64::new(2.0, 0.0));
    }

    #[test]
    fn submatrix_roundtrip() {
        let a = RealMatrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let block = a.submatrix(1, 2, 2, 2);
        assert_eq!(block.as_slice(), &[6.0, 7.0, 10.0, 11.0]);
        let mut b = RealMatrix::zeros(4, 4);
        b.set_submatrix(1, 2, &block);
        assert_eq!(b[(2, 3)], 11.0);
        assert_eq!(b[(0, 0)], 0.0);
    }

    #[test]
    fn scale_operators() {
        let a = RealMatrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0, 6.0]);
        let z = a.to_complex().scale(Complex64::I);
        assert_eq!(z.im().as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(z.scale_re(2.0).im().as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn display_does_not_panic() {
        let a = RealMatrix::from_fn(10, 10, |i, j| (i + j) as f64);
        let s = format!("{a}");
        assert!(s.contains("RealMatrix 10x10"));
    }

    proptest! {
        #[test]
        fn prop_transpose_preserves_elements(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
            let m = RealMatrix::from_fn(rows, cols, |i, j| ((i * 31 + j * 17 + seed as usize) % 97) as f64);
            let t = m.transpose();
            for i in 0..rows {
                for j in 0..cols {
                    prop_assert_eq!(m[(i, j)], t[(j, i)]);
                }
            }
        }

        #[test]
        fn prop_add_commutes(rows in 1usize..5, cols in 1usize..5) {
            let a = RealMatrix::from_fn(rows, cols, |i, j| (i + 2 * j) as f64);
            let b = RealMatrix::from_fn(rows, cols, |i, j| (3 * i + j) as f64);
            prop_assert_eq!(&a + &b, &b + &a);
        }
    }
}
