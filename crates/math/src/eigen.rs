//! Eigensolvers for symmetric / Hermitian matrices.
//!
//! The SOCS decomposition of the transmission cross-coefficient matrix
//! (Eq. (3) of the Nitho paper) needs the leading eigenpairs of a large
//! Hermitian positive semi-definite matrix. Two solvers are provided:
//!
//! * [`symmetric_eigen`] / [`hermitian_eigen`] — a cyclic Jacobi solver that
//!   computes the *full* spectrum. Robust and simple, used as the reference
//!   implementation and for small kernels.
//! * [`hermitian_top_eigen`] — blocked subspace (orthogonal) iteration that
//!   extracts only the leading `r` eigenpairs. Since TCC eigenvalues decay
//!   rapidly, this is the production path for SOCS kernel generation.

use crate::complex::Complex64;
use crate::linalg::{cdot, cmatmul, gram_schmidt_columns, hermitian_real_embedding};
use crate::matrix::{ComplexMatrix, RealMatrix};
use crate::rng::DeterministicRng;

/// Result of a Hermitian eigendecomposition.
///
/// Eigenvalues are sorted in descending order; `vectors` stores the matching
/// eigenvectors as columns, so `vectors.col(k)` pairs with `values[k]`.
#[derive(Debug, Clone)]
pub struct HermitianEigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Eigenvectors as columns (same order as `values`).
    pub vectors: ComplexMatrix,
}

/// Result of a real symmetric eigendecomposition (descending eigenvalues,
/// eigenvectors as columns).
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Eigenvectors as columns (same order as `values`).
    pub vectors: RealMatrix,
}

/// Maximum number of Jacobi sweeps before giving up (converges far earlier in
/// practice).
const MAX_JACOBI_SWEEPS: usize = 50;

/// Full eigendecomposition of a real symmetric matrix using cyclic Jacobi
/// rotations.
///
/// # Panics
///
/// Panics if `a` is not square.
///
/// ```
/// use litho_math::{RealMatrix, eigen::symmetric_eigen};
/// let a = RealMatrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
/// let e = symmetric_eigen(&a);
/// assert!((e.values[0] - 3.0).abs() < 1e-10);
/// assert!((e.values[1] - 1.0).abs() < 1e-10);
/// ```
pub fn symmetric_eigen(a: &RealMatrix) -> SymmetricEigen {
    assert_eq!(a.rows(), a.cols(), "matrix must be square");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = crate::linalg::identity(n);

    for _sweep in 0..MAX_JACOBI_SWEEPS {
        let off: f64 = {
            let mut s = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    s += m[(i, j)] * m[(i, j)];
                }
            }
            s
        };
        if off < 1e-24 * (n * n) as f64 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = 0.5 * (aqq - app) / apq;
                // Stable tangent of the rotation angle.
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(j, j)].partial_cmp(&m[(i, i)]).expect("NaN eigenvalue"));
    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let vectors = RealMatrix::from_fn(n, n, |i, k| v[(i, order[k])]);
    SymmetricEigen { values, vectors }
}

/// Full eigendecomposition of a complex Hermitian matrix.
///
/// Internally the Hermitian matrix `H = A + iB` is embedded into the real
/// symmetric matrix `[[A, -B], [B, A]]`, solved with [`symmetric_eigen`], and
/// the doubled spectrum is collapsed back to `n` complex eigenpairs. Within
/// degenerate clusters the recovered complex vectors are re-orthonormalized so
/// the returned basis is always unitary.
///
/// # Panics
///
/// Panics if `h` is not square.
pub fn hermitian_eigen(h: &ComplexMatrix) -> HermitianEigen {
    assert_eq!(h.rows(), h.cols(), "matrix must be square");
    let n = h.rows();
    let embedded = hermitian_real_embedding(h);
    let SymmetricEigen { values, vectors } = symmetric_eigen(&embedded);

    // The embedded spectrum contains each eigenvalue of `h` twice. Walk the
    // sorted (descending) spectrum, convert candidates u + iv, and keep the
    // ones that are linearly independent from the vectors already selected.
    let mut out_values = Vec::with_capacity(n);
    let mut selected: Vec<Vec<Complex64>> = Vec::with_capacity(n);

    for k in 0..2 * n {
        if selected.len() == n {
            break;
        }
        let mut cand: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(vectors[(i, k)], vectors[(n + i, k)]))
            .collect();
        // Project out previously selected vectors (only those sharing the
        // eigenvalue matter, but projecting against all is harmless since
        // distinct eigenspaces are already orthogonal).
        for prev in &selected {
            let proj = cdot(prev, &cand);
            for (c, p) in cand.iter_mut().zip(prev.iter()) {
                *c -= *p * proj;
            }
        }
        let norm = cand.iter().map(|z| z.abs_sq()).sum::<f64>().sqrt();
        if norm < 1e-8 {
            continue; // duplicate of an already-selected eigenvector
        }
        for c in cand.iter_mut() {
            *c = *c / norm;
        }
        out_values.push(values[k]);
        selected.push(cand);
    }
    assert_eq!(
        selected.len(),
        n,
        "failed to extract a full complex eigenbasis from the real embedding"
    );

    let vectors = ComplexMatrix::from_fn(n, n, |i, k| selected[k][i]);
    HermitianEigen {
        values: out_values,
        vectors,
    }
}

/// Leading `r` eigenpairs of a Hermitian positive semi-definite matrix using
/// blocked subspace iteration.
///
/// The block is over-sampled by `oversample` extra vectors (default callers
/// use 4–8) which dramatically improves convergence when eigenvalues cluster.
/// Iteration stops when the eigenvalue estimates change by less than `tol`
/// relatively, or after `max_iter` rounds.
///
/// # Panics
///
/// Panics if `h` is not square or `r` is zero or exceeds the dimension.
pub fn hermitian_top_eigen(
    h: &ComplexMatrix,
    r: usize,
    oversample: usize,
    max_iter: usize,
    tol: f64,
    seed: u64,
) -> HermitianEigen {
    assert_eq!(h.rows(), h.cols(), "matrix must be square");
    let n = h.rows();
    assert!(
        r > 0 && r <= n,
        "requested {r} eigenpairs from a {n}x{n} matrix"
    );
    let block = (r + oversample).min(n);

    let mut rng = DeterministicRng::new(seed);
    let mut q = ComplexMatrix::from_fn(n, block, |_, _| {
        Complex64::new(rng.normal(0.0, 1.0), rng.normal(0.0, 1.0))
    });
    gram_schmidt_columns(&mut q);

    let mut prev_values = vec![f64::INFINITY; r];
    let mut ritz_values = vec![0.0; block];
    let mut ritz_vectors = q.clone();

    for _ in 0..max_iter {
        // Power step: Z = H·Q, then re-orthonormalize.
        let z = cmatmul(h, &q);
        q = z;
        gram_schmidt_columns(&mut q);

        // Rayleigh–Ritz: project H into the subspace and solve the small
        // Hermitian problem exactly.
        let hq = cmatmul(h, &q);
        let small = cmatmul(&q.adjoint(), &hq);
        let small_eig = hermitian_eigen(&small);
        // Rotate the basis by the small eigenvectors.
        ritz_vectors = cmatmul(&q, &small_eig.vectors);
        ritz_values = small_eig.values;

        let converged = ritz_values
            .iter()
            .take(r)
            .zip(prev_values.iter())
            .all(|(&now, &prev)| (now - prev).abs() <= tol * (1.0 + now.abs()));
        prev_values = ritz_values.iter().take(r).copied().collect();
        q = ritz_vectors.clone();
        if converged {
            break;
        }
    }

    let values = ritz_values.iter().take(r).copied().collect();
    let vectors = ComplexMatrix::from_fn(n, r, |i, k| ritz_vectors[(i, k)]);
    HermitianEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::cmatvec;
    use proptest::prelude::*;

    fn reconstruct_hermitian(e: &HermitianEigen, n: usize) -> ComplexMatrix {
        let mut out = ComplexMatrix::zeros(n, n);
        for k in 0..e.values.len() {
            for i in 0..n {
                for j in 0..n {
                    out[(i, j)] += e.vectors[(i, k)] * e.vectors[(j, k)].conj() * e.values[k];
                }
            }
        }
        out
    }

    fn random_hermitian(n: usize, seed: u64) -> ComplexMatrix {
        let mut rng = DeterministicRng::new(seed);
        let a = ComplexMatrix::from_fn(n, n, |_, _| {
            Complex64::new(rng.normal(0.0, 1.0), rng.normal(0.0, 1.0))
        });
        // A·A^H is Hermitian positive semi-definite.
        cmatmul(&a, &a.adjoint())
    }

    #[test]
    fn symmetric_eigen_known_2x2() {
        let a = RealMatrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = symmetric_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v0: Vec<f64> = (0..2).map(|i| e.vectors[(i, 0)]).collect();
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn symmetric_eigen_diagonal_matrix() {
        let a = RealMatrix::from_fn(4, 4, |i, j| if i == j { (4 - i) as f64 } else { 0.0 });
        let e = symmetric_eigen(&a);
        assert_eq!(e.values.len(), 4);
        for (k, &v) in e.values.iter().enumerate() {
            assert!((v - (4 - k) as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetric_eigen_reconstructs_matrix() {
        let n = 6;
        let mut rng = DeterministicRng::new(7);
        let b = RealMatrix::from_fn(n, n, |_, _| rng.normal(0.0, 1.0));
        let a = crate::linalg::matmul(&b, &b.transpose());
        let e = symmetric_eigen(&a);
        // Reconstruct V diag(λ) V^T.
        let mut rec = RealMatrix::zeros(n, n);
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    rec[(i, j)] += e.values[k] * e.vectors[(i, k)] * e.vectors[(j, k)];
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-8, "({i},{j})");
            }
        }
    }

    #[test]
    fn hermitian_eigen_identity() {
        let h = crate::linalg::cidentity(3);
        let e = hermitian_eigen(&h);
        for v in &e.values {
            assert!((v - 1.0).abs() < 1e-10);
        }
        // Basis must be unitary even with a fully degenerate spectrum.
        let rec = reconstruct_hermitian(&e, 3);
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((rec[(i, j)].re - expected).abs() < 1e-8);
                assert!(rec[(i, j)].im.abs() < 1e-8);
            }
        }
    }

    #[test]
    fn hermitian_eigen_reconstructs_random_matrix() {
        let n = 8;
        let h = random_hermitian(n, 42);
        let e = hermitian_eigen(&h);
        assert_eq!(e.values.len(), n);
        // Descending order.
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
        let rec = reconstruct_hermitian(&e, n);
        for i in 0..n {
            for j in 0..n {
                assert!((rec[(i, j)] - h[(i, j)]).abs() < 1e-6, "({i},{j})");
            }
        }
    }

    #[test]
    fn hermitian_eigen_eigenvector_equation() {
        let n = 5;
        let h = random_hermitian(n, 3);
        let e = hermitian_eigen(&h);
        for k in 0..n {
            let v: Vec<Complex64> = (0..n).map(|i| e.vectors[(i, k)]).collect();
            let hv = cmatvec(&h, &v);
            for i in 0..n {
                let expected = v[i] * e.values[k];
                assert!((hv[i] - expected).abs() < 1e-6, "k={k} i={i}");
            }
        }
    }

    #[test]
    fn top_eigen_matches_full_solver() {
        let n = 12;
        let h = random_hermitian(n, 11);
        let full = hermitian_eigen(&h);
        let top = hermitian_top_eigen(&h, 4, 4, 200, 1e-12, 1);
        for k in 0..4 {
            assert!(
                (full.values[k] - top.values[k]).abs() < 1e-6 * (1.0 + full.values[k]),
                "eigenvalue {k}: full={} top={}",
                full.values[k],
                top.values[k]
            );
        }
        // Residual check ‖Hv - λv‖ small for each returned pair.
        for k in 0..4 {
            let v: Vec<Complex64> = (0..n).map(|i| top.vectors[(i, k)]).collect();
            let hv = cmatvec(&h, &v);
            let resid: f64 = hv
                .iter()
                .zip(v.iter())
                .map(|(&a, &b)| (a - b * top.values[k]).abs_sq())
                .sum::<f64>()
                .sqrt();
            assert!(resid < 1e-5 * (1.0 + top.values[k]), "k={k} resid={resid}");
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_matrix_panics() {
        let h = ComplexMatrix::zeros(2, 3);
        let _ = hermitian_eigen(&h);
    }

    #[test]
    #[should_panic(expected = "eigenpairs")]
    fn too_many_requested_eigenpairs_panics() {
        let h = crate::linalg::cidentity(3);
        let _ = hermitian_top_eigen(&h, 4, 0, 10, 1e-9, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn prop_hermitian_psd_eigenvalues_nonnegative(n in 2usize..7, seed in 0u64..50) {
            let h = random_hermitian(n, seed);
            let e = hermitian_eigen(&h);
            for &v in &e.values {
                prop_assert!(v > -1e-8);
            }
            // Trace equals the eigenvalue sum.
            let trace: f64 = (0..n).map(|i| h[(i, i)].re).sum();
            let sum: f64 = e.values.iter().sum();
            prop_assert!((trace - sum).abs() < 1e-6 * (1.0 + trace.abs()));
        }
    }
}
