//! Deterministic random sampling helpers.
//!
//! Every stochastic component in the workspace (weight initialization, random
//! Fourier features, synthetic mask generation, dataset shuffling) goes
//! through [`DeterministicRng`] so experiments are exactly reproducible from a
//! seed.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::complex::Complex64;

/// A seeded random number generator with the sampling primitives used across
/// the workspace.
///
/// # Example
///
/// ```
/// use litho_math::DeterministicRng;
///
/// let mut a = DeterministicRng::new(7);
/// let mut b = DeterministicRng::new(7);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    inner: StdRng,
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derives an independent child generator; useful for giving each model
    /// or dataset its own stream without coupling their sampling order.
    pub fn fork(&mut self, salt: u64) -> Self {
        let seed = self.inner.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::new(seed)
    }

    /// Uniform sample in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        assert!(low < high, "uniform range must satisfy low < high");
        self.inner.gen_range(low..high)
    }

    /// Uniform integer sample in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn uniform_usize(&mut self, low: usize, high: usize) -> usize {
        assert!(low < high, "uniform range must satisfy low < high");
        self.inner.gen_range(low..high)
    }

    /// Bernoulli sample with probability `p` of returning `true`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p
    }

    /// Gaussian sample with the given mean and standard deviation
    /// (Box–Muller transform; no external distribution crate needed).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let z = if let Some(spare) = self.spare_normal.take() {
            spare
        } else {
            // Draw u1 in (0, 1] to avoid ln(0).
            let u1: f64 = 1.0 - self.inner.gen::<f64>();
            let u2: f64 = self.inner.gen::<f64>();
            let radius = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.spare_normal = Some(radius * theta.sin());
            radius * theta.cos()
        };
        mean + std_dev * z
    }

    /// Complex Gaussian sample with independent real/imaginary components.
    pub fn normal_complex(&mut self, mean: f64, std_dev: f64) -> Complex64 {
        Complex64::new(self.normal(mean, std_dev), self.normal(mean, std_dev))
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Samples `count` distinct indices from `0..len` (or all of them when
    /// `count >= len`), in random order.
    pub fn sample_indices(&mut self, len: usize, count: usize) -> Vec<usize> {
        let mut indices: Vec<usize> = (0..len).collect();
        self.shuffle(&mut indices);
        indices.truncate(count.min(len));
        indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::new(123);
        let mut b = DeterministicRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn same_seed_identical_across_every_sampling_primitive() {
        // The reproducibility claim of the whole workspace: two generators
        // built from the same seed must agree bit-for-bit on every sampling
        // primitive, even when the primitives are interleaved.
        let mut a = DeterministicRng::new(0xD15EA5E);
        let mut b = DeterministicRng::new(0xD15EA5E);
        for round in 0..50 {
            assert_eq!(
                a.uniform(-3.0, 9.0).to_bits(),
                b.uniform(-3.0, 9.0).to_bits()
            );
            assert_eq!(a.uniform_usize(0, 1000), b.uniform_usize(0, 1000));
            assert_eq!(a.bernoulli(0.3), b.bernoulli(0.3));
            assert_eq!(a.normal(1.5, 0.5).to_bits(), b.normal(1.5, 0.5).to_bits());
            let (za, zb) = (a.normal_complex(0.0, 2.0), b.normal_complex(0.0, 2.0));
            assert_eq!(za.re.to_bits(), zb.re.to_bits());
            assert_eq!(za.im.to_bits(), zb.im.to_bits());
            let mut va: Vec<usize> = (0..16).collect();
            let mut vb: Vec<usize> = (0..16).collect();
            a.shuffle(&mut va);
            b.shuffle(&mut vb);
            assert_eq!(va, vb, "shuffle diverged at round {round}");
            assert_eq!(a.sample_indices(30, 10), b.sample_indices(30, 10));
        }
    }

    #[test]
    fn same_seed_identical_weight_init_stream() {
        // Weight initialization draws complex Gaussians; the stream must be
        // identical across independently constructed generators, including
        // forked per-layer child streams.
        let init = |seed: u64| -> Vec<(u64, u64)> {
            let mut root = DeterministicRng::new(seed);
            let mut weights = Vec::new();
            for layer in 0..4 {
                let mut layer_rng = root.fork(layer);
                for _ in 0..32 {
                    let z = layer_rng.normal_complex(0.0, 0.1);
                    weights.push((z.re.to_bits(), z.im.to_bits()));
                }
            }
            weights
        };
        assert_eq!(init(2023), init(2023));
        assert_ne!(init(2023), init(2024));
    }

    #[test]
    fn clone_continues_the_same_stream() {
        let mut a = DeterministicRng::new(99);
        let _ = a.normal(0.0, 1.0); // leave a cached Box-Muller spare behind
        let mut b = a.clone();
        for _ in 0..32 {
            assert_eq!(a.normal(0.0, 1.0).to_bits(), b.normal(0.0, 1.0).to_bits());
            assert_eq!(a.uniform(0.0, 1.0).to_bits(), b.uniform(0.0, 1.0).to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DeterministicRng::new(1);
        let mut b = DeterministicRng::new(2);
        let same = (0..32)
            .filter(|_| a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = DeterministicRng::new(9);
        for _ in 0..1000 {
            let v = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
            let i = rng.uniform_usize(5, 10);
            assert!((5..10).contains(&i));
        }
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn invalid_uniform_range_panics() {
        let mut rng = DeterministicRng::new(0);
        let _ = rng.uniform(1.0, 1.0);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = DeterministicRng::new(77);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean={mean}");
        assert!((var - 9.0).abs() < 0.5, "var={var}");
    }

    #[test]
    fn normal_complex_has_both_components() {
        let mut rng = DeterministicRng::new(5);
        let z = rng.normal_complex(0.0, 1.0);
        // With overwhelming probability both parts are non-zero.
        assert!(z.re != 0.0 && z.im != 0.0);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = DeterministicRng::new(4);
        assert!(!(0..100).any(|_| rng.bernoulli(0.0)));
        assert!((0..100).all(|_| rng.bernoulli(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DeterministicRng::new(11);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = DeterministicRng::new(13);
        let idx = rng.sample_indices(20, 7);
        assert_eq!(idx.len(), 7);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 7);
        assert!(idx.iter().all(|&i| i < 20));
        // Requesting more than available returns everything.
        assert_eq!(rng.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = DeterministicRng::new(21);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let a: Vec<f64> = (0..16).map(|_| c1.uniform(0.0, 1.0)).collect();
        let b: Vec<f64> = (0..16).map(|_| c2.uniform(0.0, 1.0)).collect();
        assert_ne!(a, b);
    }
}
