//! Numerical foundations for the Nitho lithography stack.
//!
//! This crate provides the low-level numeric building blocks shared by every
//! other crate in the workspace:
//!
//! * [`Complex64`] — a from-scratch double-precision complex number,
//! * [`Matrix`] — a dense row-major 2-D container with the real
//!   ([`RealMatrix`]) and complex ([`ComplexMatrix`]) aliases used throughout
//!   the optical code,
//! * [`eigen`] — a Jacobi eigensolver for Hermitian matrices (used by the
//!   SOCS decomposition of the transmission cross-coefficients),
//! * [`rng`] — deterministic random sampling helpers (uniform / Gaussian)
//!   built on top of `rand`,
//! * [`simd`] — runtime SIMD backend (`NITHO_SIMD`) and precision
//!   (`NITHO_PRECISION`) selection plus the explicit AVX2+FMA kernels,
//! * [`soa`] — split-complex (structure-of-arrays) storage and the fused,
//!   backend-dispatched kernels behind the zero-allocation hot paths,
//! * [`util`] — centering, cropping, padding and grid helpers shared by the
//!   FFT and optics crates.
//!
//! # Example
//!
//! ```
//! use litho_math::{Complex64, ComplexMatrix};
//!
//! let z = Complex64::new(3.0, -4.0);
//! assert_eq!(z.abs(), 5.0);
//!
//! let mut m = ComplexMatrix::zeros(2, 2);
//! m[(0, 1)] = z;
//! assert_eq!(m.conj()[(0, 1)], z.conj());
//! ```

pub mod complex;
pub mod eigen;
pub mod linalg;
pub mod matrix;
pub mod rng;
pub mod simd;
pub mod soa;
pub mod util;

pub use complex::Complex64;
pub use eigen::{hermitian_eigen, HermitianEigen};
pub use matrix::{ComplexMatrix, Matrix, RealMatrix};
pub use rng::DeterministicRng;

/// Convenient absolute-difference comparison used by tests across the
/// workspace.
///
/// Returns `true` when `a` and `b` differ by at most `tol`.
///
/// ```
/// assert!(litho_math::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!litho_math::approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}
