//! First-order optimizers operating on a [`ParamStore`].
//!
//! Gradients arrive in the packed Wirtinger convention produced by
//! [`Tape::backward`](crate::Tape::backward): `g = ∂L/∂Re + i·∂L/∂Im`. Both
//! optimizers treat the real and imaginary parts as independent real
//! coordinates, which is the standard way complex parameters are trained.

use litho_math::{Complex64, ComplexMatrix, RealMatrix};

use crate::params::{ParamId, ParamStore};

/// A gradient-based optimizer.
pub trait Optimizer {
    /// Applies one update step. `grads` pairs parameter ids with gradients in
    /// the packed Wirtinger convention; parameters without a gradient this
    /// step are left untouched.
    fn step(&mut self, params: &mut ParamStore, grads: &[(ParamId, ComplexMatrix)]);

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Overrides the learning rate (used by decay schedules).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<Option<ComplexMatrix>>,
}

impl Sgd {
    /// Creates plain SGD with learning rate `lr`.
    pub fn new(lr: f64) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// Creates SGD with classical momentum.
    ///
    /// # Panics
    ///
    /// Panics if `momentum` is not in `[0, 1)`.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    fn velocity_slot(&mut self, id: ParamId, rows: usize, cols: usize) -> &mut ComplexMatrix {
        if self.velocity.len() <= id {
            self.velocity.resize(id + 1, None);
        }
        self.velocity[id].get_or_insert_with(|| ComplexMatrix::zeros(rows, cols))
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore, grads: &[(ParamId, ComplexMatrix)]) {
        for (id, grad) in grads {
            let (rows, cols) = params.value(*id).shape();
            assert_eq!(
                grad.shape(),
                (rows, cols),
                "gradient shape mismatch for {}",
                params.name(*id)
            );
            let update = if self.momentum > 0.0 {
                let momentum = self.momentum;
                let v = self.velocity_slot(*id, rows, cols);
                let new_v = v.zip_map(grad, |vel, g| vel.scale(momentum) + g);
                *v = new_v.clone();
                new_v
            } else {
                grad.clone()
            };
            let lr = self.lr;
            let value = params.value_mut(*id);
            *value = value.zip_map(&update, |w, u| w - u.scale(lr));
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with the real and imaginary components
/// treated as independent coordinates.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    step_count: u64,
    first_moment: Vec<Option<ComplexMatrix>>,
    second_moment: Vec<Option<(RealMatrix, RealMatrix)>>,
}

impl Adam {
    /// Creates Adam with the usual defaults `β₁ = 0.9`, `β₂ = 0.999`,
    /// `ε = 1e-8`.
    pub fn new(lr: f64) -> Self {
        Self::with_parameters(lr, 0.9, 0.999, 1e-8)
    }

    /// Creates Adam with explicit hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if either beta is outside `[0, 1)` or `eps` is not positive.
    pub fn with_parameters(lr: f64, beta1: f64, beta2: f64, eps: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2),
            "betas must be in [0, 1)"
        );
        assert!(eps > 0.0, "eps must be positive");
        Self {
            lr,
            beta1,
            beta2,
            eps,
            step_count: 0,
            first_moment: Vec::new(),
            second_moment: Vec::new(),
        }
    }

    /// Number of optimization steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.step_count
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamStore, grads: &[(ParamId, ComplexMatrix)]) {
        self.step_count += 1;
        let t = self.step_count as i32;
        let bias1 = 1.0 - self.beta1.powi(t);
        let bias2 = 1.0 - self.beta2.powi(t);

        for (id, grad) in grads {
            let (rows, cols) = params.value(*id).shape();
            assert_eq!(
                grad.shape(),
                (rows, cols),
                "gradient shape mismatch for {}",
                params.name(*id)
            );
            if self.first_moment.len() <= *id {
                self.first_moment.resize(*id + 1, None);
                self.second_moment.resize(*id + 1, None);
            }
            let m = self.first_moment[*id].get_or_insert_with(|| ComplexMatrix::zeros(rows, cols));
            let (v_re, v_im) = self.second_moment[*id].get_or_insert_with(|| {
                (RealMatrix::zeros(rows, cols), RealMatrix::zeros(rows, cols))
            });

            *m = m.zip_map(grad, |mv, g| {
                mv.scale(self.beta1) + g.scale(1.0 - self.beta1)
            });
            *v_re = v_re.zip_map(grad, |vv, g| {
                self.beta2 * vv + (1.0 - self.beta2) * g.re * g.re
            });
            *v_im = v_im.zip_map(grad, |vv, g| {
                self.beta2 * vv + (1.0 - self.beta2) * g.im * g.im
            });

            let lr = self.lr;
            let eps = self.eps;
            let m_hat = m.scale_re(1.0 / bias1);
            let value = params.value_mut(*id);
            *value = ComplexMatrix::from_fn(rows, cols, |i, j| {
                let w = value[(i, j)];
                let mh = m_hat[(i, j)];
                let vr = v_re[(i, j)] / bias2;
                let vi = v_im[(i, j)] / bias2;
                Complex64::new(
                    w.re - lr * mh.re / (vr.sqrt() + eps),
                    w.im - lr * mh.im / (vi.sqrt() + eps),
                )
            });
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use litho_math::DeterministicRng;

    /// Minimizes L = |z - target|² over a single complex scalar and checks the
    /// optimizer converges to the target.
    fn converges_to_target<O: Optimizer>(mut opt: O, steps: usize, tol: f64) {
        let target = Complex64::new(0.7, -1.3);
        let mut params = ParamStore::new();
        let id = params.add("z", ComplexMatrix::filled(1, 1, Complex64::new(3.0, 2.0)));
        for _ in 0..steps {
            let mut tape = Tape::new();
            let z = tape.leaf(params.value(id).clone(), true);
            let t = tape.constant(ComplexMatrix::filled(1, 1, target));
            let diff = tape.sub(z, t);
            let sq = tape.abs_sq(diff);
            let loss = tape.sum_real(sq);
            tape.backward(loss);
            let grad = tape.grad(z).expect("gradient exists").clone();
            opt.step(&mut params, &[(id, grad)]);
        }
        let final_value = params.value(id)[(0, 0)];
        assert!(
            (final_value - target).abs() < tol,
            "did not converge: {final_value} vs {target}"
        );
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        converges_to_target(Sgd::new(0.1), 200, 1e-6);
    }

    #[test]
    fn sgd_with_momentum_converges_on_quadratic() {
        converges_to_target(Sgd::with_momentum(0.05, 0.9), 300, 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        converges_to_target(Adam::new(0.05), 600, 1e-3);
    }

    #[test]
    fn adam_tracks_step_count_and_lr() {
        let mut adam = Adam::new(0.01);
        assert_eq!(adam.steps_taken(), 0);
        assert_eq!(adam.learning_rate(), 0.01);
        adam.set_learning_rate(0.002);
        assert_eq!(adam.learning_rate(), 0.002);
        let mut params = ParamStore::new();
        let id = params.add_zeros("w", 1, 1);
        adam.step(
            &mut params,
            &[(id, ComplexMatrix::filled(1, 1, Complex64::ONE))],
        );
        assert_eq!(adam.steps_taken(), 1);
    }

    #[test]
    fn sgd_skips_parameters_without_gradients() {
        let mut params = ParamStore::new();
        let a = params.add("a", ComplexMatrix::filled(1, 1, Complex64::ONE));
        let b = params.add("b", ComplexMatrix::filled(1, 1, Complex64::I));
        let mut sgd = Sgd::new(0.5);
        sgd.step(
            &mut params,
            &[(a, ComplexMatrix::filled(1, 1, Complex64::ONE))],
        );
        assert!((params.value(a)[(0, 0)].re - 0.5).abs() < 1e-12);
        assert_eq!(params.value(b)[(0, 0)], Complex64::I);
    }

    #[test]
    #[should_panic(expected = "momentum must be in")]
    fn invalid_momentum_panics() {
        let _ = Sgd::with_momentum(0.1, 1.5);
    }

    #[test]
    #[should_panic(expected = "gradient shape mismatch")]
    fn mismatched_gradient_shape_panics() {
        let mut params = ParamStore::new();
        let id = params.add_zeros("w", 2, 2);
        let mut sgd = Sgd::new(0.1);
        sgd.step(&mut params, &[(id, ComplexMatrix::zeros(1, 1))]);
    }

    #[test]
    fn adam_handles_many_parameters() {
        // A small least-squares problem: w ∈ C^{4×4}, minimize ‖w - target‖².
        let mut rng = DeterministicRng::new(5);
        let target = ComplexMatrix::from_fn(4, 4, |_, _| rng.normal_complex(0.0, 1.0));
        let mut params = ParamStore::new();
        let id = params.add_zeros("w", 4, 4);
        let mut adam = Adam::new(0.05);
        for _ in 0..800 {
            let mut tape = Tape::new();
            let w = tape.leaf(params.value(id).clone(), true);
            let t = tape.constant(target.clone());
            let d = tape.sub(w, t);
            let sq = tape.abs_sq(d);
            let loss = tape.mean_real(sq);
            tape.backward(loss);
            let grad = tape.grad(w).expect("grad").clone();
            adam.step(&mut params, &[(id, grad)]);
        }
        let err = (&params.value(id).re() - &target.re()).frobenius_norm()
            + (&params.value(id).im() - &target.im()).frobenius_norm();
        assert!(err < 0.05, "residual too large: {err}");
    }

    #[test]
    fn momentum_accelerates_convergence() {
        // On an ill-conditioned quadratic, momentum should reach a lower loss
        // than plain SGD in the same number of steps.
        let run = |mut opt: Box<dyn Optimizer>| {
            let mut params = ParamStore::new();
            let id = params.add("z", ComplexMatrix::filled(1, 1, Complex64::new(4.0, 4.0)));
            // Anisotropic quadratic: L = (re)² + 25·(im)².
            for _ in 0..60 {
                let z = params.value(id)[(0, 0)];
                let grad = ComplexMatrix::filled(1, 1, Complex64::new(2.0 * z.re, 50.0 * z.im));
                opt.step(&mut params, &[(id, grad)]);
            }
            let z = params.value(id)[(0, 0)];
            z.re * z.re + 25.0 * z.im * z.im
        };
        let plain = run(Box::new(Sgd::new(0.02)));
        let with_momentum = run(Box::new(Sgd::with_momentum(0.02, 0.8)));
        assert!(with_momentum < plain);
    }
}
